#!/usr/bin/env python
"""Kill-and-resume smoke test: SIGKILL a tuning run, resume, compare.

The unit and property tests simulate crashes by raising inside the
loop; this script delivers the real thing.  It forks a child process
that tunes with per-batch checkpointing, SIGKILLs it as soon as a
mid-run checkpoint exists, resumes from the checkpoint in a fresh
process, and asserts that the resumed record log and final incumbent
are bit-identical to an uninterrupted run of the same configuration.

Run directly (used by CI)::

    python scripts/kill_and_resume.py [--arm bted] [--n-trial 32]

Exit code 0 means the determinism contract held.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

ARM_KWARGS = {
    "random": {"batch_size": 8},
    "bted": {"batch_size": 8, "init_size": 8, "batch_candidates": 32},
    "bted+as": {"batch_size": 8, "init_size": 8, "batch_candidates": 32},
    "bted+bao": {"init_size": 8, "batch_candidates": 32, "num_batches": 2},
    "bted+bao+droplet": {
        "init_size": 8, "batch_candidates": 32, "num_batches": 2,
        "finish_after": 12,
    },
    "droplet": {"batch_size": 8, "init_size": 8},
}

#: the fleet smoke's serial baseline is only valid when every pool slot
#: is the compiler's own device class (see docs/EXECUTION.md)
_SERIAL_EQUIVALENT_CLASS = "gtx1080ti"

# Child: tune with checkpointing, stalling after every batch so the
# parent has time to deliver SIGKILL mid-run.  A TuningObserver rides
# along as an event sink so its state is captured in every checkpoint
# and the resumed run can prove observability is crash-safe too.
_CHILD = """
import sys, time
sys.path.insert(0, {src!r})
from repro.core import make_tuner
from repro.core.checkpoint import CheckpointPolicy
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload
from repro.obs import TuningObserver

task = SimulatedTask(
    DenseWorkload(batch=1, in_features=64, out_features=48), seed=7
)
tuner = make_tuner({arm!r}, task, seed=11, **{kwargs!r})
tuner.tune(
    n_trial={n_trial}, early_stopping=None,
    checkpoint=CheckpointPolicy(path={ckpt!r}, every=1),
    callbacks=[lambda t, results: time.sleep(0.2)],
    on_event=[TuningObserver()],
    pipeline={pipeline!r},
)
print("CHILD-FINISHED")
"""

# Fresh process: run uninterrupted OR resume, dump the trace as JSON.
# The observer's deterministic summary and span skeletons join the
# record log in the comparison payload; wall-clock fields are excluded
# by construction so bit-equality is meaningful.
_RUNNER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.core import make_tuner
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload
from repro.obs import TuningObserver

task = SimulatedTask(
    DenseWorkload(batch=1, in_features=64, out_features=48), seed=7
)
tuner = make_tuner({arm!r}, task, seed=11, **{kwargs!r})
observer = TuningObserver()
if {resume!r}:
    result = tuner.resume({ckpt!r}, on_event=[observer], pipeline={pipeline!r})
else:
    result = tuner.tune(
        n_trial={n_trial}, early_stopping=None, on_event=[observer]
    )
if {trace_out!r}:
    observer.trace.write_jsonl({trace_out!r})
print(json.dumps({{
    "records": [
        [r.step, r.config_index, r.gflops, r.error] for r in result.records
    ],
    "best_index": result.best_index,
    "best_gflops": result.best_gflops,
    "summary": observer.summary().deterministic_dict(),
    "spans": observer.trace.span_skeletons(),
}}))
"""


# Fleet child: shard a two-task compile over a device pool with
# per-device checkpointing.  Fault injection with a real retry backoff
# paces the workers so the parent can SIGKILL one mid-batch.
_FLEET_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.nn.graph import GraphBuilder
from repro.obs import RunObservation
from repro.pipeline.compiler import DeploymentCompiler

b = GraphBuilder("fleet-smoke")
b.input((1, 3, 16, 16))
b.conv2d("c1", 8, padding=(1, 1))
b.relu("r1")
b.conv2d("c2", 12, padding=(1, 1))
b.relu("r2")
b.flatten("f")
b.dense("fc", 10)

DeploymentCompiler(b.graph, env_seed=123).tune(
    {arm!r}, n_trial={n_trial}, early_stopping=None,
    tuner_kwargs={kwargs!r},
    faults=FaultModel(rate=0.3, seed=13),
    retry=RetryPolicy(max_retries=4, backoff_s=0.05),
    observation=RunObservation(enable_metrics=False, enable_trace=False),
    checkpoint_dir={ckpt_dir!r},
    fleet={devices!r}, fleet_jobs=2,
)
print("CHILD-FINISHED")
"""

# Fresh process: the baseline (serial, or an uninterrupted fleet run
# for mixed pools) or the resumed fleet run; either way, dump the
# record stream and the per-task deterministic summaries.
# Bit-equality across the two closes the loop: SIGKILL one fleet
# worker mid-batch, resume the fleet, and you still reproduce the
# baseline exactly — each task measured on its home device's cost
# model.
_FLEET_RUNNER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.nn.graph import GraphBuilder
from repro.obs import RunObservation
from repro.pipeline.compiler import DeploymentCompiler
from repro.pipeline.records import RecordStore

b = GraphBuilder("fleet-smoke")
b.input((1, 3, 16, 16))
b.conv2d("c1", 8, padding=(1, 1))
b.relu("r1")
b.conv2d("c2", 12, padding=(1, 1))
b.relu("r2")
b.flatten("f")
b.dense("fc", 10)

store = RecordStore()
observation = RunObservation(enable_metrics=False, enable_trace=False)
fleet = {devices!r} if {fleet!r} else None
ckpt_dir = {ckpt_dir!r} or None
DeploymentCompiler(b.graph, env_seed=123).tune(
    {arm!r}, n_trial={n_trial}, early_stopping=None,
    tuner_kwargs={kwargs!r},
    faults=FaultModel(rate=0.3, seed=13),
    retry=RetryPolicy(max_retries=4),
    record_store=store, observation=observation,
    checkpoint_dir=ckpt_dir if fleet else None,
    resume={resume!r},
    fleet=fleet, fleet_jobs=2 if fleet else None,
)
print(json.dumps({{
    "records": [
        [r.config_index, r.gflops, r.error] for r in store
    ],
    "summaries": {{
        key: observation.observer(key).summary().deterministic_dict()
        for key in observation.keys()
    }},
}}))
"""


# Fresh process: the service smoke's ground truth — a direct serial
# tune of the same job spec, no service in the loop.  The service's
# records endpoint must reproduce this byte for byte even across a
# SIGKILL of the whole server process and a restart-time recovery.
_SERVICE_BASELINE = """
import json, sys
sys.path.insert(0, {src!r})
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler

compiler = DeploymentCompiler(build_model({model!r}), env_seed={env_seed})
compiler.tasks = compiler.tasks[:{max_tasks}]
collected = []

def collect(task_spec, result):
    for rec in result.records:
        collected.append({{
            "task_id": task_spec.task_id,
            "step": rec.step,
            "config_index": rec.config_index,
            "gflops": float(rec.gflops),
            "error": rec.error,
        }})

compiler.tune(
    {arm!r}, n_trial={n_trial}, early_stopping=None,
    trial_seed={trial_seed}, tuner_kwargs={kwargs!r},
    progress=collect,
)
collected.sort(key=lambda r: (r["task_id"], r["step"]))
print(json.dumps(collected))
"""


def _start_server(data_dir: str, timeout: float) -> tuple:
    """Launch ``repro serve --port 0`` and parse the bound URL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data-dir", data_dir, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout
    url = None
    while time.monotonic() < deadline:
        line = child.stdout.readline()
        if not line:
            if child.poll() is not None:
                raise RuntimeError("server exited before binding a port")
            time.sleep(0.02)
            continue
        if line.startswith("serving on "):
            url = line.split("serving on ", 1)[1].strip()
            break
    if url is None:
        child.kill()
        raise RuntimeError("server never printed its URL")
    return child, url


def _service_main(args) -> int:
    """SIGKILL the whole tuning service mid-job, restart, compare.

    The strongest crash-recovery claim the service makes: a submitted
    job survives the death of the entire server process.  The restart
    finds it ``running`` in the sqlite job store, resumes it from its
    per-device checkpoints, and finishes with records bit-identical to
    a direct serial tune that never saw a service at all.
    """
    sys.path.insert(0, str(SRC))
    from repro.service import ServiceClient

    kwargs = ARM_KWARGS[args.arm]
    model, max_tasks, trial_seed, env_seed = "alexnet", 2, 3, 7

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "service-data")

        print(f"[1/5] direct serial {args.arm} baseline on {model} "
              f"({args.n_trial} trials x {max_tasks} tasks, no service)")
        out = subprocess.run(
            [sys.executable, "-c", _SERVICE_BASELINE.format(
                src=str(SRC), model=model, arm=args.arm,
                n_trial=args.n_trial, max_tasks=max_tasks,
                trial_seed=trial_seed, env_seed=env_seed, kwargs=kwargs,
            )],
            capture_output=True, text=True, check=True,
        )
        baseline = json.loads(out.stdout.strip().splitlines()[-1])

        print("[2/5] starting the service and submitting the job")
        server, url = _start_server(data_dir, args.timeout)
        client = ServiceClient(url, timeout_s=10.0)
        job = client.submit(
            model=model, arm=args.arm, n_trial=args.n_trial,
            max_tasks=max_tasks, trial_seed=trial_seed,
            env_seed=env_seed, tuner_kwargs=kwargs,
        )
        job_id = job["job_id"]

        # wait until some per-device task checkpoint has been rewritten
        # after its step-0 snapshot — i.e. the job is mid-batch
        ckpt_root = Path(data_dir) / "jobs" / job_id
        deadline = time.monotonic() + args.timeout
        first_mtimes: dict = {}
        killed_mid_run = False
        while time.monotonic() < deadline:
            for path in ckpt_root.glob("device-*/task-*.ckpt"):
                mtime = path.stat().st_mtime_ns
                seen = first_mtimes.setdefault(path, mtime)
                if mtime != seen:
                    killed_mid_run = True
            if killed_mid_run:
                break
            state = client.job(job_id)["state"]
            if state in ("done", "failed", "cancelled"):
                break
            time.sleep(0.02)
        if not killed_mid_run:
            server.kill()
            print("job finished before the server could be killed; "
                  "increase --n-trial", file=sys.stderr)
            return 1

        print("[3/5] delivering SIGKILL to the whole server mid-job")
        server.send_signal(signal.SIGKILL)
        server.wait()
        if not list(ckpt_root.glob("device-*/task-*")):
            print("no per-device checkpoints survived the kill",
                  file=sys.stderr)
            return 1

        print("[4/5] restarting the service on the same data dir")
        server, url = _start_server(data_dir, args.timeout)
        client = ServiceClient(url, timeout_s=10.0)
        done = client.wait(job_id, timeout_s=args.timeout)
        done_records = client.records(job_id)["records"]
        server.terminate()
        server.wait()

        print("[5/5] comparing the recovered job to the baseline")
        if done["state"] != "done":
            print(f"recovered job ended {done['state']!r}: "
                  f"{done['error']}", file=sys.stderr)
            return 1
        if done["attempts"] != 2:
            print(f"expected 2 attempts (run + recovery), got "
                  f"{done['attempts']}", file=sys.stderr)
            return 1
        if done_records != baseline:
            print("MISMATCH: recovered service job diverged from the "
                  "direct serial tune", file=sys.stderr)
            for i, (b, r) in enumerate(zip(baseline, done_records)):
                if b != r:
                    print(f"  first divergence at record {i}: "
                          f"{b} != {r}", file=sys.stderr)
                    break
            print(f"  baseline: {len(baseline)} records, "
                  f"recovered: {len(done_records)}", file=sys.stderr)
            return 1

        if args.keep_db:
            import shutil

            shutil.copy(Path(data_dir) / "jobs.sqlite", args.keep_db)
            print(f"job database copied to {args.keep_db}")
        print(f"OK: SIGKILL + service restart recovered {job_id} "
              f"bit-identically — all {len(baseline)} records match "
              f"the direct serial tune (attempts: {done['attempts']})")
        return 0


def _run_trace(arm: str, kwargs: dict, n_trial: int, ckpt: str,
               resume: bool, trace_out: str = "",
               pipeline: bool = False) -> dict:
    code = _RUNNER.format(
        src=str(SRC), arm=arm, kwargs=kwargs, n_trial=n_trial,
        ckpt=ckpt, resume=resume, trace_out=trace_out, pipeline=pipeline,
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _run_fleet(arm: str, kwargs: dict, n_trial: int, ckpt_dir: str,
               devices: str, fleet: bool, resume: bool) -> dict:
    code = _FLEET_RUNNER.format(
        src=str(SRC), arm=arm, kwargs=kwargs, n_trial=n_trial,
        ckpt_dir=ckpt_dir, devices=devices, fleet=fleet, resume=resume,
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _is_serial_equivalent(devices: str) -> bool:
    """True when every pool slot is the compiler's own device class."""
    tokens = [
        t.partition(":")[0].strip()
        for t in devices.split(",") if t.strip()
    ]
    return all(t == _SERIAL_EQUIVALENT_CLASS for t in tokens)


def _fleet_main(args) -> int:
    """SIGKILL a fleet worker mid-batch, resume the pool, compare.

    For a uniform ``gtx1080ti`` pool the baseline is the *serial*
    single-device run: fleet sharding with work stealing must reproduce
    it bit-for-bit even across a kill and a whole-fleet resume from the
    per-device checkpoints.  For a mixed pool each task is measured on
    its home device, so the baseline is an *uninterrupted fleet run*
    with the same spec — kill/resume must not change a single record.
    """
    kwargs = ARM_KWARGS[args.arm]
    serial_baseline = _is_serial_equivalent(args.devices)
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_dir = os.path.join(tmp, "fleet-ckpt")

        if serial_baseline:
            print(f"[1/4] serial {args.arm} baseline ({args.n_trial} "
                  f"trials per task, no fleet)")
            baseline = _run_fleet(args.arm, kwargs, args.n_trial, "",
                                  devices=args.devices, fleet=False,
                                  resume=False)
        else:
            print(f"[1/4] uninterrupted {args.arm} fleet baseline on "
                  f"{args.devices} ({args.n_trial} trials per task)")
            baseline = _run_fleet(args.arm, kwargs, args.n_trial, "",
                                  devices=args.devices, fleet=True,
                                  resume=False)

        print(f"[2/4] starting fleet child on {args.devices} "
              "(2 workers, fault injection with real retry backoff)")
        child = subprocess.Popen(
            [sys.executable, "-c", _FLEET_CHILD.format(
                src=str(SRC), arm=args.arm, kwargs=kwargs,
                n_trial=args.n_trial, ckpt_dir=ckpt_dir,
                devices=args.devices,
            )],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        # wait until some per-device task checkpoint has been rewritten
        # after its step-0 snapshot — i.e. a worker is mid-batch
        deadline = time.monotonic() + args.timeout
        first_mtimes: dict = {}
        killed_mid_run = False
        while time.monotonic() < deadline:
            for path in Path(ckpt_dir).glob("device-*/task-*.ckpt"):
                mtime = path.stat().st_mtime_ns
                seen = first_mtimes.setdefault(path, mtime)
                if mtime != seen:
                    killed_mid_run = True
            if killed_mid_run or child.poll() is not None:
                break
            time.sleep(0.02)
        if child.poll() is not None:
            print("fleet child finished before it could be killed; "
                  "increase --n-trial", file=sys.stderr)
            return 1

        print("[3/4] delivering SIGKILL to the fleet mid-batch")
        child.send_signal(signal.SIGKILL)
        child.wait()
        if not list(Path(ckpt_dir).glob("device-*/task-*")):
            print("no per-device checkpoints survived the kill",
                  file=sys.stderr)
            return 1

        what = "serial" if serial_baseline else "uninterrupted fleet"
        print(f"[4/4] resuming the whole fleet and comparing to the "
              f"{what} baseline")
        resumed = _run_fleet(args.arm, kwargs, args.n_trial, ckpt_dir,
                             devices=args.devices, fleet=True, resume=True)

        if resumed != baseline:
            print(f"MISMATCH: resumed fleet diverged from the {what} "
                  "baseline", file=sys.stderr)
            for i, (b, r) in enumerate(
                zip(baseline["records"], resumed["records"])
            ):
                if b != r:
                    print(f"  first divergence at record {i}: {b} != {r}",
                          file=sys.stderr)
                    break
            if resumed["summaries"] != baseline["summaries"]:
                print("  per-task summaries differ", file=sys.stderr)
            return 1

        print(f"OK: SIGKILL + whole-fleet resume reproduced all "
              f"{len(baseline['records'])} records and "
              f"{len(baseline['summaries'])} per-task summaries of the "
              f"{what} run")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arm", default="bted", choices=sorted(ARM_KWARGS))
    parser.add_argument("--n-trial", type=int, default=32)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for the mid-run checkpoint")
    parser.add_argument("--trace-out", default=None,
                        help="write the resumed run's JSONL span trace "
                             "here (e.g. for a CI artifact)")
    parser.add_argument("--fleet", action="store_true",
                        help="kill one worker of a device fleet "
                             "mid-batch, resume the fleet, and compare "
                             "against the baseline (serial for a uniform "
                             "gtx1080ti pool, an uninterrupted fleet run "
                             "otherwise)")
    parser.add_argument("--devices", default="gtx1080ti,gtx1080ti",
                        help="fleet spec for --fleet (comma-separated "
                             "presets, optional :fault_rate suffixes)")
    parser.add_argument("--pipeline", action="store_true",
                        help="run the killed child (and the resume) in "
                             "pipelined mode; the baseline stays serial, "
                             "so the comparison also pins cross-mode "
                             "bit-identity")
    parser.add_argument("--service", action="store_true",
                        help="SIGKILL the whole tuning service (`repro "
                             "serve`) mid-job, restart it on the same "
                             "data dir, and verify the recovered job's "
                             "records are bit-identical to a direct "
                             "serial tune")
    parser.add_argument("--keep-db", default=None,
                        help="--service only: copy the final jobs.sqlite "
                             "here (e.g. for a CI artifact)")
    args = parser.parse_args()
    if args.service and (args.fleet or args.pipeline):
        parser.error("--service is its own mode; drop --fleet/--pipeline")
    if args.service:
        return _service_main(args)
    if args.fleet and args.pipeline:
        parser.error("--pipeline is a single-run mode; drop --fleet")
    if args.fleet:
        return _fleet_main(args)
    kwargs = ARM_KWARGS[args.arm]

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "run.ckpt")

        print(f"[1/4] uninterrupted {args.arm} baseline "
              f"({args.n_trial} trials)")
        baseline = _run_trace(args.arm, kwargs, args.n_trial, ckpt,
                              resume=False)

        mode = "pipelined " if args.pipeline else ""
        print(f"[2/4] starting {mode}child with per-batch checkpointing")
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD.format(
                src=str(SRC), arm=args.arm, kwargs=kwargs,
                n_trial=args.n_trial, ckpt=ckpt, pipeline=args.pipeline,
            )],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        # wait for a *mid-run* checkpoint (the step-0 snapshot is
        # written immediately; any later mtime bump means a measured
        # batch has been checkpointed)
        deadline = time.monotonic() + args.timeout
        first_mtime = None
        while time.monotonic() < deadline:
            if os.path.exists(ckpt):
                mtime = os.stat(ckpt).st_mtime_ns
                if first_mtime is None:
                    first_mtime = mtime
                elif mtime != first_mtime:
                    break
            if child.poll() is not None:
                break
            time.sleep(0.02)
        if child.poll() is not None:
            print("child finished before it could be killed; "
                  "increase --n-trial", file=sys.stderr)
            return 1

        print("[3/4] delivering SIGKILL mid-run")
        child.send_signal(signal.SIGKILL)
        child.wait()
        if not os.path.exists(ckpt):
            print("no checkpoint survived the kill", file=sys.stderr)
            return 1

        print("[4/4] resuming in a fresh process and comparing")
        resumed = _run_trace(args.arm, kwargs, args.n_trial, ckpt,
                             resume=True, trace_out=args.trace_out or "",
                             pipeline=args.pipeline)

        if resumed != baseline:
            print("MISMATCH: resumed run diverged from the baseline",
                  file=sys.stderr)
            print(f"  baseline best: {baseline['best_index']} "
                  f"@ {baseline['best_gflops']}", file=sys.stderr)
            print(f"  resumed  best: {resumed['best_index']} "
                  f"@ {resumed['best_gflops']}", file=sys.stderr)
            for i, (b, r) in enumerate(
                zip(baseline["records"], resumed["records"])
            ):
                if b != r:
                    print(f"  first divergence at record {i}: {b} != {r}",
                          file=sys.stderr)
                    break
            if resumed["summary"] != baseline["summary"]:
                print("  run summaries differ", file=sys.stderr)
            if resumed["spans"] != baseline["spans"]:
                print("  trace skeletons differ", file=sys.stderr)
            return 1

        if args.trace_out:
            print(f"resumed trace written to {args.trace_out}")
        print(f"OK: SIGKILL + resume reproduced all "
              f"{len(baseline['records'])} records, the incumbent "
              f"(best config {baseline['best_index']}), the run summary, "
              f"and all {len(baseline['spans'])} trace span skeletons")
        return 0


if __name__ == "__main__":
    sys.exit(main())
