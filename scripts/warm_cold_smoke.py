#!/usr/bin/env python
"""Warm-vs-cold smoke test: tune sibling tasks twice, assert transfer.

The unit tests pin the tuning-log contracts piecewise; this script
exercises the whole loop the way a user would.  It runs the three-pass
warm-vs-cold study (:func:`repro.experiments.transfer.run_warm_cold`)
on the first few tasks of a zoo model with a persistent
:class:`~repro.tlog.TuningLogDB`:

1. **cold** — tune from scratch, recording into the log;
2. **warm** — tune again with ``--warm-start`` (hit-serving disabled)
   so each task seeds from its own cold history;
3. **hits** — tune once more normally: every task must resolve to an
   exact signature hit and finish with zero measurements.

It then asserts the transfer actually paid off: at least one exact hit
(expected: all tasks), zero measurements spent by the hit pass, no
task slower warm than cold, and at least one task reaching 95% of the
cold best in strictly fewer measurements.  The tuning-log directory is
left behind (``--tlog-dir``) so CI can upload the index as an
artifact.

Run directly (used by CI)::

    python scripts/warm_cold_smoke.py [--model alexnet] [--n-trial 64]

Exit code 0 means the warm-start contract held.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.transfer import run_warm_cold  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="alexnet")
    parser.add_argument("--arm", default="bted")
    parser.add_argument("--n-trial", type=int, default=64)
    parser.add_argument("--max-tasks", type=int, default=2,
                        help="number of sibling tasks to tune")
    parser.add_argument("--tlog-dir", default="warm-cold-tlog",
                        help="tuning-log directory, kept after the run "
                             "(its index.json is a CI artifact)")
    args = parser.parse_args()

    print(f"[1/2] three-pass warm-vs-cold study: {args.model} / "
          f"{args.arm}, first {args.max_tasks} tasks, "
          f"{args.n_trial} trials each")
    result = run_warm_cold(
        model_name=args.model,
        tuner_name=args.arm,
        n_trial=args.n_trial,
        max_tasks=args.max_tasks,
        tlog_dir=args.tlog_dir,
    )
    print(result.report())

    print("[2/2] checking the warm-start contract")
    failures = []
    if result.num_hits < 1:
        failures.append(
            f"expected >=1 exact hit on the replay pass, got "
            f"{result.num_hits} (statuses: {result.hit_status})"
        )
    if result.hit_measurements != 0:
        failures.append(
            f"hit-serving pass spent {result.hit_measurements} "
            f"measurements; exact hits must cost zero"
        )
    for task_id in result.task_ids:
        cold, warm = result.cold_to95[task_id], result.warm_to95[task_id]
        if warm is None or (cold is not None and warm > cold):
            failures.append(
                f"task {task_id}: warm pass needed {warm} measurements "
                f"to reach 95% of the cold best vs {cold} cold"
            )
    if not result.warm_faster_tasks():
        failures.append(
            "no task reached 95% of the cold best in strictly fewer "
            "measurements when warm-started"
        )

    index = Path(args.tlog_dir) / "index.json"
    if not index.exists():
        failures.append(f"tuning-log index missing at {index}")
    else:
        doc = json.loads(index.read_text())
        print(f"tuning log: version {doc.get('version')}, "
              f"{len(doc.get('segments', {}))} task segments at "
              f"{args.tlog_dir}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    reduction = result.mean_reduction_pct()
    print(f"OK: {result.num_hits}/{len(result.task_ids)} exact hits at "
          f"zero measurement cost; "
          f"{len(result.warm_faster_tasks())}/{len(result.task_ids)} "
          f"tasks strictly faster warm "
          f"(avg -{reduction:.1f}% measurements to 95%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
