"""Transductive experimental design — Algorithm 1 of the paper.

Given an un-sampled candidate set ``V`` (as feature vectors), TED
greedily selects the ``m`` configurations most contributive to
initializing an evaluation function: each step picks

    x = argmax_v ||K_v||^2 / (k(v, v) + mu)

and deflates the kernel matrix ``K <- K - K_x K_x^T / (k(x,x) + mu)``,
so subsequent picks are pushed away from already-selected points — the
selected set scatters across the input design space.

The paper states the matrix entries are "computed as Euclidean
distance"; a raw distance matrix would make ``k(v, v) = 0`` and the
selection degenerate, so — following the original TED formulation of
Yu, Bi & Tresp (ICML'06) that the paper cites — we use an RBF kernel
*derived from* the Euclidean distances, with the bandwidth set to the
median pairwise distance (a standard self-tuning choice).  This keeps
the algorithm parameter-free apart from ``mu``.

Two selection back-ends are available:

* ``method="exact"`` (default) — the reference greedy loop, which
  recomputes column norms with a full ``einsum`` over ``K`` and applies
  the rank-1 deflation in place.  This is the pre-optimization
  implementation, kept byte-for-byte so golden traces stay pinned.
* ``method="fast"`` — an incremental variant that never rewrites ``K``:
  deflation vectors are accumulated in a matrix ``V`` (so the deflated
  kernel is implicitly ``K - V V^T``) and column norms/diagonal are
  maintained by rank-1 updates.  Per pick this costs one BLAS
  matrix-vector product instead of an ``einsum`` pass *plus* an
  ``outer``-product allocation *plus* a full ``K`` rewrite.  The
  arithmetic is algebraically identical but floating-point
  reassociation can, in principle, flip near-tied argmax picks, so the
  fast path is opt-in; equivalence is covered by property tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.mathx import pairwise_sq_dists

#: the selection back-ends accepted by :func:`ted_select`
TED_METHODS = ("exact", "fast")


def rbf_kernel(
    features: np.ndarray, bandwidth: Optional[float] = None
) -> np.ndarray:
    """RBF kernel matrix of a set of feature vectors.

    ``bandwidth`` defaults to the median non-zero pairwise Euclidean
    distance (self-tuning heuristic).  Degenerate inputs (a single
    point, or all points identical) fall back to bandwidth 1.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    sq = pairwise_sq_dists(features, features)
    if bandwidth is None:
        # strict-upper-triangle mask via broadcast comparison: same
        # multiset of distances as np.triu_indices(k=1) but without
        # materializing two O(n^2) int64 index arrays
        n = len(sq)
        upper = np.arange(n)[None, :] > np.arange(n)[:, None]
        positive = sq[upper & (sq > 0)]
        if len(positive) == 0:
            bandwidth = 1.0
        else:
            bandwidth = float(np.sqrt(np.median(positive)))
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return np.exp(-sq / (2.0 * bandwidth * bandwidth))


def ted_select(
    features: np.ndarray,
    m: int,
    mu: float = 0.1,
    bandwidth: Optional[float] = None,
    method: str = "exact",
) -> List[int]:
    """Select ``m`` diverse, representative rows of ``features``.

    Returns the selected row indices in pick order.  This is Algorithm 1
    (``TED(V, mu, m)``) with the kernel built by :func:`rbf_kernel`.

    ``m`` is clipped to ``len(features)``; ``mu`` is the regularization
    coefficient (paper uses 0.1).  ``method`` picks the back-end (see
    the module docstring); ``"fast"`` needs ``mu > 0`` and falls back
    to ``"exact"`` otherwise.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    if method not in TED_METHODS:
        raise ValueError(f"method must be one of {TED_METHODS}")
    n = len(features)
    if n == 0:
        return []
    if m <= 0:
        raise ValueError("m must be positive")
    if mu < 0:
        raise ValueError("mu must be non-negative")
    m = min(m, n)

    K = rbf_kernel(features, bandwidth=bandwidth)
    if method == "fast" and mu > 0:
        return _ted_select_fast(K, m, mu)
    return _ted_select_exact(K, m, mu)


def _ted_select_exact(K: np.ndarray, m: int, mu: float) -> List[int]:
    """The pre-optimization greedy loop (reference implementation)."""
    n = len(K)
    selected: List[int] = []
    available = np.ones(n, dtype=bool)
    for _ in range(m):
        col_norms = np.einsum("ij,ij->j", K, K)
        scores = col_norms / (np.diag(K) + mu)
        scores = np.where(available, scores, -np.inf)
        x = int(np.argmax(scores))
        selected.append(x)
        available[x] = False
        kx = K[:, x].copy()
        K -= np.outer(kx, kx) / (kx[x] + mu)
    return selected


def _ted_select_fast(K: np.ndarray, m: int, mu: float) -> List[int]:
    """Incremental greedy TED: rank-1 norm updates, ``K`` never rewritten.

    Maintains the deflated kernel implicitly as ``K - V V^T`` where the
    ``t``-th column of ``V`` is ``kx_t / sqrt(kx_t[x_t] + mu)``.  The
    score numerator (squared column norms) and denominator (diagonal)
    are updated in O(n) per pick from

        ||K'_j||^2 = ||K_j||^2 - (2/c) kx_j (K kx)_j
                     + (kx_j^2 / c^2) ||kx||^2
        K'_jj      = K_jj - kx_j^2 / c

    with ``(K kx)`` the only O(n^2) term — a single BLAS gemv against
    the *original* kernel plus O(n t) corrections through ``V``.
    """
    n = len(K)
    col_norms = np.einsum("ij,ij->j", K, K)
    diag = np.diag(K).astype(np.float64, copy=True)
    V = np.empty((n, m))
    selected: List[int] = []
    available = np.ones(n, dtype=bool)
    for t in range(m):
        scores = col_norms / (diag + mu)
        scores[~available] = -np.inf
        x = int(np.argmax(scores))
        selected.append(x)
        available[x] = False
        if t == m - 1:
            break  # the last pick needs no further deflation
        Vt = V[:, :t]
        kx = K[:, x] - Vt @ Vt[x]  # deflated column of the current step
        c = kx[x] + mu
        t_vec = K @ kx - Vt @ (Vt.T @ kx)  # current-kernel matvec
        kx_sq = kx * kx
        col_norms -= (2.0 / c) * (kx * t_vec) - (
            float(kx @ kx) / (c * c)
        ) * kx_sq
        diag -= kx_sq / c
        V[:, t] = kx / np.sqrt(c)
    return selected
