"""Transductive experimental design — Algorithm 1 of the paper.

Given an un-sampled candidate set ``V`` (as feature vectors), TED
greedily selects the ``m`` configurations most contributive to
initializing an evaluation function: each step picks

    x = argmax_v ||K_v||^2 / (k(v, v) + mu)

and deflates the kernel matrix ``K <- K - K_x K_x^T / (k(x,x) + mu)``,
so subsequent picks are pushed away from already-selected points — the
selected set scatters across the input design space.

The paper states the matrix entries are "computed as Euclidean
distance"; a raw distance matrix would make ``k(v, v) = 0`` and the
selection degenerate, so — following the original TED formulation of
Yu, Bi & Tresp (ICML'06) that the paper cites — we use an RBF kernel
*derived from* the Euclidean distances, with the bandwidth set to the
median pairwise distance (a standard self-tuning choice).  This keeps
the algorithm parameter-free apart from ``mu``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.mathx import pairwise_sq_dists


def rbf_kernel(
    features: np.ndarray, bandwidth: Optional[float] = None
) -> np.ndarray:
    """RBF kernel matrix of a set of feature vectors.

    ``bandwidth`` defaults to the median non-zero pairwise Euclidean
    distance (self-tuning heuristic).  Degenerate inputs (a single
    point, or all points identical) fall back to bandwidth 1.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    sq = pairwise_sq_dists(features, features)
    if bandwidth is None:
        off_diag = sq[np.triu_indices(len(sq), k=1)]
        positive = off_diag[off_diag > 0]
        if len(positive) == 0:
            bandwidth = 1.0
        else:
            bandwidth = float(np.sqrt(np.median(positive)))
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return np.exp(-sq / (2.0 * bandwidth * bandwidth))


def ted_select(
    features: np.ndarray,
    m: int,
    mu: float = 0.1,
    bandwidth: Optional[float] = None,
) -> List[int]:
    """Select ``m`` diverse, representative rows of ``features``.

    Returns the selected row indices in pick order.  This is Algorithm 1
    (``TED(V, mu, m)``) with the kernel built by :func:`rbf_kernel`.

    ``m`` is clipped to ``len(features)``; ``mu`` is the regularization
    coefficient (paper uses 0.1).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    n = len(features)
    if n == 0:
        return []
    if m <= 0:
        raise ValueError("m must be positive")
    if mu < 0:
        raise ValueError("mu must be non-negative")
    m = min(m, n)

    K = rbf_kernel(features, bandwidth=bandwidth)
    selected: List[int] = []
    available = np.ones(n, dtype=bool)
    for _ in range(m):
        col_norms = np.einsum("ij,ij->j", K, K)
        scores = col_norms / (np.diag(K) + mu)
        scores = np.where(available, scores, -np.inf)
        x = int(np.argmax(scores))
        selected.append(x)
        available[x] = False
        kx = K[:, x].copy()
        K -= np.outer(kx, kx) / (kx[x] + mu)
    return selected
