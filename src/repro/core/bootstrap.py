"""Bootstrap-guided sampling — Algorithm 3 of the paper.

From the already-measured set ``(X, Y)``, draw ``Gamma`` bootstrap
resamples (with replacement, same cardinality), fit one evaluation
function per resample, and score candidates by the *summed* ensemble.
The next configuration is the candidate in the current searching space
``C`` that maximizes the summed prediction.

The ensemble (bagging) reduces evaluation-function variance exactly as
Sec. II-C motivates: each resample contains ~63.2% unique points, so
the functions disagree where data is thin and their sum is a smoothed,
more robust acquisition score.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.learning.gbt import GradientBoostedTrees
from repro.learning.tree import apply_bins, bin_features
from repro.obs.hooks import notify_refit, refit_hooks_active
from repro.utils.rng import SeedLike, as_generator

#: factory for one evaluation function: () -> model with fit/predict
ModelFactory = Callable[[], GradientBoostedTrees]


class _DefaultModelFactory:
    """Default evaluation-function factory: small GBTs sharing one RNG.

    A class (not a closure) so ensembles — and the tuners holding them —
    stay picklable for checkpointing; pickle preserves the shared
    generator object between the factory and its ensemble.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def __call__(self) -> GradientBoostedTrees:
        return GradientBoostedTrees(
            n_estimators=24,
            learning_rate=0.28,
            max_depth=4,
            subsample=0.9,
            seed=self._rng,
        )


def _default_model_factory(rng: np.random.Generator) -> ModelFactory:
    return _DefaultModelFactory(rng)


def _fit_member(
    payload: Tuple[
        GradientBoostedTrees, int, np.ndarray, np.ndarray, Optional[list]
    ],
) -> GradientBoostedTrees:
    """Worker-side fit of one ensemble member (parallel ``fit_jobs`` path)."""
    model, seed, X, y, edges = payload
    model.reseed(seed)
    if edges is not None and getattr(model, "method", None) == "hist":
        model.bin_edges = edges
    model.fit(X, y)
    return model


class BootstrapEnsemble:
    """``Gamma`` evaluation functions fit on bootstrap resamples.

    The framework is "independent of the specific forms of evaluation
    functions" (Sec. IV); pass any ``model_factory`` returning an object
    with ``fit(X, y)`` and ``predict(X)`` to swap the learner.

    Two opt-in hot-path accelerations (both default off because they
    perturb either the arithmetic or the RNG stream relative to the
    historical — golden-trace-pinned — behaviour):

    * ``share_bin_edges`` — quantile-bin the *full* measured matrix once
      per :meth:`fit` and hand the edges to every histogram-tree member,
      instead of each member re-deriving quantiles from its resample.
    * ``fit_jobs`` — fan the Gamma member fits out over a process pool
      (the PR-1 executor-pool pattern).  Resample rows and per-member
      seeds are drawn serially first, so the parallel fit is
      deterministic in itself, but its RNG consumption differs from the
      serial interleaving.
    * ``refit="incremental"`` — warm-started refits: after the first
      full fit, each subsequent :meth:`fit` draws a fresh bootstrap
      resample per member and grows only ``incremental_rounds`` new
      boosting rounds on it (:meth:`GradientBoostedTrees.fit_more`),
      keeping previously-grown trees and the bin edges frozen at the
      first fit.  Once a member would exceed ``max_trees``, the whole
      ensemble is refit from scratch (a generational refresh that
      re-derives bin edges and bounds both predict cost and staleness).
      ``reuse_trees=False`` disables the warm path entirely, making the
      mode bit-identical to ``refit="full"``.  With ``reuse_trees=True``
      bin-edge sharing is forced on so all members bin a candidate
      matrix once per prediction pass.
    """

    def __init__(
        self,
        gamma: int = 2,
        model_factory: Optional[ModelFactory] = None,
        seed: SeedLike = None,
        share_bin_edges: bool = False,
        fit_jobs: Optional[int] = None,
        refit: str = "full",
        incremental_rounds: int = 8,
        max_trees: int = 96,
        reuse_trees: bool = True,
    ):
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        if fit_jobs is not None and fit_jobs < 1:
            raise ValueError("fit_jobs must be >= 1")
        if refit not in ("full", "incremental"):
            raise ValueError("refit must be 'full' or 'incremental'")
        if incremental_rounds < 1:
            raise ValueError("incremental_rounds must be >= 1")
        if max_trees < 1:
            raise ValueError("max_trees must be >= 1")
        if refit == "incremental" and fit_jobs is not None and fit_jobs > 1:
            raise ValueError(
                "refit='incremental' is not supported with parallel fit_jobs"
            )
        self.gamma = gamma
        self.share_bin_edges = share_bin_edges
        self.fit_jobs = fit_jobs
        self.refit = refit
        self.incremental_rounds = incremental_rounds
        self.max_trees = max_trees
        self.reuse_trees = reuse_trees
        if refit == "incremental" and reuse_trees:
            # frozen shared edges keep cross-batch tree reuse coherent and
            # let predict_stats bin the candidate scope once for all members
            self.share_bin_edges = True
        self._rng = as_generator(seed)
        self._factory = (
            model_factory
            if model_factory is not None
            else _default_model_factory(self._rng)
        )
        self._models: List[GradientBoostedTrees] = []
        #: trees carried over (not refit) across all incremental refits
        self.reused_trees_total = 0

    @property
    def is_fitted(self) -> bool:
        return bool(self._models)

    def _shared_edges(
        self, model: GradientBoostedTrees, X: np.ndarray
    ) -> Optional[list]:
        """Bin edges of the full matrix, when sharing applies to ``model``."""
        if not self.share_bin_edges:
            return None
        if getattr(model, "method", None) != "hist":
            return None
        _, edges = bin_features(X, n_bins=model.n_bins)
        return edges

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "BootstrapEnsemble":
        """Resample ``(X, y)`` Gamma times and fit one model each.

        ``sample_weight`` (optional, same length as ``y``) is carried
        through each bootstrap resample to the member fits — the
        transfer-learning path discounts history rows this way.  With
        ``sample_weight=None`` the fit is bit-identical to the
        historical unweighted behaviour.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape != y.shape:
                raise ValueError("sample_weight must match y in length")
        n = len(y)
        if n == 0:
            raise ValueError("cannot fit on an empty measured set")
        # observability hook: only pay for the clock when someone listens
        timed = refit_hooks_active()
        start = time.perf_counter() if timed else 0.0
        if self._can_fit_incrementally():
            self._fit_incremental(X, y, sample_weight, n)
            if timed:
                notify_refit(
                    n, time.perf_counter() - start, "ensemble_incremental"
                )
            return self
        if self.fit_jobs is not None and self.fit_jobs > 1 and self.gamma > 1:
            if sample_weight is not None:
                raise ValueError(
                    "sample_weight is not supported with parallel fit_jobs"
                )
            self._fit_parallel(X, y)
            if timed:
                notify_refit(n, time.perf_counter() - start, "ensemble")
            return self
        self._models = []
        shared_edges: Optional[list] = None
        for _ in range(self.gamma):
            rows = self._rng.integers(0, n, size=n)
            model = self._factory()
            if self.share_bin_edges:
                if shared_edges is None:
                    shared_edges = self._shared_edges(model, X)
                if shared_edges is not None:
                    model.bin_edges = shared_edges
            if sample_weight is None:
                model.fit(X[rows], y[rows])
            else:
                model.fit(X[rows], y[rows], sample_weight=sample_weight[rows])
            self._models.append(model)
        if timed:
            notify_refit(n, time.perf_counter() - start, "ensemble")
        return self

    def _can_fit_incrementally(self) -> bool:
        """True when this :meth:`fit` call may take the warm-start path."""
        if self.refit != "incremental" or not self.reuse_trees:
            return False
        if not self._models:
            return False  # first fit is always full
        for model in self._models:
            if not hasattr(model, "fit_more"):
                return False  # custom factory without warm-start support
            if model.n_trees + self.incremental_rounds > self.max_trees:
                return False  # generational refresh: refit from scratch
        return True

    def _fit_incremental(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray],
        n: int,
    ) -> None:
        """Warm-started refit: new bootstrap rounds atop the kept trees."""
        for model in self._models:
            rows = self._rng.integers(0, n, size=n)
            self.reused_trees_total += model.n_trees
            if sample_weight is None:
                model.fit_more(X[rows], y[rows], self.incremental_rounds)
            else:
                model.fit_more(
                    X[rows],
                    y[rows],
                    self.incremental_rounds,
                    sample_weight=sample_weight[rows],
                )

    def _fit_parallel(self, X: np.ndarray, y: np.ndarray) -> "BootstrapEnsemble":
        """Fan the Gamma member fits out over a process pool.

        Deterministic given the ensemble seed (resample rows and member
        seeds are drawn serially up front), but *not* RNG-stream
        identical to the serial path — opt-in only.
        """
        n = len(y)
        rows_per_member = [
            self._rng.integers(0, n, size=n) for _ in range(self.gamma)
        ]
        seeds = [int(self._rng.integers(0, 2**62)) for _ in range(self.gamma)]
        models = [self._factory() for _ in range(self.gamma)]
        shared_edges = self._shared_edges(models[0], X)
        payloads = [
            (model, seed, X[rows], y[rows], shared_edges)
            for model, seed, rows in zip(models, seeds, rows_per_member)
        ]
        jobs = min(self.fit_jobs or 1, self.gamma)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            self._models = list(pool.map(_fit_member, payloads))
        return self

    def _common_edges(self) -> Optional[list]:
        """The bin-edge list shared by *all* members, else ``None``.

        Identity-compared: only edges installed by ``share_bin_edges``
        (one list object handed to every member) qualify, which is what
        makes binning the candidate matrix once per pass safe.
        """
        edges: Optional[list] = None
        for model in self._models:
            e = getattr(model, "_edges", None)
            if e is None or not hasattr(model, "predict_binned"):
                return None
            if edges is None:
                edges = e
            elif e is not edges:
                return None
        return edges

    def _member_predictions(self, X: np.ndarray) -> List[np.ndarray]:
        """Each member's prediction on ``X``, binning once when shared."""
        edges = self._common_edges()
        if edges is not None:
            codes = apply_bins(X, edges)
            return [model.predict_binned(codes) for model in self._models]
        return [model.predict(X) for model in self._models]

    def predict_stats(
        self, X: np.ndarray, return_std: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Summed prediction and (optionally) across-member std, one pass.

        Computes every member's prediction exactly once and reuses it
        for both statistics — the batched-acquisition entry point that
        replaces back-to-back :meth:`predict_sum` + :meth:`predict_std`
        calls.  Bit-identical to those methods (same accumulation
        order, same stacking).
        """
        if not self.is_fitted:
            raise RuntimeError("ensemble is not fitted")
        X = np.asarray(X, dtype=np.float64)
        preds = self._member_predictions(X)
        total = np.zeros(X.shape[0])
        for pred in preds:
            total += pred
        std = np.stack(preds).std(axis=0) if return_std else None
        return total, std

    def predict_sum(self, X: np.ndarray) -> np.ndarray:
        """Summed ensemble prediction (the acquisition score of Alg. 3)."""
        return self.predict_stats(X)[0]

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        """Mean ensemble prediction (sum / Gamma)."""
        return self.predict_sum(X) / self.gamma

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Across-ensemble std-dev — an uncertainty proxy (needs Gamma >= 2)."""
        std = self.predict_stats(X, return_std=True)[1]
        assert std is not None
        return std


def bootstrap_sample(
    measured_features: np.ndarray,
    measured_scores: np.ndarray,
    candidate_features: np.ndarray,
    candidate_indices: Sequence[int],
    gamma: int = 2,
    seed: SeedLike = None,
    model_factory: Optional[ModelFactory] = None,
) -> int:
    """One-shot ``BS(X, Y, C, Gamma)``: return the chosen config index.

    ``candidate_indices[i]`` labels row ``i`` of ``candidate_features``;
    the returned value is the label of the argmax candidate.
    """
    if len(candidate_indices) == 0:
        raise ValueError("candidate set C is empty")
    if len(candidate_indices) != len(candidate_features):
        raise ValueError("candidate labels and features disagree in length")
    ensemble = BootstrapEnsemble(
        gamma=gamma, model_factory=model_factory, seed=seed
    )
    ensemble.fit(measured_features, measured_scores)
    scores = ensemble.predict_sum(candidate_features)
    return int(candidate_indices[int(np.argmax(scores))])
