"""Bootstrap-guided sampling — Algorithm 3 of the paper.

From the already-measured set ``(X, Y)``, draw ``Gamma`` bootstrap
resamples (with replacement, same cardinality), fit one evaluation
function per resample, and score candidates by the *summed* ensemble.
The next configuration is the candidate in the current searching space
``C`` that maximizes the summed prediction.

The ensemble (bagging) reduces evaluation-function variance exactly as
Sec. II-C motivates: each resample contains ~63.2% unique points, so
the functions disagree where data is thin and their sum is a smoothed,
more robust acquisition score.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.learning.gbt import GradientBoostedTrees
from repro.utils.rng import SeedLike, as_generator

#: factory for one evaluation function: () -> model with fit/predict
ModelFactory = Callable[[], GradientBoostedTrees]


class _DefaultModelFactory:
    """Default evaluation-function factory: small GBTs sharing one RNG.

    A class (not a closure) so ensembles — and the tuners holding them —
    stay picklable for checkpointing; pickle preserves the shared
    generator object between the factory and its ensemble.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def __call__(self) -> GradientBoostedTrees:
        return GradientBoostedTrees(
            n_estimators=24,
            learning_rate=0.28,
            max_depth=4,
            subsample=0.9,
            seed=self._rng,
        )


def _default_model_factory(rng: np.random.Generator) -> ModelFactory:
    return _DefaultModelFactory(rng)


class BootstrapEnsemble:
    """``Gamma`` evaluation functions fit on bootstrap resamples.

    The framework is "independent of the specific forms of evaluation
    functions" (Sec. IV); pass any ``model_factory`` returning an object
    with ``fit(X, y)`` and ``predict(X)`` to swap the learner.
    """

    def __init__(
        self,
        gamma: int = 2,
        model_factory: Optional[ModelFactory] = None,
        seed: SeedLike = None,
    ):
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        self.gamma = gamma
        self._rng = as_generator(seed)
        self._factory = (
            model_factory
            if model_factory is not None
            else _default_model_factory(self._rng)
        )
        self._models: List[GradientBoostedTrees] = []

    @property
    def is_fitted(self) -> bool:
        return bool(self._models)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BootstrapEnsemble":
        """Resample ``(X, y)`` Gamma times and fit one model each."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        n = len(y)
        if n == 0:
            raise ValueError("cannot fit on an empty measured set")
        self._models = []
        for _ in range(self.gamma):
            rows = self._rng.integers(0, n, size=n)
            model = self._factory()
            model.fit(X[rows], y[rows])
            self._models.append(model)
        return self

    def predict_sum(self, X: np.ndarray) -> np.ndarray:
        """Summed ensemble prediction (the acquisition score of Alg. 3)."""
        if not self.is_fitted:
            raise RuntimeError("ensemble is not fitted")
        X = np.asarray(X, dtype=np.float64)
        total = np.zeros(X.shape[0])
        for model in self._models:
            total += model.predict(X)
        return total

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        """Mean ensemble prediction (sum / Gamma)."""
        return self.predict_sum(X) / self.gamma

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Across-ensemble std-dev — an uncertainty proxy (needs Gamma >= 2)."""
        if not self.is_fitted:
            raise RuntimeError("ensemble is not fitted")
        preds = np.stack([m.predict(np.asarray(X)) for m in self._models])
        return preds.std(axis=0)


def bootstrap_sample(
    measured_features: np.ndarray,
    measured_scores: np.ndarray,
    candidate_features: np.ndarray,
    candidate_indices: Sequence[int],
    gamma: int = 2,
    seed: SeedLike = None,
    model_factory: Optional[ModelFactory] = None,
) -> int:
    """One-shot ``BS(X, Y, C, Gamma)``: return the chosen config index.

    ``candidate_indices[i]`` labels row ``i`` of ``candidate_features``;
    the returned value is the label of the argmax candidate.
    """
    if len(candidate_indices) == 0:
        raise ValueError("candidate set C is empty")
    if len(candidate_indices) != len(candidate_features):
        raise ValueError("candidate labels and features disagree in length")
    ensemble = BootstrapEnsemble(
        gamma=gamma, model_factory=model_factory, seed=seed
    )
    ensemble.fit(measured_features, measured_scores)
    scores = ensemble.predict_sum(candidate_features)
    return int(candidate_indices[int(np.argmax(scores))])
