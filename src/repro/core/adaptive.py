"""Adaptive-sampling proposal stage: prune a plan before measuring it.

Chameleon-style (PAPERS.md): the surrogate's proposed batch is
clustered in config-feature space and only ``keep_fraction`` diverse
representatives are deployed, with the already-measured feature matrix
acting as anchors so re-probes of measured territory are dropped
first.  Opt-in per arm (``adaptive_sampling=True``); with it off, the
arm is byte-for-byte its pre-pruning self.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.events import CandidatesPruned
from repro.space.sampling import k_center_prune


def validate_adaptive(adaptive_keep: float) -> None:
    """Shared constructor validation for the ``adaptive_keep`` fraction."""
    if not 0.0 < adaptive_keep <= 1.0:
        raise ValueError("adaptive_keep must be in (0, 1]")


def prune_plan(tuner, plan: Sequence[int], keep_fraction: float) -> List[int]:
    """Keep a diverse ``keep_fraction`` of ``plan``, preserving its order.

    ``plan`` must be ranked best-first: position 0 always survives (the
    k-center seed), and the surviving positions are re-sorted so the
    measurement order stays a subsequence of the original plan.  Queues
    a :class:`CandidatesPruned` event when anything was dropped.
    """
    plan = [int(i) for i in plan]
    keep = max(1, int(round(keep_fraction * len(plan))))
    if keep >= len(plan):
        return plan
    features = tuner.task.space.feature_matrix(np.asarray(plan, dtype=np.int64))
    selected = k_center_prune(
        features, keep, anchors=tuner.measured_features
    )
    pruned = [plan[i] for i in np.sort(selected)]
    tuner._queue_event(
        CandidatesPruned(
            step=tuner.num_measured, proposed=len(plan), kept=len(pruned)
        )
    )
    return pruned
