"""Tuning callbacks (AutoTVM-style ``callbacks=`` hooks).

Callbacks receive ``(tuner, new_measure_results)`` after every measured
batch.  This module ships the three everyone needs: progress logging,
record logging to a :class:`~repro.pipeline.records.RecordStore`, and a
measurement-budget progress bar string for interactive use.

Callbacks may additionally implement an optional *state protocol*:

* ``state_dict() -> dict`` / ``load_state_dict(dict)`` — the callback's
  resumable state.  :meth:`Tuner.snapshot` captures it into tuning
  checkpoints and :meth:`Tuner.resume` restores it into the callbacks
  of the resuming call, so counters and elapsed clocks continue instead
  of restarting at zero.  Callbacks without the protocol get their
  ``_count`` (when they have an integer one) seeded from the restored
  measurement count.
* ``close()`` — end-of-run cleanup, invoked by ``Tuner.tune``'s
  ``finally`` block (e.g. the progress bar's terminal newline).
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO

from repro.hardware.measure import MeasureResult
from repro.pipeline.records import RecordStore, TuningRecord
from repro.utils.log import get_logger

logger = get_logger("core.callbacks")


class LogProgress:
    """Log best-so-far GFLOPS every ``interval`` measurements.

    A batch may span several interval boundaries (large ``--jobs``-scaled
    batches); one line is emitted per boundary crossed, so the total
    number of lines after ``n`` measurements is always
    ``n // interval`` regardless of batch sizing.
    """

    def __init__(self, interval: int = 64):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._count = 0
        self._started = time.perf_counter()

    def __call__(self, tuner, results: List[MeasureResult]) -> None:
        previous = self._count
        self._count += len(results)
        first = previous // self.interval + 1
        last = self._count // self.interval
        if last < first:
            return
        elapsed = time.perf_counter() - self._started
        for boundary in range(first, last + 1):
            logger.info(
                "[%s] %d measurements, best %.1f GFLOPS, %.1fs elapsed",
                tuner.name,
                boundary * self.interval,
                tuner.best_gflops,
                elapsed,
            )

    def state_dict(self) -> dict:
        """Resumable state: the count and the elapsed wall clock."""
        return {
            "count": self._count,
            "elapsed_s": time.perf_counter() - self._started,
        }

    def load_state_dict(self, state: dict) -> None:
        """Continue counting (and timing) from a checkpointed state."""
        self._count = int(state["count"])
        self._started = time.perf_counter() - float(
            state.get("elapsed_s", 0.0)
        )


class RecordToStore:
    """Append every measurement to a :class:`RecordStore`."""

    def __init__(self, store: RecordStore):
        self.store = store

    def __call__(self, tuner, results: List[MeasureResult]) -> None:
        for result in results:
            self.store.add(
                TuningRecord(
                    workload=tuner.task.workload,
                    config_index=result.config_index,
                    gflops=result.gflops,
                    tuner_name=tuner.name,
                    error="" if result.ok else result.error_msg,
                )
            )


class ProgressBar:
    """Single-line text progress bar over the measurement budget.

    The terminating newline is written when the budget fills *or* from
    :meth:`close` (called by ``Tuner.tune``'s ``finally`` block), so an
    early-stopped or space-exhausted run does not leave the shell
    prompt glued to the bar.
    """

    def __init__(
        self,
        total: int,
        width: int = 40,
        stream: Optional[TextIO] = None,
    ):
        if total <= 0:
            raise ValueError("total must be positive")
        self.total = total
        self.width = width
        self.stream = stream if stream is not None else sys.stderr
        self._count = 0
        self._line_open = False

    def render(self) -> str:
        """The bar string for the current state."""
        frac = min(1.0, self._count / self.total)
        filled = int(round(frac * self.width))
        bar = "#" * filled + "-" * (self.width - filled)
        return f"[{bar}] {self._count}/{self.total}"

    def __call__(self, tuner, results: List[MeasureResult]) -> None:
        self._count += len(results)
        self.stream.write(
            f"\r{self.render()} best={tuner.best_gflops:.1f} GFLOPS"
        )
        self._line_open = True
        if self._count >= self.total:
            self.stream.write("\n")
            self._line_open = False
        self.stream.flush()

    def close(self) -> None:
        """Terminate the bar line if it is still open (idempotent)."""
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    def state_dict(self) -> dict:
        """Resumable state: the measurement count."""
        return {"count": self._count}

    def load_state_dict(self, state: dict) -> None:
        """Continue the bar from a checkpointed count."""
        self._count = int(state["count"])
