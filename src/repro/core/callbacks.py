"""Tuning callbacks (AutoTVM-style ``callbacks=`` hooks).

Callbacks receive ``(tuner, new_measure_results)`` after every measured
batch.  This module ships the three everyone needs: progress logging,
record logging to a :class:`~repro.pipeline.records.RecordStore`, and a
measurement-budget progress bar string for interactive use.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO

from repro.hardware.measure import MeasureResult
from repro.pipeline.records import RecordStore, TuningRecord
from repro.utils.log import get_logger

logger = get_logger("core.callbacks")


class LogProgress:
    """Log best-so-far GFLOPS every ``interval`` measurements."""

    def __init__(self, interval: int = 64):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._count = 0
        self._started = time.perf_counter()

    def __call__(self, tuner, results: List[MeasureResult]) -> None:
        self._count += len(results)
        if self._count % self.interval < len(results):
            elapsed = time.perf_counter() - self._started
            logger.info(
                "[%s] %d measurements, best %.1f GFLOPS, %.1fs elapsed",
                tuner.name,
                self._count,
                tuner.best_gflops,
                elapsed,
            )


class RecordToStore:
    """Append every measurement to a :class:`RecordStore`."""

    def __init__(self, store: RecordStore):
        self.store = store

    def __call__(self, tuner, results: List[MeasureResult]) -> None:
        for result in results:
            self.store.add(
                TuningRecord(
                    workload=tuner.task.workload,
                    config_index=result.config_index,
                    gflops=result.gflops,
                    tuner_name=tuner.name,
                    error="" if result.ok else result.error_msg,
                )
            )


class ProgressBar:
    """Single-line text progress bar over the measurement budget."""

    def __init__(
        self,
        total: int,
        width: int = 40,
        stream: Optional[TextIO] = None,
    ):
        if total <= 0:
            raise ValueError("total must be positive")
        self.total = total
        self.width = width
        self.stream = stream if stream is not None else sys.stderr
        self._count = 0

    def render(self) -> str:
        """The bar string for the current state."""
        frac = min(1.0, self._count / self.total)
        filled = int(round(frac * self.width))
        bar = "#" * filled + "-" * (self.width - filled)
        return f"[{bar}] {self._count}/{self.total}"

    def __call__(self, tuner, results: List[MeasureResult]) -> None:
        self._count += len(results)
        self.stream.write(
            f"\r{self.render()} best={tuner.best_gflops:.1f} GFLOPS"
        )
        if self._count >= self.total:
            self.stream.write("\n")
        self.stream.flush()
