"""Coordinate-descent exploitation around the incumbent (Droplet-style).

"Explore as a Storm, Exploit as a Raindrop" (PAPERS.md) closes most of
the remaining gap after a model-based explorer by *line-searching the
knob axes* of the best configuration found so far: probe every axis at
the current step length, re-center whenever a probe beats the
incumbent, and double the step when a whole sweep at the current
length is already measured.  When the line search dries up around a
center, the policy random-restarts from a fresh unvisited point.

:class:`CoordinateDescent` is the policy object; it is deliberately a
plain bag of picklable state (ints, floats, a seeded
``numpy.random.Generator``), so tuners that embed it inherit the
repo's checkpoint crash-at-any-batch bit-identity contract for free —
:meth:`Tuner.snapshot` pickles it generically with the rest of the
tuner ``__dict__``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.events import ExploitStepped
from repro.space.neighborhood import axis_steps
from repro.space.space import ConfigSpace
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class DropletSettings:
    """Knobs of the coordinate-descent line search."""

    #: step length a fresh sweep starts from
    initial_step: int = 1
    #: step-length cap; ``None`` means the largest knob cardinality
    #: (doubling past it cannot reach anything new)
    max_step: Optional[int] = None
    #: random-restart when the sweep around a center is exhausted
    #: (without it the policy reports exhaustion instead)
    restart: bool = True
    #: rejection-sampling budget for one unvisited restart draw
    max_restart_draws: int = 200

    def __post_init__(self) -> None:
        if self.initial_step <= 0:
            raise ValueError("initial_step must be positive")
        if self.max_step is not None and self.max_step < self.initial_step:
            raise ValueError("max_step must be >= initial_step")
        if self.max_restart_draws <= 0:
            raise ValueError("max_restart_draws must be positive")


class CoordinateDescent:
    """Greedy axis sweep with doubling step and random restarts.

    :meth:`propose` is a pure function of the policy state plus the
    caller-supplied incumbent and visited set: it never measures, so
    one policy instance can serve both the standalone
    :class:`~repro.core.tuners.droplet.DropletTuner` and the
    ``finish="droplet"`` phase of the BTED+BAO arm.
    """

    def __init__(
        self,
        space: ConfigSpace,
        settings: DropletSettings = DropletSettings(),
        seed: SeedLike = 0,
    ):
        self.space = space
        self.settings = settings
        self._rng = as_generator(seed)
        #: config index the current sweep is centered on
        self.center: Optional[int] = None
        #: incumbent score when the center was adopted — a new global
        #: best above it re-centers the sweep
        self.center_score: float = -np.inf
        #: current line-search step length
        self.step: int = settings.initial_step
        #: random restarts taken so far
        self.restarts: int = 0
        #: set when neither the sweep nor a restart can find anything new
        self.exhausted: bool = False

    @property
    def max_step(self) -> int:
        if self.settings.max_step is not None:
            return self.settings.max_step
        return max(int(s) for s in self.space.knob_sizes)

    def propose(
        self,
        best_index: Optional[int],
        best_gflops: float,
        visited: np.ndarray,
    ) -> List[int]:
        """Next batch of unvisited axis probes (possibly a restart point).

        ``visited`` is the tuner's sorted measured-index array
        (:attr:`Tuner.visited_sorted`); revisits are filtered with a
        vectorized ``np.isin``.  Returns ``[]`` only when the policy is
        exhausted (restarts disabled or no unvisited draw found).
        """
        if best_index is None:
            return []
        if self.center is None or best_gflops > self.center_score:
            self.center = int(best_index)
            self.center_score = float(best_gflops)
            self.step = self.settings.initial_step
        while self.step <= self.max_step:
            candidates = axis_steps(self.space, self.center, self.step)
            if len(candidates):
                fresh = candidates[~np.isin(candidates, visited)]
                if len(fresh):
                    return [int(c) for c in fresh]
            self.step *= 2
        if not self.settings.restart:
            self.exhausted = True
            return []
        restart = self._draw_unvisited(visited)
        if restart is None:
            self.exhausted = True
            return []
        self.restarts += 1
        self.center = restart
        # only a strict global improvement may pull the sweep back off
        # the restart point, so anchor at the current incumbent score
        self.center_score = float(best_gflops)
        self.step = self.settings.initial_step
        return [restart]

    def _draw_unvisited(self, visited: np.ndarray) -> Optional[int]:
        size = len(self.space)
        for _ in range(self.settings.max_restart_draws):
            idx = int(self._rng.integers(0, size))
            if not np.isin(idx, visited):
                return idx
        return None


def droplet_propose(tuner, policy: CoordinateDescent) -> List[int]:
    """Run one policy step for a tuner and surface it as an event.

    Shared by the standalone arm and the BTED+BAO finishing phase:
    proposes from the tuner's incumbent/visited state and queues an
    :class:`ExploitStepped` event describing the sweep.
    """
    batch = policy.propose(
        tuner.best_index, tuner.best_gflops, tuner.visited_sorted
    )
    if batch:
        tuner._queue_event(
            ExploitStepped(
                step=tuner.num_measured,
                center=int(policy.center),
                step_size=int(policy.step),
                restarts=int(policy.restarts),
            )
        )
    return batch
