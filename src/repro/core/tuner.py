"""Tuner base class, trial records, and early stopping.

All experimental arms share one active-learning skeleton (Sec. II-B):
an initialization stage proposes a first batch of configurations, then
an iterative stage alternates proposing and measuring until the trial
budget or the early-stopping criterion (no improvement within a window
of measurements, AutoTVM's default stopping rule) is reached.

Subclasses implement :meth:`Tuner._generate_initial` and
:meth:`Tuner._generate_next`; the base class owns bookkeeping, the
best-so-far curve, and stopping.  Measurement itself goes through a
pluggable :class:`~repro.hardware.executor.MeasureExecutor` (serial by
default, process-parallel or caching on request), and every decision
point emits a structured :class:`~repro.core.events.TuningEvent`
through the ``on_event`` callbacks.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

if TYPE_CHECKING:  # structural only; core never imports repro.tlog at runtime
    from repro.tlog.warm import WarmStartPlan

import numpy as np

from repro.core.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointSpec,
    TuningCheckpoint,
    as_checkpoint_policy,
)
from repro.core.events import (
    BatchMeasured,
    BatchProposed,
    CheckpointSaved,
    EarlyStopped,
    EventCallback,
    IncumbentImproved,
    MeasurementFailed,
    MeasurementRetried,
    SpaceExhausted,
    SpeculationResolved,
    TuningEvent,
    TuningResumed,
    WarmStarted,
)
from repro.hardware.executor import (
    ExecutorSpec,
    MeasureExecutor,
    SerialExecutor,
    build_executor,
)
from repro.hardware.measure import Measurer, MeasureResult, SimulatedTask
from repro.obs import hooks
from repro.space.space import FeatureCache
from repro.utils.log import get_logger
from repro.utils.rng import RngPool

logger = get_logger("core.tuner")

Callback = Callable[["Tuner", List[MeasureResult]], None]

#: tuner attributes that are rebuilt from constructor arguments (or are
#: only live inside ``tune``) and therefore stay out of checkpoints
_EPHEMERAL_STATE = (
    "task",
    "measurer",
    "_executor",
    "_executor_spec",
    "_event_sinks",
    "_pending_events",
)

#: sentinel distinguishing "argument omitted" from an explicit ``None``
_UNSET = object()


class SpaceSamplingError(RuntimeError):
    """Rejection sampling could not draw enough unvisited configs.

    Raised by :meth:`Tuner._random_unvisited` when its attempt budget
    runs out while unvisited configurations provably remain — the
    previously-silent failure mode that returned a short batch and let
    the loop misreport the space as exhausted.
    """


@dataclass
class _PendingProposal:
    """A batch proposed speculatively, waiting to be consumed next iteration.

    Carried across pipelined-loop iterations (and, via the checkpoint
    ``pending`` payload, across resumes): the batch itself, the
    proposal wall-time to report on its :class:`BatchProposed` event,
    whether the speculation found the space exhausted, and the
    observability notifications captured on the worker thread, to be
    replayed on the driving thread when the proposal is consumed.
    """

    batch: List[int]
    proposal_s: float
    exhausted: bool
    captured: list


@dataclass
class _Speculation:
    """Everything a worker-thread speculation computed for one batch.

    ``predicted`` is validated against the real measurement results;
    on an exact match the clone's state, records, events, and next
    proposal are adopted wholesale, otherwise the whole object is
    discarded and the driving thread replays the serial path.
    """

    predicted: List[MeasureResult]
    clone: "Tuner"
    new_records: List[TrialRecord]
    absorb_events: List[TuningEvent]
    next_batch: List[int]
    exhausted: bool
    captured: list
    proposal_s: float
    wall_s: float


def _observer_states(observers: Sequence[object]) -> List[Optional[dict]]:
    """Snapshot the optional state protocol of callbacks/event sinks.

    One entry per observer, positionally: ``{"type": ..., "state": ...}``
    for observers implementing ``state_dict()``, else ``None``.
    """
    states: List[Optional[dict]] = []
    for obs in observers:
        fn = getattr(obs, "state_dict", None)
        if callable(fn):
            states.append({"type": type(obs).__name__, "state": fn()})
        else:
            states.append(None)
    return states


def _restore_observer_states(
    observers: Sequence[object],
    states: Optional[Sequence[Optional[dict]]],
    num_measured: int,
    seed_counts: bool,
) -> None:
    """Restore checkpointed observer state positionally.

    An observer only loads a state entry recorded by an observer of the
    same type at the same position; otherwise (legacy checkpoint, or
    the resume call passes different observers) the fallback for
    ``seed_counts=True`` is to seed an integer ``_count`` attribute
    from the restored measurement count, which keeps count-based
    callbacks (progress logs/bars) correct even without the protocol.
    """
    saved = list(states or [])
    for i, obs in enumerate(observers):
        entry = saved[i] if i < len(saved) else None
        loader = getattr(obs, "load_state_dict", None)
        if entry is not None and callable(loader):
            if entry.get("type") == type(obs).__name__:
                loader(entry["state"])
                continue
            logger.warning(
                "checkpointed state at position %d was written by %s, "
                "not %s; falling back to count seeding",
                i,
                entry.get("type"),
                type(obs).__name__,
            )
        if seed_counts and isinstance(getattr(obs, "_count", None), int):
            obs._count = num_measured


@dataclass(frozen=True)
class TrialRecord:
    """One measured configuration, in measurement order."""

    step: int
    config_index: int
    gflops: float
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    task_name: str
    tuner_name: str
    records: List[TrialRecord]
    best_index: Optional[int]
    best_gflops: float
    wall_time_s: float = 0.0

    @property
    def num_measurements(self) -> int:
        return len(self.records)

    def best_curve(self) -> np.ndarray:
        """Best-so-far GFLOPS after each measurement (the Fig. 4 series)."""
        if not self.records:
            return np.empty(0)
        series = np.fromiter(
            (r.gflops for r in self.records),
            dtype=np.float64,
            count=len(self.records),
        )
        # running max with a 0.0 floor (errored trials report 0 GFLOPS)
        return np.maximum.accumulate(np.maximum(series, 0.0))

    def gflops_series(self) -> np.ndarray:
        """Raw measured GFLOPS per step (0 for errored trials)."""
        return np.array([r.gflops for r in self.records])

    def __repr__(self) -> str:
        return (
            f"TuningResult({self.tuner_name!r} on {self.task_name!r}: "
            f"best={self.best_gflops:.1f} GFLOPS "
            f"in {self.num_measurements} measurements)"
        )


class EarlyStopper:
    """Stop when the best score has not improved for ``patience`` trials.

    AutoTVM's stopping criterion; the paper sets the threshold to 400
    (Sec. V-A).
    """

    def __init__(self, patience: int, min_delta: float = 0.0):
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.patience = patience
        self.min_delta = min_delta
        self._best = -np.inf
        self._best_step = 0
        self._step = 0

    def update(self, score: float) -> bool:
        """Record one measurement; returns True when tuning should stop."""
        self._step += 1
        if score > self._best + self.min_delta:
            self._best = score
            self._best_step = self._step
        return (self._step - self._best_step) >= self.patience


class Tuner:
    """Base class for all node-wise tuners (one task, one search policy).

    ``executor`` selects the measurement backend: ``None``/``"serial"``
    (default), ``"parallel"``, a ``measurer -> MeasureExecutor``
    factory, or a ready executor instance.  The default is resolved
    lazily against :attr:`measurer` at each :meth:`tune` call, so tests
    that swap the measurer keep working.

    ``warm_start`` (a :class:`~repro.tlog.WarmStartPlan`, default off)
    injects prior tuning-log configurations at the head of the
    initialization batch; subclasses with cost models additionally
    pretrain from the plan's :class:`~repro.learning.transfer.\
TransferHistory`.  The injection happens once, inside the
    initialization step, so it is checkpoint/resume-safe by
    construction (a resumed run never regenerates the initial batch).
    With ``warm_start=None`` the tuner is bit-identical to a build
    without warm-start support.
    """

    name = "base"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        batch_size: int = 64,
        measure_repeats: int = 3,
        executor: ExecutorSpec = None,
        warm_start: Optional["WarmStartPlan"] = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.task = task
        self.seed = int(seed)
        self.batch_size = batch_size
        self.warm_start = warm_start
        self.rng_pool = RngPool(self.seed).child(f"tuner-{self.name}")
        self.measurer = Measurer(
            task, seed=self.rng_pool.seed_for("measure"), repeats=measure_repeats
        )
        self._executor_spec = executor
        self._executor: Optional[MeasureExecutor] = None
        if executor is not None and executor != "serial":
            self._executor = build_executor(self.measurer, executor)

        # measured state, shared with subclasses
        self.visited: Set[int] = set()
        self.measured_indices: List[int] = []
        self.measured_scores: List[float] = []
        self._features = FeatureCache(task.space)
        self._visited_sorted = np.empty(0, dtype=np.int64)
        self.best_index: Optional[int] = None
        self.best_gflops: float = 0.0

        # event plumbing (active only inside tune())
        self._event_sinks: Sequence[EventCallback] = ()
        self._pending_events: List[TuningEvent] = []
        #: events emitted so far, by kind — checkpointed with the rest
        #: of the tuner state so a resumed run's counters keep climbing
        self.event_counts: Dict[str, int] = {}

    @property
    def executor(self) -> MeasureExecutor:
        """The measurement executor used by :meth:`tune`."""
        if self._executor is not None:
            return self._executor
        return SerialExecutor(self.measurer)

    @property
    def num_measured(self) -> int:
        """Configurations measured so far (restored by :meth:`resume`)."""
        return len(self.measured_indices)

    def shutdown(self) -> None:
        """Release executor worker resources (no-op for serial)."""
        if self._executor is not None:
            self._executor.close()

    # ------------------------------------------------------------------
    # subclass contract

    def _generate_initial(self) -> List[int]:
        """Propose the initialization batch of config indices."""
        raise NotImplementedError

    def _generate_next(self) -> List[int]:
        """Propose the next batch given the measured state so far."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # measured-state helpers for subclasses

    @property
    def measured_features(self) -> np.ndarray:
        """Feature matrix of all measured configs, in measurement order.

        Served from an incrementally grown :class:`FeatureCache` — a
        zero-copy read-only view, not a fresh ``np.stack`` per access.
        """
        return self._features.matrix

    @property
    def visited_sorted(self) -> np.ndarray:
        """Measured config indices as a maintained sorted int64 array.

        Lets hot paths (BAO's per-step candidate filtering) use
        ``np.isin`` instead of Python set membership per candidate.
        """
        return self._visited_sorted

    @property
    def measured_scores_array(self) -> np.ndarray:
        return np.asarray(self.measured_scores, dtype=np.float64)

    def _filter_unvisited(self, indices: Sequence[int]) -> List[int]:
        """Drop already-measured indices, preserving order/uniqueness."""
        out: List[int] = []
        seen: Set[int] = set()
        for idx in indices:
            idx = int(idx)
            if idx in self.visited or idx in seen:
                continue
            seen.add(idx)
            out.append(idx)
        return out

    def _inject_warm_start(self, initial: Sequence[int]) -> List[int]:
        """Put warm-start plan configs at the head of the initial batch.

        The batch size stays what the arm proposed: ``k`` seeded configs
        displace the last ``k`` arm proposals, so a warm run spends the
        same initialization budget as a cold one (HW-aware-init style).
        A ``None`` plan returns the batch untouched — the cold path is
        byte-for-byte the pre-warm-start behaviour.
        """
        plan = self.warm_start
        if plan is None:
            return list(initial)
        space_size = len(self.task.space)
        seeds: List[int] = []
        seen: Set[int] = set()
        for idx in plan.configs:
            idx = int(idx)
            if not 0 <= idx < space_size:
                raise ValueError(
                    f"warm-start config {idx} out of range for a space of "
                    f"size {space_size}; was the plan built for a "
                    "different task?"
                )
            if idx not in seen:
                seen.add(idx)
                seeds.append(idx)
        if not seeds:
            return list(initial)
        budget = max(len(initial), len(seeds))
        batch = list(seeds)
        for idx in initial:
            if len(batch) >= budget:
                break
            idx = int(idx)
            if idx not in seen:
                seen.add(idx)
                batch.append(idx)
        self._queue_event(
            WarmStarted(
                step=0,
                injected=len(seeds),
                source=getattr(plan, "source", "similar"),
                history_samples=getattr(plan, "history_samples", 0),
                cross_sources=getattr(plan, "cross_sources", 0),
            )
        )
        return batch

    def _random_unvisited(
        self, n: int, max_attempts: Optional[int] = None
    ) -> List[int]:
        """Fallback proposals: random configs not measured yet.

        Rejection-samples the space.  May legitimately return fewer
        than ``n`` configs when fewer unvisited ones remain — including
        an empty list once the space is fully measured, which is the
        main loop's :class:`~repro.core.events.SpaceExhausted` signal.
        When the attempt budget (``50 * n + 100`` unless overridden)
        runs out while unvisited configs provably remain, raises
        :class:`SpaceSamplingError` instead of silently under-filling
        the batch and misreporting the space as exhausted.
        """
        rng = self.rng_pool.get("fallback")
        space = self.task.space
        budget = 50 * n + 100 if max_attempts is None else max_attempts
        out: List[int] = []
        seen: Set[int] = set()
        attempts = 0
        while len(out) < n and attempts < budget:
            idx = int(rng.integers(0, len(space)))
            attempts += 1
            if idx not in self.visited and idx not in seen:
                seen.add(idx)
                out.append(idx)
        remaining = len(space) - len(self.visited)
        if len(out) < min(n, remaining):
            raise SpaceSamplingError(
                f"{self.name}: rejection sampling exhausted its budget of "
                f"{budget} attempts while drawing {n} fallback configs for "
                f"task {self.task.name!r} (space size {len(space)}, "
                f"{len(self.visited)} visited, {remaining} unvisited "
                f"remain, {len(out)} drawn); the space is too saturated "
                "for random fallback — lower the batch size or stop the run"
            )
        return out

    # ------------------------------------------------------------------
    # events

    def _emit(self, event: TuningEvent) -> None:
        """Deliver one event to every registered sink."""
        self.event_counts[event.kind] = (
            self.event_counts.get(event.kind, 0) + 1
        )
        for sink in self._event_sinks:
            sink(self, event)

    def _emit_fault_events(
        self, executor: MeasureExecutor, step: int
    ) -> None:
        """Convert executor fault outcomes into structured events."""
        drain = getattr(executor, "drain_fault_outcomes", None)
        if drain is None:
            return
        for outcome in drain():
            names = tuple(kind.value for kind in outcome.faults)
            if outcome.exhausted:
                self._emit(
                    MeasurementFailed(
                        step=step,
                        config_index=outcome.config_index,
                        ordinal=outcome.ordinal,
                        attempts=outcome.attempts,
                        fault=names[-1],
                    )
                )
            else:
                self._emit(
                    MeasurementRetried(
                        step=step,
                        config_index=outcome.config_index,
                        ordinal=outcome.ordinal,
                        attempts=outcome.attempts,
                        faults=names,
                        backoff_s=outcome.backoff_s,
                    )
                )

    def _queue_event(self, event: TuningEvent) -> None:
        """Queue a policy-side event (e.g. BAO scope widening).

        Subclasses call this from ``_generate_next``; the main loop
        flushes the queue right after proposal generation.
        """
        self._pending_events.append(event)

    def _flush_policy_events(self) -> None:
        for event in self._pending_events:
            self._emit(event)
        self._pending_events.clear()

    # ------------------------------------------------------------------
    # main loop

    def tune(
        self,
        n_trial: int = 1024,
        early_stopping: Optional[int] = 400,
        callbacks: Sequence[Callback] = (),
        on_event: Sequence[EventCallback] = (),
        checkpoint: CheckpointSpec = None,
        pipeline: bool = False,
        _resume: Optional[dict] = None,
    ) -> TuningResult:
        """Run the active-learning loop and return the result.

        ``n_trial`` bounds total measurements; ``early_stopping`` is the
        no-improvement window (None disables it).  ``callbacks`` receive
        ``(tuner, results)`` after each measured batch (the AutoTVM
        hook); ``on_event`` receives ``(tuner, TuningEvent)`` at every
        decision point.

        ``checkpoint`` (a path or :class:`CheckpointPolicy`) snapshots
        the resumable tuner state at batch boundaries: if the process
        dies at *any* point, :meth:`resume` on a freshly constructed
        tuner continues the run so that its measurement stream, record
        log, and final incumbent are bit-identical to an uninterrupted
        run.  ``_resume`` is internal (restored loop state from
        :meth:`resume`).

        ``pipeline=True`` overlaps each batch's measurement with a
        *speculative* proposal of the next batch on a worker thread,
        validating the speculation against the real measurement results
        before adopting it (see :meth:`_pipelined_loop`).  Records,
        RNG streams, events and checkpoints stay bit-identical to the
        serial loop; the only observable additions are
        :class:`~repro.core.events.SpeculationResolved` events and the
        overlap wall-time they report.
        """
        if n_trial <= 0:
            raise ValueError("n_trial must be positive")
        start = time.perf_counter()
        policy = as_checkpoint_policy(checkpoint)
        resume_pending = _resume.get("pending") if _resume is not None else None
        if resume_pending is not None:
            # a pipelined checkpoint carries an already-proposed batch;
            # only the pipelined loop knows how to consume it
            pipeline = True
        if _resume is not None:
            records: List[TrialRecord] = list(_resume["records"])
            stopper = self._restore_stopper(
                early_stopping, _resume.get("stopper")
            )
            initialized: bool = _resume["initialized"]
        else:
            records = []
            stopper = (
                EarlyStopper(early_stopping)
                if early_stopping is not None
                else None
            )
            initialized = False
        stop = False
        executor = self.executor
        self._event_sinks = tuple(on_event)
        self._pending_events.clear()
        batches_since_checkpoint = 0
        for sink in self._event_sinks:
            begin = getattr(sink, "on_tune_begin", None)
            if callable(begin):
                begin(self, n_trial=n_trial, resumed=_resume is not None)

        try:
            if _resume is not None:
                self._emit(
                    TuningResumed(
                        step=len(records), restored_records=len(records)
                    )
                )
            elif policy is not None:
                # step-0 snapshot: a crash inside the very first batch
                # is resumable too (resuming it replays the whole run)
                self._save_checkpoint(
                    policy, records, stopper, n_trial, early_stopping,
                    initialized=False, callbacks=callbacks,
                )
            if pipeline:
                self._pipelined_loop(
                    n_trial=n_trial,
                    records=records,
                    stopper=stopper,
                    policy=policy,
                    callbacks=callbacks,
                    executor=executor,
                    early_stopping=early_stopping,
                    initialized=initialized,
                    resume_pending=resume_pending,
                )
                stop = True  # the loop owns its own stopping; skip serial
            while not stop and len(records) < n_trial:
                proposal_start = time.perf_counter()
                if not initialized:
                    batch = self._filter_unvisited(
                        self._inject_warm_start(self._generate_initial())
                    )
                    initialized = True
                    self._flush_policy_events()
                    if not batch:
                        break
                else:
                    batch = self._filter_unvisited(self._generate_next())
                    self._flush_policy_events()
                    if not batch:
                        batch = self._random_unvisited(self.batch_size)
                        if not batch:
                            self._emit(SpaceExhausted(step=len(records)))
                            logger.info(
                                "%s: search space exhausted", self.name
                            )
                            break
                batch = batch[: n_trial - len(records)]
                self._emit(
                    BatchProposed(
                        step=len(records),
                        config_indices=tuple(batch),
                        proposal_s=time.perf_counter() - proposal_start,
                    )
                )
                measure_start = time.perf_counter()
                results = executor.measure_batch(batch)
                measure_s = time.perf_counter() - measure_start
                new_records = self._absorb(results, records)
                self._emit_fault_events(executor, step=len(records))
                self._emit(
                    BatchMeasured(
                        step=len(records),
                        results=tuple(results),
                        measure_s=measure_s,
                    )
                )
                for callback in callbacks:
                    callback(self, results)
                for record in new_records:
                    if stopper is not None and stopper.update(record.gflops):
                        stop = True
                        self._emit(
                            EarlyStopped(
                                step=record.step,
                                patience=stopper.patience,
                                best_gflops=self.best_gflops,
                            )
                        )
                        break
                batches_since_checkpoint += 1
                if (
                    policy is not None
                    and not stop
                    and len(records) < n_trial
                    and batches_since_checkpoint >= policy.every
                ):
                    self._save_checkpoint(
                        policy, records, stopper, n_trial, early_stopping,
                        initialized=True, callbacks=callbacks,
                    )
                    batches_since_checkpoint = 0
        finally:
            # end-of-run notifications are best-effort: a broken sink or
            # callback must not mask the result (or the real exception)
            for sink in self._event_sinks:
                end = getattr(sink, "on_tune_end", None)
                if callable(end):
                    try:
                        end(self)
                    except Exception:
                        logger.exception(
                            "%s: on_tune_end failed for %r", self.name, sink
                        )
            for callback in callbacks:
                closer = getattr(callback, "close", None)
                if callable(closer):
                    try:
                        closer()
                    except Exception:
                        logger.exception(
                            "%s: close failed for %r", self.name, callback
                        )
            self._event_sinks = ()

        wall = time.perf_counter() - start
        return TuningResult(
            task_name=self.task.name,
            tuner_name=self.name,
            records=records,
            best_index=self.best_index,
            best_gflops=self.best_gflops,
            wall_time_s=wall,
        )

    # ------------------------------------------------------------------
    # pipelined loop (pipeline=True)

    def _pipelined_loop(
        self,
        *,
        n_trial: int,
        records: List[TrialRecord],
        stopper: Optional[EarlyStopper],
        policy: Optional[CheckpointPolicy],
        callbacks: Sequence[Callback],
        executor: MeasureExecutor,
        early_stopping: Optional[int],
        initialized: bool,
        resume_pending: Optional[dict],
    ) -> None:
        """Overlap measurement of batch *k* with proposal of batch *k+1*.

        While the executor measures batch *k* on this thread, a worker
        thread runs the whole serial post-measure sequence — absorb the
        (predicted) results, refit, propose batch *k+1* — against a
        *clone* of the tuner, predicting the measurement results via the
        ordinal-determinism of :class:`~repro.hardware.measure.Measurer`
        (``measure_at`` is pure in ``(ordinal, config_index)``).  When
        the real results come back they are compared against the
        prediction: an exact match adopts the clone's state and queued
        proposal; any mismatch (fault injection, cache hits, a foreign
        executor) discards the speculation and replays the serial path
        on the untouched real state.  Records, RNG streams, events, and
        checkpoints are bit-identical to the serial loop either way —
        the only additions are :class:`SpeculationResolved` events and
        the ``pending`` payload pipelined checkpoints carry.
        """
        # the speculation measurer is a clone synced to the executor's
        # pre-batch ordinal each dispatch; prediction never advances the
        # real measurement stream
        spec_measurer: Measurer = pickle.loads(
            pickle.dumps(self.measurer, protocol=pickle.HIGHEST_PROTOCOL)
        )
        stop = False
        batches_since_checkpoint = 0
        current: Optional[_PendingProposal] = None
        if resume_pending is not None:
            current = _PendingProposal(
                batch=[int(i) for i in resume_pending["batch"]],
                proposal_s=float(resume_pending["proposal_s"]),
                exhausted=bool(resume_pending["exhausted"]),
                captured=list(resume_pending["captured"]),
            )
            self._pending_events.extend(resume_pending.get("events") or ())
            initialized = True
        pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"{self.name}-speculate"
        )
        try:
            while not stop and len(records) < n_trial:
                if current is None:
                    # no adopted proposal in hand: serial proposal path
                    proposal_start = time.perf_counter()
                    if not initialized:
                        batch = self._filter_unvisited(
                            self._inject_warm_start(self._generate_initial())
                        )
                        initialized = True
                        self._flush_policy_events()
                        if not batch:
                            break
                    else:
                        batch = self._filter_unvisited(self._generate_next())
                        self._flush_policy_events()
                        if not batch:
                            batch = self._random_unvisited(self.batch_size)
                            if not batch:
                                self._emit(
                                    SpaceExhausted(step=len(records))
                                )
                                logger.info(
                                    "%s: search space exhausted", self.name
                                )
                                break
                    proposal_s = time.perf_counter() - proposal_start
                else:
                    # consume the adopted speculation: its refit
                    # notifications replay *now* because in the serial
                    # loop they fire during generate_next(k+1) — after
                    # iteration k's checkpoint, not before it
                    hooks.replay_captured(current.captured)
                    self._flush_policy_events()
                    if current.exhausted:
                        self._emit(SpaceExhausted(step=len(records)))
                        logger.info(
                            "%s: search space exhausted", self.name
                        )
                        break
                    batch = current.batch
                    proposal_s = current.proposal_s
                    current = None
                batch = batch[: n_trial - len(records)]
                self._emit(
                    BatchProposed(
                        step=len(records),
                        config_indices=tuple(batch),
                        proposal_s=proposal_s,
                    )
                )
                # dispatch the speculative proposal of batch k+1 before
                # measuring batch k; skip it when this batch already
                # fills the budget.  The state snapshot is taken here,
                # on the driving thread, so it is exactly the serial
                # state at this point of the loop.
                future = None
                if len(records) + len(batch) < n_trial:
                    state_bytes = pickle.dumps(
                        {
                            key: value
                            for key, value in self.__dict__.items()
                            if key not in _EPHEMERAL_STATE
                        },
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    future = pool.submit(
                        self._speculate,
                        state_bytes,
                        spec_measurer,
                        list(records),
                        list(batch),
                        executor.num_measurements,
                        n_trial,
                    )
                measure_start = time.perf_counter()
                results = executor.measure_batch(batch)
                measure_s = time.perf_counter() - measure_start
                spec: Optional[_Speculation] = None
                if future is not None:
                    try:
                        spec = future.result()
                    except Exception:
                        logger.exception(
                            "%s: speculative proposal failed; replaying "
                            "the serial path",
                            self.name,
                        )
                        spec = None
                adopted = spec is not None and spec.predicted == results
                if adopted:
                    new_records = spec.new_records
                    self._adopt_speculation(spec, records)
                    current = _PendingProposal(
                        batch=spec.next_batch,
                        proposal_s=spec.proposal_s,
                        exhausted=spec.exhausted,
                        captured=spec.captured,
                    )
                else:
                    new_records = self._absorb(results, records)
                if spec is not None:
                    self._emit(
                        SpeculationResolved(
                            step=len(records),
                            adopted=adopted,
                            overlap_s=min(measure_s, spec.wall_s),
                        )
                    )
                self._emit_fault_events(executor, step=len(records))
                self._emit(
                    BatchMeasured(
                        step=len(records),
                        results=tuple(results),
                        measure_s=measure_s,
                    )
                )
                for callback in callbacks:
                    callback(self, results)
                for record in new_records:
                    if stopper is not None and stopper.update(record.gflops):
                        stop = True
                        self._emit(
                            EarlyStopped(
                                step=record.step,
                                patience=stopper.patience,
                                best_gflops=self.best_gflops,
                            )
                        )
                        break
                batches_since_checkpoint += 1
                if (
                    policy is not None
                    and not stop
                    and len(records) < n_trial
                    and batches_since_checkpoint >= policy.every
                ):
                    self._save_checkpoint(
                        policy, records, stopper, n_trial, early_stopping,
                        initialized=True, callbacks=callbacks,
                        pending=self._pending_payload(current),
                    )
                    batches_since_checkpoint = 0
        finally:
            pool.shutdown(wait=True)

    def _speculate(
        self,
        state_bytes: bytes,
        spec_measurer: Measurer,
        records: List[TrialRecord],
        batch: List[int],
        ordinal: int,
        n_trial: int,
    ) -> _Speculation:
        """Worker-thread body: predict batch results, propose the next batch.

        Runs entirely against a clone built from ``state_bytes`` (the
        driving thread's pre-measure snapshot) plus the shared
        speculation measurer resynced to the executor's pre-batch
        ordinal, so nothing here can touch the real tuner.  Hook
        notifications fired by the clone's refits are captured (this
        thread has a capture active for its whole body) and replayed on
        the driving thread only if the speculation is adopted.
        """
        t0 = time.perf_counter()
        captured = hooks.capture_begin()
        try:
            spec_measurer.num_measurements = ordinal
            predicted = spec_measurer.measure_batch(batch)

            clone: Tuner = object.__new__(type(self))
            clone.__dict__.update(pickle.loads(state_bytes))
            clone.task = self.task
            clone.measurer = spec_measurer
            clone._executor = None
            clone._executor_spec = None
            clone._pending_events = []
            absorb_events: List[TuningEvent] = []
            clone._event_sinks = (
                lambda _tuner, event: absorb_events.append(event),
            )

            new_records = clone._absorb(predicted, records)
            proposal_start = time.perf_counter()
            exhausted = False
            next_batch = clone._filter_unvisited(clone._generate_next())
            if not next_batch:
                next_batch = clone._random_unvisited(clone.batch_size)
                if not next_batch:
                    exhausted = True
            next_batch = next_batch[: n_trial - len(records)]
            proposal_s = time.perf_counter() - proposal_start
        finally:
            hooks.capture_end(captured)
        return _Speculation(
            predicted=predicted,
            clone=clone,
            new_records=new_records,
            absorb_events=absorb_events,
            next_batch=next_batch,
            exhausted=exhausted,
            captured=captured,
            proposal_s=proposal_s,
            wall_s=time.perf_counter() - t0,
        )

    def _adopt_speculation(
        self, spec: _Speculation, records: List[TrialRecord]
    ) -> None:
        """Make a validated speculation's state the real tuner state.

        The clone's non-ephemeral attributes *are* the serial
        post-absorb, post-propose state (its inputs were validated
        bit-identical), so they are adopted wholesale — including
        ``event_counts``, which already includes the absorb-time events.
        Those buffered events are then delivered straight to the real
        sinks (bypassing :meth:`_emit`, which would double-count them),
        and the clone's queued policy events transfer to the pending
        queue, to be flushed when its proposal is consumed.
        """
        clone = spec.clone
        for key, value in clone.__dict__.items():
            if key not in _EPHEMERAL_STATE:
                setattr(self, key, value)
        self._pending_events.extend(clone._pending_events)
        records.extend(spec.new_records)
        for event in spec.absorb_events:
            for sink in self._event_sinks:
                sink(self, event)

    def _pending_payload(
        self, current: Optional[_PendingProposal]
    ) -> Optional[dict]:
        """Checkpoint payload for an adopted-but-unconsumed proposal.

        ``events`` carries the clone's queued policy events: they are
        ephemeral on the tuner (cleared by :meth:`tune`), so a resumed
        pipelined run restores them from here before consuming the
        pending batch.
        """
        if current is None:
            return None
        return {
            "batch": list(current.batch),
            "proposal_s": current.proposal_s,
            "exhausted": current.exhausted,
            "captured": list(current.captured),
            "events": list(self._pending_events),
        }

    # ------------------------------------------------------------------
    # checkpoint / resume

    def snapshot(
        self,
        records: Sequence[TrialRecord] = (),
        stopper: Optional[EarlyStopper] = None,
        n_trial: int = 0,
        early_stopping: Optional[int] = None,
        initialized: bool = True,
        callbacks: Sequence[Callback] = (),
        pending: Optional[dict] = None,
    ) -> TuningCheckpoint:
        """Capture the resumable state of this tuner as a checkpoint.

        Everything a bit-identical continuation needs is included: the
        measured state, every RNG stream mid-position, subclass policy
        state (captured generically — all tuner attributes are plain
        picklable data), the trial records, the early-stopper counters,
        the measurement ordinal, and the state of any callbacks/event
        sinks implementing the optional ``state_dict`` protocol (see
        :mod:`repro.core.callbacks`).  The task environment and the
        executor are *not* serialized: both are pure functions of
        constructor arguments, so :meth:`resume` rebuilds them from the
        resuming tuner and validates identity via the task fingerprint.

        ``pending`` (pipelined runs only) is the adopted-but-unconsumed
        speculative proposal from :meth:`Tuner._pending_payload`;
        resuming a checkpoint that carries one re-enters the pipelined
        loop automatically.
        """
        state = {
            key: value
            for key, value in self.__dict__.items()
            if key not in _EPHEMERAL_STATE
        }
        payload_dict = {
            "tuner_state": state,
            "measured_ordinal": self.executor.num_measurements,
            "records": list(records),
            "stopper": (
                None
                if stopper is None
                else (stopper._best, stopper._best_step, stopper._step)
            ),
            "callback_states": _observer_states(callbacks),
            "sink_states": _observer_states(self._event_sinks),
        }
        if pending is not None:
            # only pipelined checkpoints carry the key, so serial
            # checkpoint payloads stay byte-for-byte what they were
            payload_dict["pending"] = pending
        payload = pickle.dumps(payload_dict, protocol=pickle.HIGHEST_PROTOCOL)
        return TuningCheckpoint(
            tuner_name=self.name,
            task_fingerprint=self.task.fingerprint,
            seed=self.seed,
            step=len(records),
            n_trial=n_trial,
            early_stopping=early_stopping,
            initialized=initialized,
            payload=payload,
        )

    def resume(
        self,
        source: Union[str, Path, TuningCheckpoint],
        callbacks: Sequence[Callback] = (),
        on_event: Sequence[EventCallback] = (),
        checkpoint: CheckpointSpec = _UNSET,  # type: ignore[assignment]
        n_trial: Optional[int] = None,
        early_stopping: Union[Optional[int], object] = _UNSET,
        pipeline: bool = False,
    ) -> TuningResult:
        """Continue a checkpointed run as if it had never stopped.

        ``source`` is a checkpoint path (or a loaded
        :class:`TuningCheckpoint`); this tuner must have been
        constructed with the same task, seed, and arm as the one that
        wrote it (validated, :class:`CheckpointError` otherwise).
        ``n_trial``/``early_stopping`` default to the crashed run's
        values; ``checkpoint`` defaults to continuing snapshots at the
        source path, so a run that crashes repeatedly stays resumable.

        The continuation is bit-identical: the resumed result carries
        the full record log (restored prefix plus new measurements) and
        the same final incumbent as an uninterrupted run.

        ``pipeline`` continues the run with the pipelined loop; it is
        forced on when the checkpoint carries a pending speculative
        proposal (a pipelined run's checkpoint), so fleet/CLI resume
        paths need no extra plumbing to resume pipelined runs.
        """
        if isinstance(source, TuningCheckpoint):
            ckpt = source
            default_spec: CheckpointSpec = None
        else:
            ckpt = TuningCheckpoint.load(source)
            default_spec = source
        payload = self._restore_checkpoint(ckpt)
        _restore_observer_states(
            callbacks,
            payload.get("callback_states"),
            self.num_measured,
            seed_counts=True,
        )
        _restore_observer_states(
            on_event,
            payload.get("sink_states"),
            self.num_measured,
            seed_counts=False,
        )
        spec = default_spec if checkpoint is _UNSET else checkpoint
        return self.tune(
            n_trial=ckpt.n_trial if n_trial is None else n_trial,
            early_stopping=(
                ckpt.early_stopping
                if early_stopping is _UNSET
                else early_stopping  # type: ignore[arg-type]
            ),
            callbacks=callbacks,
            on_event=on_event,
            checkpoint=spec,
            pipeline=pipeline,
            _resume={
                "records": payload["records"],
                "stopper": payload["stopper"],
                "initialized": ckpt.initialized,
                "pending": payload.get("pending"),
            },
        )

    def _save_checkpoint(
        self,
        policy: CheckpointPolicy,
        records: Sequence[TrialRecord],
        stopper: Optional[EarlyStopper],
        n_trial: int,
        early_stopping: Optional[int],
        initialized: bool,
        callbacks: Sequence[Callback] = (),
        pending: Optional[dict] = None,
    ) -> None:
        ckpt = self.snapshot(
            records=records,
            stopper=stopper,
            n_trial=n_trial,
            early_stopping=early_stopping,
            initialized=initialized,
            callbacks=callbacks,
            pending=pending,
        )
        path = ckpt.save(policy.path)
        self._emit(CheckpointSaved(step=len(records), path=path))

    def _restore_checkpoint(self, ckpt: TuningCheckpoint) -> dict:
        """Swap this tuner's mutable state for the checkpointed state."""
        mismatch = ckpt.matches(self)
        if mismatch is not None:
            raise CheckpointError(mismatch)
        payload = pickle.loads(ckpt.payload)
        for key, value in payload["tuner_state"].items():
            setattr(self, key, value)
        ordinal = int(payload["measured_ordinal"])
        self.measurer.num_measurements = ordinal
        if self._executor is not None:
            self._executor.sync_ordinal(ordinal)
        return payload

    @staticmethod
    def _restore_stopper(
        early_stopping: Optional[int], saved: Optional[tuple]
    ) -> Optional[EarlyStopper]:
        if early_stopping is None:
            return None
        stopper = EarlyStopper(early_stopping)
        if saved is not None:
            stopper._best, stopper._best_step, stopper._step = saved
        return stopper

    def _absorb(
        self, results: List[MeasureResult], records: List[TrialRecord]
    ) -> List[TrialRecord]:
        """Fold measurement results into tuner state; returns new records."""
        new_records = []
        batch_indices = np.fromiter(
            (r.config_index for r in results),
            dtype=np.int64,
            count=len(results),
        )
        self._features.extend(batch_indices)
        self._visited_sorted = np.union1d(
            self._visited_sorted, batch_indices
        )
        for result in results:
            idx = result.config_index
            self.visited.add(idx)
            self.measured_indices.append(idx)
            self.measured_scores.append(result.gflops)
            if result.gflops > self.best_gflops:
                self._emit(
                    IncumbentImproved(
                        step=len(records) + 1,
                        config_index=idx,
                        gflops=result.gflops,
                        previous_gflops=self.best_gflops,
                    )
                )
                self.best_gflops = result.gflops
                self.best_index = idx
            record = TrialRecord(
                step=len(records) + 1,
                config_index=idx,
                gflops=result.gflops,
                error=result.error_msg if not result.ok else "",
            )
            records.append(record)
            new_records.append(record)
        return new_records
