"""The Droplet arm: coordinate-descent exploitation of the incumbent.

A small random initialization batch seeds the search; every iterative
step then line-searches the knob axes around the best configuration so
far (greedy axis sweep, doubling step, random restarts — see
:mod:`repro.core.droplet`).  The arm is a pure exploiter: it spends
almost its whole budget in the incumbent's basin, which is exactly the
behaviour the explore-heavy paper arms lack ("Explore as a Storm,
Exploit as a Raindrop", PAPERS.md).
"""

from __future__ import annotations

from typing import List

from repro.core.droplet import (
    CoordinateDescent,
    DropletSettings,
    droplet_propose,
)
from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask


class DropletTuner(Tuner):
    """Coordinate-descent line search around the incumbent."""

    name = "droplet"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        batch_size: int = 64,
        init_size: int = 16,
        settings: DropletSettings = DropletSettings(),
        executor: ExecutorSpec = None,
        warm_start=None,
    ):
        super().__init__(
            task, seed=seed, batch_size=batch_size, executor=executor,
            warm_start=warm_start,
        )
        if init_size <= 0:
            raise ValueError("init_size must be positive")
        self.init_size = init_size
        self.droplet = CoordinateDescent(
            task.space, settings=settings,
            seed=self.rng_pool.seed_for("droplet"),
        )

    def _generate_initial(self) -> List[int]:
        indices = self.task.space.sample(
            self.init_size, seed=self.rng_pool.seed_for("init")
        )
        return [int(i) for i in indices]

    def _generate_next(self) -> List[int]:
        # an exhausted policy returns [] and the base loop's random
        # fallback / SpaceExhausted handling takes over
        return droplet_propose(self, self.droplet)
