"""Uniform random search — the weakest baseline."""

from __future__ import annotations

from typing import List

from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask


class RandomTuner(Tuner):
    """Proposes uniformly random unvisited configurations every batch."""

    name = "random"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        batch_size: int = 64,
        executor: ExecutorSpec = None,
        warm_start=None,
    ):
        super().__init__(
            task, seed=seed, batch_size=batch_size, executor=executor,
            warm_start=warm_start,
        )

    def _generate_initial(self) -> List[int]:
        return self._random_unvisited(self.batch_size)

    def _generate_next(self) -> List[int]:
        return self._random_unvisited(self.batch_size)
