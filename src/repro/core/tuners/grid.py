"""Deterministic grid (index-sweep) search baseline.

Walks the flat config-index space with a fixed stride chosen so the
trial budget covers the whole space as evenly as possible.  Useful as a
sanity baseline and for exhaustively enumerating tiny spaces in tests.
"""

from __future__ import annotations

from typing import List

from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask


class GridTuner(Tuner):
    """Strided sweep over config indices."""

    name = "grid"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        batch_size: int = 64,
        planned_trials: int = 2048,
        executor: ExecutorSpec = None,
        warm_start=None,
    ):
        super().__init__(
            task, seed=seed, batch_size=batch_size, executor=executor,
            warm_start=warm_start,
        )
        if planned_trials <= 0:
            raise ValueError("planned_trials must be positive")
        size = len(task.space)
        self._stride = max(1, size // min(planned_trials, size))
        self._next_position = 0

    def _take(self) -> List[int]:
        size = len(self.task.space)
        batch: List[int] = []
        while len(batch) < self.batch_size and self._next_position < size:
            batch.append(self._next_position)
            self._next_position += self._stride
        return batch

    def _generate_initial(self) -> List[int]:
        return self._take()

    def _generate_next(self) -> List[int]:
        return self._take()
