"""Concrete tuners: the experimental arms of the paper plus baselines."""

from repro.core.tuners.random import RandomTuner
from repro.core.tuners.grid import GridTuner
from repro.core.tuners.ga import GATuner
from repro.core.tuners.autotvm import AutoTVMTuner
from repro.core.tuners.bted import BTEDAdaptiveTuner, BTEDTuner
from repro.core.tuners.btedbao import (
    BTEDBAOAdaptiveTuner,
    BTEDBAODropletTuner,
    BTEDBAOTuner,
)
from repro.core.tuners.droplet import DropletTuner

__all__ = [
    "RandomTuner",
    "GridTuner",
    "GATuner",
    "AutoTVMTuner",
    "BTEDTuner",
    "BTEDAdaptiveTuner",
    "BTEDBAOTuner",
    "BTEDBAOAdaptiveTuner",
    "BTEDBAODropletTuner",
    "DropletTuner",
]
