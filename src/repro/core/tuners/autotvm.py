"""The AutoTVM baseline arm: XGBoost-style cost model + simulated annealing.

Reproduces AutoTVM's model-based tuner [18] as the paper configures it
(Sec. V-A): 64 random initial configurations, then repeated rounds of
(fit cost model on everything measured) -> (parallel SA proposes the
next plan of 64 unvisited configs) -> (measure), with epsilon-greedy
random exploration mixed into each plan and optional transfer-learning
warm start from tuning history.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.adaptive import prune_plan, validate_adaptive
from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask
from repro.learning.gbt import GradientBoostedTrees
from repro.learning.sa import simulated_annealing_search
from repro.learning.transfer import TransferHistory


class AutoTVMTuner(Tuner):
    """XGB+SA model-based tuner (the paper's "AutoTVM" arm)."""

    name = "autotvm"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        batch_size: int = 64,
        init_size: int = 64,
        epsilon_greedy: float = 0.05,
        sa_chains: int = 128,
        sa_steps: int = 120,
        transfer: Optional[TransferHistory] = None,
        executor: ExecutorSpec = None,
        warm_start=None,
        adaptive_sampling: bool = False,
        adaptive_keep: float = 0.5,
        refit: str = "full",
        incremental_rounds: int = 12,
        max_model_trees: int = 120,
    ):
        super().__init__(
            task, seed=seed, batch_size=batch_size, executor=executor,
            warm_start=warm_start,
        )
        if init_size <= 0:
            raise ValueError("init_size must be positive")
        if not 0.0 <= epsilon_greedy < 1.0:
            raise ValueError("epsilon_greedy must be in [0, 1)")
        if refit not in ("full", "incremental"):
            raise ValueError("refit must be 'full' or 'incremental'")
        if incremental_rounds < 1:
            raise ValueError("incremental_rounds must be >= 1")
        validate_adaptive(adaptive_keep)
        self.init_size = init_size
        self.epsilon_greedy = epsilon_greedy
        self.sa_chains = sa_chains
        self.sa_steps = sa_steps
        # Chameleon-style adaptive sampling: k-center prune each plan
        # before measuring (off by default — the cold path is untouched)
        self.adaptive_sampling = adaptive_sampling
        self.adaptive_keep = adaptive_keep
        # a warm-start plan's discounted history pretrains the cost
        # model unless the caller wired an explicit TransferHistory
        if transfer is None and warm_start is not None:
            transfer = getattr(warm_start, "history", None)
        self.transfer = transfer
        #: cost-model refit strategy: "full" rebuilds the GBT from
        #: scratch each round (historical, golden-pinned);
        #: "incremental" keeps the model and appends boosting rounds
        self.refit = refit
        self.incremental_rounds = incremental_rounds
        self.max_model_trees = max_model_trees
        self._model: Optional[GradientBoostedTrees] = None
        self._round = 0

    # ------------------------------------------------------------------

    def _generate_initial(self) -> List[int]:
        indices = self.task.space.sample(
            self.init_size, seed=self.rng_pool.seed_for("init")
        )
        return [int(i) for i in indices]

    def _fit_model(self) -> GradientBoostedTrees:
        X = self.measured_features
        y = self.measured_scores_array
        best = float(y.max()) if len(y) else 0.0
        norm = best if best > 0 else 1.0
        if self.transfer is not None:
            Xh, yh, wh = self.transfer.training_data(
                self.task.space.feature_dim,
                current_features=X,
                current_targets=y,
            )
            if len(yh):
                # transfer rows/weights change shape every round, so the
                # warm path does not apply; refit from scratch
                model = self._new_model()
                model.fit(Xh, yh, sample_weight=wh)
                return model
        if (
            self.refit == "incremental"
            and self._model is not None
            and self._model.n_trees + self.incremental_rounds
            <= self.max_model_trees
        ):
            # warm start: keep the grown trees (and frozen bin edges),
            # append rounds against the renormalized measured set
            self._model.fit_more(X, y / norm, self.incremental_rounds)
            return self._model
        model = self._new_model()
        model.fit(X, y / norm)
        if self.refit == "incremental":
            self._model = model
        return model

    def _new_model(self) -> GradientBoostedTrees:
        return GradientBoostedTrees(
            n_estimators=50,
            learning_rate=0.22,
            max_depth=5,
            subsample=0.9,
            seed=self.rng_pool.get("model"),
        )

    def _generate_next(self) -> List[int]:
        self._round += 1
        model = self._fit_model()
        space = self.task.space

        def score_fn(indices: np.ndarray) -> np.ndarray:
            feats = space.feature_matrix(indices)
            return model.predict(feats)

        plan = simulated_annealing_search(
            space,
            score_fn,
            plan_size=self.batch_size,
            seed=self.rng_pool.seed_for(f"sa-{self._round}"),
            n_chains=self.sa_chains,
            n_steps=self.sa_steps,
            exclude=self.visited,
        )
        # adaptive sampling prunes the (best-first) SA plan *before*
        # the epsilon-greedy tail, so exploration survives the pruning;
        # the tail share scales with the surviving plan so the measured
        # batch actually shrinks
        target = self.batch_size
        if self.adaptive_sampling and len(plan) > 1:
            plan = prune_plan(self, plan, self.adaptive_keep)
            target = len(plan)
        # epsilon-greedy exploration: replace a tail share of the plan
        n_random = int(round(self.epsilon_greedy * target))
        if n_random > 0:
            plan = plan[: target - n_random]
            plan.extend(self._random_unvisited(n_random))
        return plan

    # ------------------------------------------------------------------

    def export_history(self) -> None:
        """Push this task's measurements into the transfer history."""
        if self.transfer is None:
            raise RuntimeError("tuner was built without a TransferHistory")
        self.transfer.add_task(
            self.task.name,
            self.measured_features,
            self.measured_scores_array,
        )
