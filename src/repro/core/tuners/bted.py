"""The BTED arm: AutoTVM's iterative stage with BTED initialization.

Identical to :class:`~repro.core.tuners.autotvm.AutoTVMTuner` except
the 64 random initial configurations are replaced by the diverse
initialization set of Algorithm 2 (batch transductive experimental
design), with the paper's settings ``(mu=0.1, M=500, m=64, B=10)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bted import bted_select
from repro.core.tuners.autotvm import AutoTVMTuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask
from repro.learning.transfer import TransferHistory


class BTEDTuner(AutoTVMTuner):
    """AutoTVM iterative search + BTED initialization (the "BTED" arm)."""

    name = "bted"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        batch_size: int = 64,
        init_size: int = 64,
        mu: float = 0.1,
        batch_candidates: int = 500,
        num_batches: int = 10,
        epsilon_greedy: float = 0.05,
        sa_chains: int = 128,
        sa_steps: int = 120,
        transfer: Optional[TransferHistory] = None,
        executor: ExecutorSpec = None,
        ted_method: str = "exact",
        warm_start=None,
        adaptive_sampling: bool = False,
        adaptive_keep: float = 0.5,
        refit: str = "full",
    ):
        super().__init__(
            task,
            seed=seed,
            batch_size=batch_size,
            init_size=init_size,
            epsilon_greedy=epsilon_greedy,
            sa_chains=sa_chains,
            sa_steps=sa_steps,
            transfer=transfer,
            executor=executor,
            warm_start=warm_start,
            adaptive_sampling=adaptive_sampling,
            adaptive_keep=adaptive_keep,
            refit=refit,
        )
        self.mu = mu
        self.batch_candidates = batch_candidates
        self.num_batches = num_batches
        self.ted_method = ted_method

    def _generate_initial(self) -> List[int]:
        return bted_select(
            self.task.space,
            m=self.init_size,
            mu=self.mu,
            batch_candidates=self.batch_candidates,
            num_batches=self.num_batches,
            seed=self.rng_pool.seed_for("bted-init"),
            ted_method=self.ted_method,
        )


class BTEDAdaptiveTuner(BTEDTuner):
    """BTED with the adaptive-sampling proposal stage on (the "bted+as" arm).

    A distinct registry arm rather than a flag spelling, so the pruned
    variant gets its own RNG streams, golden traces, checkpoints and
    experiment-grid column.
    """

    name = "bted+as"

    def __init__(self, *args, adaptive_sampling: bool = True, **kwargs):
        super().__init__(
            *args, adaptive_sampling=adaptive_sampling, **kwargs
        )
