"""Genetic-algorithm tuner (AutoTVM's ``GATuner`` baseline).

Measurement-driven evolution without a surrogate model: a population of
configurations is measured, the elite survives, and offspring are bred
by uniform knob crossover plus point mutation.  Included because
AutoTVM ships it as a standard baseline alongside random and grid
search.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask


class GATuner(Tuner):
    """Population-based evolutionary search over the config space."""

    name = "ga"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        population_size: int = 64,
        elite_fraction: float = 0.25,
        mutation_prob: float = 0.1,
        executor: ExecutorSpec = None,
        warm_start=None,
    ):
        super().__init__(
            task, seed=seed, batch_size=population_size, executor=executor,
            warm_start=warm_start,
        )
        if population_size < 4:
            raise ValueError("population_size must be >= 4")
        if not 0.0 < elite_fraction < 1.0:
            raise ValueError("elite_fraction must be in (0, 1)")
        if not 0.0 <= mutation_prob <= 1.0:
            raise ValueError("mutation_prob must be in [0, 1]")
        self.population_size = population_size
        self.elite_fraction = elite_fraction
        self.mutation_prob = mutation_prob

    def _generate_initial(self) -> List[int]:
        indices = self.task.space.sample(
            self.population_size, seed=self.rng_pool.seed_for("ga-init")
        )
        return [int(i) for i in indices]

    def _elite(self) -> np.ndarray:
        """Digit matrix of the best measured configs so far."""
        n_elite = max(2, int(round(self.elite_fraction * self.population_size)))
        scores = self.measured_scores_array
        order = np.argsort(-scores, kind="stable")[:n_elite]
        elite_indices = [self.measured_indices[i] for i in order]
        return self.task.space.decode_batch(np.asarray(elite_indices))

    def _generate_next(self) -> List[int]:
        rng = self.rng_pool.get("ga")
        space = self.task.space
        elite = self._elite()
        n_elite, n_knobs = elite.shape
        sizes = np.asarray(space.knob_sizes, dtype=np.int64)

        children = np.empty((self.population_size, n_knobs), dtype=np.int64)
        parents_a = rng.integers(0, n_elite, size=self.population_size)
        parents_b = rng.integers(0, n_elite, size=self.population_size)
        take_a = rng.random((self.population_size, n_knobs)) < 0.5
        children[:] = np.where(
            take_a, elite[parents_a], elite[parents_b]
        )
        mutate = rng.random((self.population_size, n_knobs)) < (
            self.mutation_prob
        )
        random_digits = rng.integers(
            0, sizes[None, :], size=(self.population_size, n_knobs)
        )
        children = np.where(mutate, random_digits, children)

        proposals = space.encode_batch(children)
        unique: List[int] = []
        seen = set()
        for idx in proposals:
            idx = int(idx)
            if idx not in seen and idx not in self.visited:
                seen.add(idx)
                unique.append(idx)
        # top up with random configs when crossover collapses diversity
        if len(unique) < self.population_size // 2:
            unique.extend(
                self._random_unvisited(self.population_size - len(unique))
            )
        return unique
