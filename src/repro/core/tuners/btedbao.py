"""The BTED+BAO arm: the paper's full advanced active-learning framework.

Initialization by BTED (Alg. 2); each iterative step selects exactly
one configuration by Bootstrap-guided sampling over the adaptive
neighborhood of the incumbent (Alg. 3 & 4) and deploys it.  Paper
settings (Sec. V-A): ``eta=0.05, Gamma=2, tau=1.5, R=3``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bao import BaoOptimizer, BaoSettings
from repro.core.bootstrap import ModelFactory
from repro.core.bted import bted_select
from repro.core.events import ScopeWidened
from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask


class BTEDBAOTuner(Tuner):
    """BTED initialization + BAO iterative optimization."""

    name = "bted+bao"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        init_size: int = 64,
        mu: float = 0.1,
        batch_candidates: int = 500,
        num_batches: int = 10,
        bao_settings: BaoSettings = BaoSettings(),
        model_factory: Optional[ModelFactory] = None,
        measure_batch_size: int = 1,
        executor: ExecutorSpec = None,
        ted_method: str = "exact",
        warm_start=None,
    ):
        # BAO deploys one configuration per iteration (Alg. 4 line 10-11);
        # measure_batch_size > 1 enables the parallel-measurement
        # extension (top-k of the acquisition per ensemble refit)
        if measure_batch_size < 1:
            raise ValueError("measure_batch_size must be >= 1")
        super().__init__(
            task, seed=seed, batch_size=measure_batch_size,
            executor=executor, warm_start=warm_start,
        )
        if init_size <= 0:
            raise ValueError("init_size must be positive")
        self.init_size = init_size
        self.mu = mu
        self.batch_candidates = batch_candidates
        self.num_batches = num_batches
        self.ted_method = ted_method
        self.bao = BaoOptimizer(
            task.space,
            settings=bao_settings,
            seed=self.rng_pool.seed_for("bao"),
            model_factory=model_factory,
            transfer=(
                getattr(warm_start, "history", None)
                if warm_start is not None else None
            ),
        )

    def _generate_initial(self) -> List[int]:
        return bted_select(
            self.task.space,
            m=self.init_size,
            mu=self.mu,
            batch_candidates=self.batch_candidates,
            num_batches=self.num_batches,
            seed=self.rng_pool.seed_for("bted-init"),
            ted_method=self.ted_method,
        )

    def _generate_next(self) -> List[int]:
        # Alg. 4: observe the best value reached, then propose x*_t
        self.bao.observe(self.best_gflops)
        if self.best_index is None:
            return self._random_unvisited(self.batch_size)
        if self.batch_size == 1:
            chosen = [
                self.bao.propose(
                    self.measured_features,
                    self.measured_scores_array,
                    best_index=self.best_index,
                    visited=self.visited_sorted,
                )
            ]
        else:
            chosen = self.bao.propose_batch(
                self.measured_features,
                self.measured_scores_array,
                best_index=self.best_index,
                k=self.batch_size,
                visited=self.visited_sorted,
            )
        # surface the r_t adaptation decision as a structured event
        if self.bao.last_radius > self.bao.settings.radius:
            self._queue_event(
                ScopeWidened(
                    step=len(self.measured_indices),
                    radius=self.bao.last_radius,
                    base_radius=self.bao.settings.radius,
                    stagnation=self.bao.stagnation,
                )
            )
        fresh = [c for c in chosen if c not in self.visited]
        if not fresh:
            return self._random_unvisited(self.batch_size)
        return fresh
