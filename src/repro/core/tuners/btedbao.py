"""The BTED+BAO arm: the paper's full advanced active-learning framework.

Initialization by BTED (Alg. 2); each iterative step selects exactly
one configuration by Bootstrap-guided sampling over the adaptive
neighborhood of the incumbent (Alg. 3 & 4) and deploys it.  Paper
settings (Sec. V-A): ``eta=0.05, Gamma=2, tau=1.5, R=3``.

Two opt-in extensions ride on top of the paper arm:

* ``finish="droplet"`` hands the search over to a coordinate-descent
  exploit phase (:mod:`repro.core.droplet`) once BAO stagnates (or at
  a fixed measurement count via ``finish_after``) — explore as a
  storm, exploit as a raindrop.
* ``adaptive_sampling=True`` k-center-prunes each proposed batch
  before measurement (meaningful with ``measure_batch_size > 1``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.adaptive import prune_plan, validate_adaptive
from repro.core.bao import BaoOptimizer, BaoSettings
from repro.core.bootstrap import ModelFactory
from repro.core.bted import bted_select
from repro.core.droplet import (
    CoordinateDescent,
    DropletSettings,
    droplet_propose,
)
from repro.core.events import FinishPhaseStarted, ScopeWidened
from repro.core.tuner import Tuner
from repro.hardware.executor import ExecutorSpec
from repro.hardware.measure import SimulatedTask


class BTEDBAOTuner(Tuner):
    """BTED initialization + BAO iterative optimization."""

    name = "bted+bao"

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        init_size: int = 64,
        mu: float = 0.1,
        batch_candidates: int = 500,
        num_batches: int = 10,
        bao_settings: BaoSettings = BaoSettings(),
        model_factory: Optional[ModelFactory] = None,
        measure_batch_size: int = 1,
        executor: ExecutorSpec = None,
        ted_method: str = "exact",
        warm_start=None,
        finish: Optional[str] = None,
        finish_after: Optional[int] = None,
        finish_stagnation: int = 8,
        droplet_settings: DropletSettings = DropletSettings(),
        adaptive_sampling: bool = False,
        adaptive_keep: float = 0.5,
        refit: str = "full",
    ):
        # BAO deploys one configuration per iteration (Alg. 4 line 10-11);
        # measure_batch_size > 1 enables the parallel-measurement
        # extension (top-k of the acquisition per ensemble refit)
        if measure_batch_size < 1:
            raise ValueError("measure_batch_size must be >= 1")
        if finish not in (None, "droplet"):
            raise ValueError(
                f"unknown finishing policy {finish!r}; only 'droplet' "
                "is available"
            )
        if finish_after is not None and finish_after <= 0:
            raise ValueError("finish_after must be positive")
        if finish_stagnation <= 0:
            raise ValueError("finish_stagnation must be positive")
        validate_adaptive(adaptive_keep)
        super().__init__(
            task, seed=seed, batch_size=measure_batch_size,
            executor=executor, warm_start=warm_start,
        )
        if init_size <= 0:
            raise ValueError("init_size must be positive")
        self.init_size = init_size
        self.mu = mu
        self.batch_candidates = batch_candidates
        self.num_batches = num_batches
        self.ted_method = ted_method
        self.adaptive_sampling = adaptive_sampling
        self.adaptive_keep = adaptive_keep
        #: ensemble refit strategy: "full" (historical, golden-pinned)
        #: or "incremental" (warm-started, opt-in like ted_method="fast")
        self.refit = refit
        self.bao = BaoOptimizer(
            task.space,
            settings=bao_settings,
            seed=self.rng_pool.seed_for("bao"),
            model_factory=model_factory,
            transfer=(
                getattr(warm_start, "history", None)
                if warm_start is not None else None
            ),
            refit=refit,
        )
        # finishing phase: None until the handoff condition fires, then
        # every proposal comes from the coordinate-descent policy
        self.finish = finish
        self.finish_after = finish_after
        self.finish_stagnation = finish_stagnation
        self.finishing = False
        self.droplet = (
            CoordinateDescent(
                task.space, settings=droplet_settings,
                seed=self.rng_pool.seed_for("droplet"),
            )
            if finish is not None
            else None
        )

    def _generate_initial(self) -> List[int]:
        return bted_select(
            self.task.space,
            m=self.init_size,
            mu=self.mu,
            batch_candidates=self.batch_candidates,
            num_batches=self.num_batches,
            seed=self.rng_pool.seed_for("bted-init"),
            ted_method=self.ted_method,
        )

    def _should_finish(self) -> bool:
        if self.finish is None or self.finishing:
            return False
        if self.finish_after is not None:
            return self.num_measured >= self.finish_after
        return self.bao.stagnation >= self.finish_stagnation

    def _generate_next(self) -> List[int]:
        # Alg. 4: observe the best value reached, then propose x*_t
        self.bao.observe(self.best_gflops)
        if self.best_index is None:
            return self._random_unvisited(self.batch_size)
        if self._should_finish():
            self.finishing = True
            self._queue_event(
                FinishPhaseStarted(
                    step=self.num_measured,
                    policy=self.finish,
                    stagnation=self.bao.stagnation,
                )
            )
        if self.finishing:
            batch = droplet_propose(self, self.droplet)
            if not batch:
                return self._random_unvisited(self.batch_size)
            return batch
        if self.batch_size == 1:
            chosen = [
                self.bao.propose(
                    self.measured_features,
                    self.measured_scores_array,
                    best_index=self.best_index,
                    visited=self.visited_sorted,
                )
            ]
        else:
            chosen = self.bao.propose_batch(
                self.measured_features,
                self.measured_scores_array,
                best_index=self.best_index,
                k=self.batch_size,
                visited=self.visited_sorted,
            )
        # surface the r_t adaptation decision as a structured event
        if self.bao.last_radius > self.bao.settings.radius:
            self._queue_event(
                ScopeWidened(
                    step=len(self.measured_indices),
                    radius=self.bao.last_radius,
                    base_radius=self.bao.settings.radius,
                    stagnation=self.bao.stagnation,
                )
            )
        if self.adaptive_sampling and len(chosen) > 1:
            chosen = prune_plan(self, chosen, self.adaptive_keep)
        fresh = [c for c in chosen if c not in self.visited]
        if not fresh:
            return self._random_unvisited(self.batch_size)
        return fresh


class BTEDBAODropletTuner(BTEDBAOTuner):
    """BTED+BAO exploring, coordinate descent finishing ("bted+bao+droplet").

    The registry spelling of ``finish="droplet"``: once BAO's
    stagnation counter shows the bootstrap search has flattened, the
    remaining budget is spent line-searching the incumbent's axes.
    """

    name = "bted+bao+droplet"

    def __init__(self, *args, finish: Optional[str] = "droplet", **kwargs):
        super().__init__(*args, finish=finish, **kwargs)


class BTEDBAOAdaptiveTuner(BTEDBAOTuner):
    """Batched BTED+BAO with adaptive sampling on ("bted+bao+as").

    Proposes top-k batches per refit (``measure_batch_size=8`` by
    default) and k-center-prunes each batch before deployment.
    """

    name = "bted+bao+as"

    def __init__(
        self,
        *args,
        measure_batch_size: int = 8,
        adaptive_sampling: bool = True,
        **kwargs,
    ):
        super().__init__(
            *args,
            measure_batch_size=measure_batch_size,
            adaptive_sampling=adaptive_sampling,
            **kwargs,
        )
