"""Structured tuning events.

The tuning loop used to be observable only through print-debugging or
by re-deriving state from trial records.  Instead, :meth:`Tuner.tune`
emits typed :class:`TuningEvent` objects through its ``on_event``
callbacks at every decision point: a batch proposed, a batch measured,
the incumbent improved, BAO widening its search scope (the ``r_t``
rule of Alg. 4), early stopping firing, or the space running dry.

Event consumers are callables ``(tuner, event) -> None``; the
:class:`EventLog` collector is the one most tests and analyses need.
``step`` on every event is the number of configurations measured when
the event fired, i.e. the x-coordinate on the paper's Fig. 4 axis.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type, TypeVar

from repro.hardware.measure import MeasureResult

#: word boundaries of a CamelCase name: lower/digit->upper transitions
#: plus the last capital of an acronym run (``BAOScope`` -> ``BAO|Scope``)
_CAMEL_BOUNDARY = re.compile(
    r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])"
)

#: per-class snake-case names; ``kind`` is read in every hot
#: event-consumer loop, so it must not re-derive the name per access
_KIND_CACHE: Dict[type, str] = {}


def _snake_case(name: str) -> str:
    """CamelCase -> snake_case, keeping acronym runs as one word."""
    return _CAMEL_BOUNDARY.sub("_", name).lower()


@dataclass(frozen=True)
class TuningEvent:
    """Base class of all events; ``step`` = measurements completed."""

    step: int

    @property
    def kind(self) -> str:
        """Event type as a lowercase name (``"batch_proposed"`` etc.).

        Computed once per class and cached: acronym runs collapse to a
        single word (``BAOScopeWidened`` -> ``bao_scope_widened``), not
        one underscore per capital.
        """
        cls = type(self)
        kind = _KIND_CACHE.get(cls)
        if kind is None:
            kind = _KIND_CACHE[cls] = _snake_case(cls.__name__)
        return kind


@dataclass(frozen=True)
class BatchProposed(TuningEvent):
    """The search policy committed to measuring these configurations."""

    config_indices: Tuple[int, ...]
    #: wall-clock seconds the policy spent generating this proposal
    #: (BTED/TED selection, ensemble refit, neighborhood scoring)
    proposal_s: float = 0.0


@dataclass(frozen=True)
class BatchMeasured(TuningEvent):
    """A proposed batch came back from the measurement executor."""

    results: Tuple[MeasureResult, ...]
    #: wall-clock seconds the executor spent deploying the batch
    measure_s: float = 0.0

    @property
    def num_ok(self) -> int:
        """How many measurements in the batch succeeded."""
        return sum(1 for r in self.results if r.ok)


@dataclass(frozen=True)
class IncumbentImproved(TuningEvent):
    """A measurement beat the best-so-far configuration."""

    config_index: int
    gflops: float
    previous_gflops: float


@dataclass(frozen=True)
class ScopeWidened(TuningEvent):
    """BAO's ``r_t < eta`` rule widened the neighborhood radius."""

    radius: float
    base_radius: float
    stagnation: int


@dataclass(frozen=True)
class EarlyStopped(TuningEvent):
    """The no-improvement window expired and the loop stopped."""

    patience: int
    best_gflops: float


@dataclass(frozen=True)
class SpaceExhausted(TuningEvent):
    """Every configuration in the space has been measured."""


@dataclass(frozen=True)
class MeasurementRetried(TuningEvent):
    """Transient faults hit a measurement, but a retry recovered it."""

    config_index: int
    ordinal: int
    #: attempts made in total, including the one that succeeded
    attempts: int
    #: fault kind names of the failed attempts, in order
    faults: Tuple[str, ...]
    backoff_s: float


@dataclass(frozen=True)
class MeasurementFailed(TuningEvent):
    """Retries ran out; the config was recorded as an error, not raised."""

    config_index: int
    ordinal: int
    attempts: int
    #: fault kind name of the final failed attempt
    fault: str


@dataclass(frozen=True)
class CheckpointSaved(TuningEvent):
    """The tuning loop snapshotted its resumable state to disk."""

    path: str


@dataclass(frozen=True)
class TuningResumed(TuningEvent):
    """The loop picked up from a checkpoint instead of a fresh start."""

    #: measurements already absorbed when the run resumed
    restored_records: int


@dataclass(frozen=True)
class WarmStarted(TuningEvent):
    """Prior tuning-log configs were injected into the initial batch."""

    #: configs from the warm-start plan that made it into the batch
    injected: int
    #: ``"exact"`` or ``"similar"`` — provenance of the top source
    source: str
    #: prior samples available for cost-model pretraining
    history_samples: int = 0
    #: source segments measured on another device class
    cross_sources: int = 0


@dataclass(frozen=True)
class ExploitStepped(TuningEvent):
    """The coordinate-descent exploit policy swept the incumbent's axes."""

    #: config index the sweep is centered on
    center: int
    #: current line-search step length (doubles when an axis dries up)
    step_size: int
    #: random restarts taken so far (sweep exhausted around a center)
    restarts: int


@dataclass(frozen=True)
class CandidatesPruned(TuningEvent):
    """Adaptive sampling dropped near-duplicate proposals before measuring."""

    #: configs the search policy originally proposed
    proposed: int
    #: configs that survived the k-center pruning
    kept: int

    @property
    def dropped(self) -> int:
        return self.proposed - self.kept


@dataclass(frozen=True)
class FinishPhaseStarted(TuningEvent):
    """A two-phase arm handed the search over to its finishing policy."""

    #: registry-style name of the finishing policy (``"droplet"``)
    policy: str
    #: exploration-policy stagnation count when the handoff fired
    stagnation: int = 0


@dataclass(frozen=True)
class TlogExactHit(TuningEvent):
    """The tuning log served this task without a single measurement."""

    #: signature key of the matching segment
    signature_key: str
    #: records replayed from the log
    records: int
    best_gflops: float = 0.0


@dataclass(frozen=True)
class SpeculationResolved(TuningEvent):
    """The pipelined loop resolved one speculative proposal.

    Emitted only with ``pipeline=True``, after the concurrent
    measurement lands: ``adopted=True`` means the speculation's
    predicted results matched the real ones bit-for-bit and its
    proposal was kept; ``adopted=False`` means it was discarded and
    the proposal replayed serially.  Filtered out of serial-vs-pipelined
    trace comparisons (it is the only event the modes don't share).
    """

    adopted: bool = True
    #: proposal seconds hidden behind the concurrent measurement
    overlap_s: float = 0.0


#: the ``on_event`` callback signature
EventCallback = Callable[[object, TuningEvent], None]

E = TypeVar("E", bound=TuningEvent)


class EventLog:
    """Event callback that records everything it sees, in order.

    >>> log = EventLog()
    >>> tuner.tune(n_trial=64, on_event=[log])       # doctest: +SKIP
    >>> log.of_type(IncumbentImproved)               # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.events: List[TuningEvent] = []

    def __call__(self, tuner: object, event: TuningEvent) -> None:
        """Record one event."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, event_type: Type[E]) -> List[E]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, event_type)]
