"""Tuning checkpoints: crash-at-any-batch, resume-bit-identical.

AutoTVM's JSON-line record log exists so tuning can be replayed and
resumed; this module extends the idea to the *whole* search state.  A
:class:`TuningCheckpoint` snapshots everything :meth:`Tuner.tune` needs
to continue a run as if it had never stopped:

* the tuner's measured state (visited set, measurement order, scores,
  feature cache, incumbent),
* every named RNG stream, mid-stream (``numpy`` generators pickle with
  their exact position),
* subclass policy state (BAO scope/ensemble, the GA population cursor,
  the XGB round counter, ...) — captured generically because all tuner
  attributes are plain picklable data,
* the trial records accumulated so far, the early-stopper counters, and
  the measurement ordinal (which also replays the noise and fault
  streams from the right position).

Checkpoints are written atomically (write-tmp-fsync-rename via
:mod:`repro.utils.io`), so a crash *during* checkpointing preserves the
previous checkpoint.  The determinism contract — ``crash at any batch +
resume == uninterrupted run``, bit for bit, on both the record log and
the final incumbent — is pinned by ``tests/test_resume_properties.py``
across random crash points and fault schedules.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.utils.io import atomic_write_bytes

#: bump when the checkpoint payload layout changes incompatibly
CHECKPOINT_VERSION = 1

_MAGIC = "repro-tuning-checkpoint"


class CheckpointError(ValueError):
    """A checkpoint file is unreadable or does not match the tuner."""


@dataclass(frozen=True)
class TuningCheckpoint:
    """One resumable snapshot of a tuning run, taken at a batch boundary.

    ``payload`` is an opaque pickle of the tuner's internal state; the
    remaining fields identify *which* run the snapshot belongs to so
    :meth:`Tuner.resume` can refuse a mismatched checkpoint instead of
    silently diverging.
    """

    tuner_name: str
    task_fingerprint: str
    seed: int
    step: int
    n_trial: int
    early_stopping: Optional[int]
    #: False only for the step-0 snapshot written before the
    #: initialization batch is proposed
    initialized: bool
    payload: bytes
    version: int = CHECKPOINT_VERSION

    def save(self, path: Union[str, Path]) -> str:
        """Atomically write the checkpoint to ``path``."""
        blob = pickle.dumps(
            {"magic": _MAGIC, "checkpoint": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return atomic_write_bytes(path, blob)

    @staticmethod
    def load(path: Union[str, Path]) -> "TuningCheckpoint":
        """Load and validate a checkpoint file.

        Raises :class:`CheckpointError` on anything that is not a
        complete, version-compatible checkpoint — including the torn
        write a crash mid-checkpoint would have produced if writes were
        not atomic.
        """
        path = Path(path)
        try:
            with path.open("rb") as handle:
                data = pickle.load(handle)
        except OSError:
            raise
        except Exception as exc:  # unpickling garbage raises many types
            raise CheckpointError(
                f"{path} is not a readable tuning checkpoint: {exc}"
            ) from exc
        if (
            not isinstance(data, dict)
            or data.get("magic") != _MAGIC
            or not isinstance(data.get("checkpoint"), TuningCheckpoint)
        ):
            raise CheckpointError(
                f"{path} is not a tuning checkpoint file"
            )
        checkpoint: TuningCheckpoint = data["checkpoint"]
        if checkpoint.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path} has checkpoint version {checkpoint.version}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return checkpoint

    def matches(self, tuner: object) -> Optional[str]:
        """Why this checkpoint does not belong to ``tuner`` (None = it does)."""
        name = getattr(tuner, "name", None)
        if name != self.tuner_name:
            return (
                f"checkpoint was written by tuner {self.tuner_name!r}, "
                f"resuming with {name!r}"
            )
        fingerprint = getattr(getattr(tuner, "task", None), "fingerprint", None)
        if fingerprint != self.task_fingerprint:
            return (
                "checkpoint belongs to a different task environment "
                f"({self.task_fingerprint!r} != {fingerprint!r})"
            )
        if getattr(tuner, "seed", None) != self.seed:
            return (
                f"checkpoint was written with seed {self.seed}, "
                f"resuming with seed {getattr(tuner, 'seed', None)}"
            )
        return None


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where and how often :meth:`Tuner.tune` snapshots its state.

    ``every`` counts measured batches between snapshots; the step-0
    snapshot (before the first proposal) is always written so a crash
    inside the very first batch is also resumable.
    """

    path: Union[str, Path]
    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint every must be >= 1")


CheckpointSpec = Union[None, str, Path, CheckpointPolicy]


def as_checkpoint_policy(spec: CheckpointSpec) -> Optional[CheckpointPolicy]:
    """Coerce a user-facing checkpoint spec into a policy (or None)."""
    if spec is None or isinstance(spec, CheckpointPolicy):
        return spec
    return CheckpointPolicy(path=spec)
