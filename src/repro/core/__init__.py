"""The paper's contribution: the advanced active-learning framework.

* :mod:`repro.core.ted` — transductive experimental design (Alg. 1).
* :mod:`repro.core.bted` — batch TED initialization (Alg. 2).
* :mod:`repro.core.bootstrap` — Bootstrap-guided sampling (Alg. 3).
* :mod:`repro.core.bao` — Bootstrap-guided adaptive optimization (Alg. 4).
* :mod:`repro.core.droplet` — coordinate-descent exploitation policy.
* :mod:`repro.core.adaptive` — k-center adaptive-sampling proposal stage.
* :mod:`repro.core.tuner` — tuner base class, records, early stopping.
* :mod:`repro.core.tuners` — the experimental arms: random, grid,
  AutoTVM (XGB+SA baseline), BTED, BTED+BAO, Droplet, and the
  adaptive-sampling / finishing-phase variants (see ``docs/ARMS.md``).
"""

from repro.core.ted import ted_select, rbf_kernel
from repro.core.bted import bted_select
from repro.core.bootstrap import bootstrap_sample, BootstrapEnsemble
from repro.core.bao import BaoOptimizer, BaoSettings
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    TuningCheckpoint,
)
from repro.core.droplet import CoordinateDescent, DropletSettings
from repro.core.events import (
    BatchMeasured,
    BatchProposed,
    CandidatesPruned,
    CheckpointSaved,
    EarlyStopped,
    EventLog,
    ExploitStepped,
    FinishPhaseStarted,
    IncumbentImproved,
    MeasurementFailed,
    MeasurementRetried,
    ScopeWidened,
    SpaceExhausted,
    SpeculationResolved,
    TlogExactHit,
    TuningEvent,
    TuningResumed,
    WarmStarted,
)
from repro.core.tuner import (
    EarlyStopper,
    SpaceSamplingError,
    TrialRecord,
    Tuner,
    TuningResult,
)
from repro.core.tuners.random import RandomTuner
from repro.core.tuners.grid import GridTuner
from repro.core.tuners.ga import GATuner
from repro.core.tuners.autotvm import AutoTVMTuner
from repro.core.tuners.bted import BTEDAdaptiveTuner, BTEDTuner
from repro.core.tuners.btedbao import (
    BTEDBAOAdaptiveTuner,
    BTEDBAODropletTuner,
    BTEDBAOTuner,
)
from repro.core.tuners.droplet import DropletTuner

TUNER_REGISTRY = {
    "random": RandomTuner,
    "grid": GridTuner,
    "ga": GATuner,
    "autotvm": AutoTVMTuner,
    "bted": BTEDTuner,
    "bted+as": BTEDAdaptiveTuner,
    "bted+bao": BTEDBAOTuner,
    "bted+bao+as": BTEDBAOAdaptiveTuner,
    "bted+bao+droplet": BTEDBAODropletTuner,
    "droplet": DropletTuner,
}

#: arms whose surrogate models accept ``refit="incremental"``
INCREMENTAL_REFIT_ARMS = frozenset(
    {
        "autotvm",
        "bted",
        "bted+as",
        "bted+bao",
        "bted+bao+as",
        "bted+bao+droplet",
    }
)


def make_tuner(name: str, task, seed: int = 0, **kwargs):
    """Construct a tuner by registry name ('autotvm', 'bted', 'bted+bao', ...)."""
    key = name.lower()
    if key not in TUNER_REGISTRY:
        raise KeyError(f"unknown tuner {name!r}; available: {sorted(TUNER_REGISTRY)}")
    return TUNER_REGISTRY[key](task, seed=seed, **kwargs)


__all__ = [
    "ted_select",
    "rbf_kernel",
    "bted_select",
    "bootstrap_sample",
    "BootstrapEnsemble",
    "BaoOptimizer",
    "BaoSettings",
    "CoordinateDescent",
    "DropletSettings",
    "Tuner",
    "TrialRecord",
    "TuningResult",
    "EarlyStopper",
    "SpaceSamplingError",
    "TuningEvent",
    "BatchProposed",
    "BatchMeasured",
    "IncumbentImproved",
    "ScopeWidened",
    "EarlyStopped",
    "SpaceExhausted",
    "SpeculationResolved",
    "MeasurementRetried",
    "MeasurementFailed",
    "CheckpointSaved",
    "TuningResumed",
    "WarmStarted",
    "TlogExactHit",
    "ExploitStepped",
    "CandidatesPruned",
    "FinishPhaseStarted",
    "EventLog",
    "TuningCheckpoint",
    "CheckpointPolicy",
    "CheckpointError",
    "RandomTuner",
    "GridTuner",
    "GATuner",
    "AutoTVMTuner",
    "BTEDTuner",
    "BTEDAdaptiveTuner",
    "BTEDBAOTuner",
    "BTEDBAOAdaptiveTuner",
    "BTEDBAODropletTuner",
    "DropletTuner",
    "TUNER_REGISTRY",
    "INCREMENTAL_REFIT_ARMS",
    "make_tuner",
]
