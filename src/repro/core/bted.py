"""Batch transductive experimental design — Algorithm 2 of the paper.

BTED makes TED scale to spaces with tens of millions of configurations:
``B`` batches of ``M`` random candidates are each reduced to ``m``
points by TED; the union (up to ``B * m`` points) is reduced by TED
again to the final ``m``-point initialization set.  Randomness bounds
the kernel computations at ``M x M`` while the batch mechanism enlarges
the random space actually examined (``B * M`` points in total).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.ted import ted_select
from repro.space.space import ConfigSpace
from repro.utils.rng import SeedLike, as_generator, derive_seed


def bted_select(
    space: ConfigSpace,
    m: int = 64,
    mu: float = 0.1,
    batch_candidates: int = 500,
    num_batches: int = 10,
    seed: SeedLike = None,
    ted_method: str = "exact",
) -> List[int]:
    """Select an ``m``-point diverse initialization set from ``space``.

    This is ``BTED(V=D, mu, M=batch_candidates, m, B=num_batches)``.
    The paper's experimental settings (Sec. V-A) are the defaults:
    ``mu=0.1, M=500, m=64, B=10`` — each batch samples 500 random
    configurations, TED keeps 64, the union holds up to 640, and a
    final TED pass returns 64.

    Returns config *indices* into ``space``, deduplicated (batches are
    sampled independently, so their unions may overlap).  ``ted_method``
    selects the TED back-end per batch ("exact" — the default,
    trace-pinned — or the incremental "fast" path; see
    :mod:`repro.core.ted`).
    """
    if m <= 0:
        raise ValueError("m must be positive")
    if batch_candidates < m:
        raise ValueError(
            f"batch_candidates ({batch_candidates}) must be >= m ({m})"
        )
    if num_batches <= 0:
        raise ValueError("num_batches must be positive")
    rng = as_generator(seed)
    root = int(rng.integers(0, 2**62))

    union: dict[int, None] = {}
    for b in range(num_batches):
        batch_seed = derive_seed(root, "bted-batch", b)
        candidates = space.sample(batch_candidates, seed=batch_seed)
        feats = space.feature_matrix(candidates)
        picked = ted_select(feats, m=m, mu=mu, method=ted_method)
        for row in picked:
            union.setdefault(int(candidates[row]), None)

    union_indices = np.fromiter(union.keys(), dtype=np.int64, count=len(union))
    if len(union_indices) <= m:
        return union_indices.tolist()
    union_feats = space.feature_matrix(union_indices)
    final_rows = ted_select(union_feats, m=m, mu=mu, method=ted_method)
    return [int(union_indices[row]) for row in final_rows]
