"""Bootstrap-guided adaptive optimization — Algorithm 4 of the paper.

Each iteration restricts the search to ``C_t``, the neighborhood of the
incumbent configuration with radius ``R`` (Euclidean in knob-index
coordinates), selects the next configuration with Bootstrap-guided
sampling (Alg. 3), measures it, and adapts: when the relative
improvement between the two previous steps,

    r_t = (y*_{t-1} - y*_{t-2}) / y*_{t-1},          (Eq. 1)

drops below the threshold ``eta``, the radius for this step widens to
``tau * R`` — compensating for an unsatisfying local search by looking
farther out.

Two deliberate interpretation choices (documented because the paper's
pseudo-code is ambiguous):

* the neighborhood centers on the *incumbent best* configuration
  (matching the motivation "if a configuration has good deployment
  performance, it is very likely that we can find better configurations
  in its neighborhood"); set ``center="last"`` to center on the most
  recently selected configuration instead;
* Eq. 1 is evaluated as the plain ratio — the ceiling operator printed
  in the paper would collapse it to {0, 1} and make ``eta = 0.05``
  meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Optional, Union

import numpy as np

from repro.core.bootstrap import BootstrapEnsemble, ModelFactory
from repro.learning.transfer import TransferHistory
from repro.space.neighborhood import sample_neighborhood
from repro.space.space import ConfigSpace
from repro.utils.rng import RngPool

#: accepted "already measured" collections: a sorted int64 array (the
#: tuner-maintained fast path) or any set-like of config indices
VisitedSet = Union[AbstractSet[int], np.ndarray]


@dataclass(frozen=True)
class BaoSettings:
    """Hyper-parameters of Alg. 4 (defaults are the paper's, Sec. V-A)."""

    #: improvement threshold eta
    eta: float = 0.05
    #: number of bootstrap resamples Gamma
    gamma: int = 2
    #: radius widening factor tau (> 1)
    tau: float = 1.5
    #: base neighborhood radius R (Euclidean distance in knob indices)
    radius: float = 3.0
    #: how many neighborhood configs to score per step
    neighborhood_size: int = 512
    #: neighborhood center: "incumbent" (best-so-far) or "last" (chosen x*_{t-1})
    center: str = "incumbent"
    #: neighborhood metric: "feature" (performance-local) or "index" (ablation)
    metric: str = "feature"
    #: refit the bootstrap ensemble every k steps (1 = every step, as in Alg. 4)
    refit_interval: int = 1
    #: if True, stagnation keeps compounding the radius (tau^k * R) until
    #: improvement resumes — an extension beyond the paper's one-step widening
    compound_radius: bool = False
    #: acquisition over the ensemble: "sum" (Alg. 3) or "ucb"
    #: (sum + kappa * across-ensemble std — an uncertainty-seeking extension)
    acquisition: str = "sum"
    #: exploration weight for the "ucb" acquisition
    kappa: float = 1.0

    def __post_init__(self) -> None:
        if self.eta < 0:
            raise ValueError("eta must be non-negative")
        if self.gamma < 1:
            raise ValueError("gamma must be >= 1")
        if self.tau <= 1.0:
            raise ValueError("tau must exceed 1")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.neighborhood_size < 1:
            raise ValueError("neighborhood_size must be >= 1")
        if self.center not in ("incumbent", "last"):
            raise ValueError("center must be 'incumbent' or 'last'")
        if self.metric not in ("feature", "index"):
            raise ValueError("metric must be 'feature' or 'index'")
        if self.refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        if self.acquisition not in ("sum", "ucb"):
            raise ValueError("acquisition must be 'sum' or 'ucb'")
        if self.kappa < 0:
            raise ValueError("kappa must be non-negative")
        if self.acquisition == "ucb" and self.gamma < 2:
            raise ValueError("ucb acquisition needs gamma >= 2")


class BaoOptimizer:
    """Stateful per-step proposal engine implementing Alg. 4's loop body.

    The driving tuner owns measurement; this class owns neighborhood
    construction, the bootstrap ensemble, and radius adaptation.  Call
    :meth:`propose` with the current measured state to get the next
    configuration, then :meth:`observe` with its measured score.
    """

    def __init__(
        self,
        space: ConfigSpace,
        settings: BaoSettings = BaoSettings(),
        seed: int = 0,
        model_factory: Optional[ModelFactory] = None,
        transfer: Optional[TransferHistory] = None,
        refit: str = "full",
    ):
        self.space = space
        self.settings = settings
        #: discounted prior measurements mixed into every ensemble refit
        #: (``None`` — the default — keeps the historical cold-fit path)
        self.transfer = transfer
        self._pool = RngPool(seed).child("bao")
        self._ensemble = BootstrapEnsemble(
            gamma=settings.gamma,
            model_factory=model_factory,
            seed=self._pool.seed_for("ensemble"),
            refit=refit,
        )
        self._step = 0
        self._last_selected: Optional[int] = None
        self._best_history: List[float] = []
        self._stagnation = 0
        #: radius used at the most recent proposal (exposed for tests/ablation)
        self.last_radius: float = settings.radius

    # ------------------------------------------------------------------

    @property
    def stagnation(self) -> int:
        """Consecutive steps with relative improvement below ``eta``."""
        return self._stagnation

    def current_radius(self) -> float:
        """Radius for the upcoming step, per the adaptation rule."""
        s = self.settings
        if len(self._best_history) < 2:
            return s.radius
        y1 = self._best_history[-1]
        y2 = self._best_history[-2]
        if y1 <= 0:
            improvement = 0.0
        else:
            improvement = (y1 - y2) / y1
        if improvement >= s.eta:
            self._stagnation = 0
            return s.radius
        self._stagnation += 1
        if s.compound_radius:
            return s.radius * (s.tau ** self._stagnation)
        return s.radius * s.tau

    @staticmethod
    def _filter_visited(
        candidates: np.ndarray, visited: "VisitedSet"
    ) -> np.ndarray:
        """Drop visited candidates, preserving order.

        ``visited`` may be a sorted int64 array (the tuner-maintained
        fast path — one vectorized ``np.isin`` over the batch) or any
        Python set-like (legacy callers).  Both produce the same
        filtered sequence.
        """
        if isinstance(visited, np.ndarray):
            return candidates[~np.isin(candidates, visited)]
        return np.array(
            [c for c in candidates if int(c) not in visited], dtype=np.int64
        )

    def _candidate_scores(
        self,
        measured_features: np.ndarray,
        measured_scores: np.ndarray,
        best_index: int,
        visited: "Optional[VisitedSet]",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Build the neighborhood C_t and score it with the acquisition."""
        if len(measured_scores) == 0:
            raise ValueError("BAO requires a measured initialization set")
        self._step += 1
        settings = self.settings

        if settings.center == "incumbent" or self._last_selected is None:
            center = int(best_index)
        else:
            center = int(self._last_selected)

        radius = self.current_radius()
        self.last_radius = radius
        rng_seed = self._pool.seed_for(f"neighborhood-{self._step}")
        candidates = sample_neighborhood(
            self.space,
            center,
            radius,
            max_points=settings.neighborhood_size,
            seed=rng_seed,
            metric=settings.metric,
        )
        if visited is not None and len(candidates):
            fresh = self._filter_visited(candidates, visited)
            if len(fresh):
                candidates = fresh
        if len(candidates) == 0:
            # degenerate space around the center: fall back to random
            candidates = self.space.sample(
                min(settings.neighborhood_size, len(self.space)),
                seed=rng_seed,
            )

        if (
            not self._ensemble.is_fitted
            or (self._step - 1) % settings.refit_interval == 0
        ):
            self._fit_ensemble(measured_features, measured_scores)

        # one batched pass over the whole candidate scope: member
        # predictions are computed once and shared between the summed
        # acquisition and (for "ucb") the uncertainty term
        feats = self.space.feature_matrix(candidates)
        scores, std = self._ensemble.predict_stats(
            feats, return_std=settings.acquisition == "ucb"
        )
        if settings.acquisition == "ucb":
            scores = scores + settings.kappa * settings.gamma * std
        return candidates, scores

    def _fit_ensemble(
        self, measured_features: np.ndarray, measured_scores: np.ndarray
    ) -> None:
        """Refit the bootstrap ensemble on the measured set.

        With a :class:`TransferHistory` attached, prior-task rows (same
        feature dimension, normalized targets, discounted weight) are
        mixed in, so the acquisition starts informed instead of cold.
        Without one, this is exactly the historical unweighted fit.
        """
        if self.transfer is not None and len(self.transfer):
            Xm, ym, wm = self.transfer.training_data(
                self.space.feature_dim,
                current_features=measured_features,
                current_targets=measured_scores,
            )
            if len(ym) > len(measured_scores):
                self._ensemble.fit(Xm, ym, sample_weight=wm)
                return
        self._ensemble.fit(measured_features, measured_scores)

    def propose(
        self,
        measured_features: np.ndarray,
        measured_scores: np.ndarray,
        best_index: int,
        visited: Optional[VisitedSet] = None,
    ) -> int:
        """Select x*_t: the acquisition argmax over the neighborhood.

        ``best_index`` is the incumbent; ``visited`` configs (a set, or
        a sorted index array for the vectorized filter) are excluded
        from the candidate set when possible (the neighborhood may be
        fully explored, in which case revisits are allowed rather than
        stalling).
        """
        candidates, scores = self._candidate_scores(
            measured_features, measured_scores, best_index, visited
        )
        chosen = int(candidates[int(np.argmax(scores))])
        self._last_selected = chosen
        return chosen

    def propose_batch(
        self,
        measured_features: np.ndarray,
        measured_scores: np.ndarray,
        best_index: int,
        k: int,
        visited: Optional[VisitedSet] = None,
    ) -> List[int]:
        """Batch extension: the top-``k`` acquisition candidates of C_t.

        Enables parallel measurement (k configurations deployed per
        ensemble refit) — the batch mechanism the paper highlights for
        BTED, applied to the iterative stage.  ``k=1`` reduces exactly
        to :meth:`propose`.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        candidates, scores = self._candidate_scores(
            measured_features, measured_scores, best_index, visited
        )
        order = np.argsort(-scores, kind="stable")[:k]
        chosen = [int(candidates[i]) for i in order]
        self._last_selected = chosen[0]
        return chosen

    def observe(self, best_gflops: float) -> None:
        """Record the best-so-far value after measuring the proposal."""
        self._best_history.append(float(best_gflops))
