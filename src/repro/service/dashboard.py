"""The service's single-page dashboard (no build step, no assets).

One self-contained HTML document served at ``/``: a job browser over
``/api/jobs``, a per-job detail pane (state, per-task results, the
best-curve drawn from ``/api/jobs/<id>/curve`` on a plain canvas), and
fleet utilization bars from ``/api/fleet``.  Everything renders from
the same JSON endpoints scripts and tests use — the dashboard is a
client of the public API, never a side channel.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro tuning service</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 1.5rem;
         background: #fafafa; color: #222; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; width: 100%; background: #fff; }
  th, td { border: 1px solid #ddd; padding: .35rem .6rem;
           font-size: .85rem; text-align: left; }
  th { background: #f0f0f0; }
  tr.sel { background: #eef6ff; }
  .state { padding: .1rem .45rem; border-radius: .6rem;
           font-size: .75rem; color: #fff; }
  .state.queued { background: #888; } .state.running { background: #0a7; }
  .state.done { background: #27c; } .state.failed { background: #c33; }
  .state.cancelled { background: #b80; }
  .bar { background: #27c; height: .8rem; }
  .barbox { background: #e4e4e4; width: 16rem; display: inline-block;
            vertical-align: middle; }
  #curve { border: 1px solid #ddd; background: #fff; }
  .muted { color: #777; font-size: .8rem; }
</style>
</head>
<body>
<h1>repro tuning service</h1>
<p class="muted">jobs, live best curves, and fleet utilization —
refreshed every 2&nbsp;s from <code>/api/*</code>.</p>

<h2>Jobs</h2>
<table id="jobs"><thead><tr>
  <th>job</th><th>tenant</th><th>model</th><th>arm</th><th>prio</th>
  <th>state</th><th>tasks</th><th>best GFLOPS</th><th>error</th>
</tr></thead><tbody></tbody></table>

<h2>Job detail <span id="which" class="muted"></span></h2>
<canvas id="curve" width="640" height="180"></canvas>
<table id="tasks"><thead><tr>
  <th>task</th><th>tuner</th><th>measurements</th><th>best GFLOPS</th>
</tr></thead><tbody></tbody></table>

<h2>Fleet utilization</h2>
<div id="fleet"></div>

<script>
let selected = null;
const fmt = (x) => (x === null || x === undefined) ? "" : x;

async function getJSON(url) {
  const r = await fetch(url);
  if (!r.ok) throw new Error(url + " -> " + r.status);
  return r.json();
}

async function refreshJobs() {
  const data = await getJSON("/api/jobs");
  const body = document.querySelector("#jobs tbody");
  body.innerHTML = "";
  for (const job of data.jobs.slice().reverse()) {
    const tr = document.createElement("tr");
    if (job.job_id === selected) tr.className = "sel";
    tr.innerHTML =
      `<td>${job.job_id}</td><td>${job.tenant}</td>` +
      `<td>${job.spec.model}</td><td>${job.spec.arm}</td>` +
      `<td>${job.priority}</td>` +
      `<td><span class="state ${job.state}">${job.state}</span></td>` +
      `<td>${fmt(job.tasks_done)}</td>` +
      `<td>${fmt(job.best_gflops)}</td><td>${fmt(job.error)}</td>`;
    tr.onclick = () => { selected = job.job_id; refreshDetail(); };
    body.appendChild(tr);
  }
  if (!selected && data.jobs.length) {
    selected = data.jobs[data.jobs.length - 1].job_id;
  }
}

function drawCurve(canvas, curves) {
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const all = Object.values(curves).flat();
  if (!all.length) return;
  const maxY = Math.max(...all), maxX =
    Math.max(...Object.values(curves).map(c => c.length));
  const colors = ["#27c", "#0a7", "#c33", "#b80", "#93c", "#088"];
  let i = 0;
  for (const [task, curve] of Object.entries(curves)) {
    ctx.strokeStyle = colors[i++ % colors.length];
    ctx.beginPath();
    curve.forEach((y, x) => {
      const px = 10 + (canvas.width - 20) * x / Math.max(1, maxX - 1);
      const py = canvas.height - 10 -
        (canvas.height - 20) * y / Math.max(1e-9, maxY);
      x === 0 ? ctx.moveTo(px, py) : ctx.lineTo(px, py);
    });
    ctx.stroke();
  }
}

async function refreshDetail() {
  if (!selected) return;
  document.getElementById("which").textContent = "— " + selected;
  const detail = await getJSON(`/api/jobs/${selected}`);
  const body = document.querySelector("#tasks tbody");
  body.innerHTML = "";
  for (const t of detail.tasks) {
    const tr = document.createElement("tr");
    tr.innerHTML = `<td>task-${t.task_id}</td><td>${t.tuner}</td>` +
      `<td>${t.num_measurements}</td><td>${t.best_gflops.toFixed(1)}</td>`;
    body.appendChild(tr);
  }
  const curve = await getJSON(`/api/jobs/${selected}/curve`);
  drawCurve(document.getElementById("curve"), curve.curves);
}

async function refreshFleet() {
  const data = await getJSON("/api/fleet");
  const div = document.getElementById("fleet");
  div.innerHTML =
    `<p class="muted">devices: ${data.devices} · queue depth: ` +
    `${data.queue_depth} · running: ${fmt(data.current_job) || "—"}</p>`;
  for (const [cls, row] of Object.entries(data.by_class)) {
    const pct = Math.round(row.utilization * 100);
    div.innerHTML +=
      `<div>${cls}: <span class="barbox">` +
      `<span class="bar" style="width:${pct}%;display:block"></span>` +
      `</span> ${pct}% · ${row.measurements} measurements</div>`;
  }
}

async function tick() {
  try { await refreshJobs(); await refreshDetail(); await refreshFleet(); }
  catch (e) { console.error(e); }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
