"""Tuning-as-a-service: job API, persistent store, fleet queue.

The service layer turns the library into a deployable system: tuning
jobs arrive over an HTTP/JSON API, persist in a sqlite job database,
queue with per-tenant quotas and priorities, and execute on the
existing fleet scheduler with checkpoint/resume — a SIGKILLed service
restarts and finishes every in-flight job bit-identically to an
uninterrupted run.  See ``docs/SERVICE.md`` for the API reference,
the quota/priority semantics, and the crash-recovery contract.
"""

from repro.service.api import TuningService
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransitionError,
    Job,
    JobNotFoundError,
    JobSpec,
    QuotaExceededError,
    ServiceError,
    ValidationError,
)
from repro.service.queue import DEFAULT_QUOTA, JobQueue
from repro.service.runner import JobRunner, ProgressFeed
from repro.service.store import (
    SCHEMA_VERSION,
    JobStore,
    JobStoreError,
    SchemaVersionError,
    aggregate_utilization,
)

__all__ = [
    "DEFAULT_QUOTA",
    "JOB_STATES",
    "SCHEMA_VERSION",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "InvalidTransitionError",
    "Job",
    "JobNotFoundError",
    "JobQueue",
    "JobRunner",
    "JobSpec",
    "JobStore",
    "JobStoreError",
    "ProgressFeed",
    "QuotaExceededError",
    "SchemaVersionError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "TuningService",
    "ValidationError",
    "aggregate_utilization",
]
