"""Stdlib HTTP client for the tuning service.

:class:`ServiceClient` wraps the JSON endpoints with plain
:mod:`urllib` — the same dependency budget as the server — so the CLI
(``repro submit`` / ``repro jobs``), the crash-recovery smoke script,
and the tests all drive the service through one audited code path.

Structured rejections (HTTP 4xx/5xx with an ``{"error": ...}`` body)
raise :class:`ServiceClientError` carrying the decoded body, so
callers branch on ``exc.code`` (``"quota_exceeded"``, ...) instead of
parsing prose.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServiceClientError(RuntimeError):
    """An HTTP request the service answered with a structured error."""

    def __init__(self, status: int, body: Dict[str, Any]):
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('message', 'unknown error')}"
        )
        self.status = status
        self.body = body
        self.code = error.get("code", "unknown")


class ServiceClient:
    """Talk to one tuning service at ``base_url``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": {"code": "unknown", "message": str(exc)}}
            raise ServiceClientError(exc.code, body) from exc

    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/api/health")

    def fleet(self) -> Dict[str, Any]:
        return self._request("GET", "/api/fleet")

    def submit(self, **spec: Any) -> Dict[str, Any]:
        """Submit a job; returns the persisted job row."""
        return self._request("POST", "/api/jobs", payload=spec)["job"]

    def jobs(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
    ) -> list:
        query = []
        if tenant:
            query.append(f"tenant={tenant}")
        if state:
            query.append(f"state={state}")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self._request("GET", f"/api/jobs{suffix}")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/api/jobs/{job_id}")

    def progress(self, job_id: str, since: int = 0) -> Dict[str, Any]:
        return self._request(
            "GET", f"/api/jobs/{job_id}/progress?since={since}"
        )

    def records(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/api/jobs/{job_id}/records")

    def curve(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/api/jobs/{job_id}/curve")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")["job"]

    # ------------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
        on_progress=None,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        ``on_progress(point)`` receives each new progress point as it
        streams in (the CLI uses this for live best-curve printing).
        """
        deadline = time.monotonic() + timeout_s
        cursor = 0
        while True:
            progress = self.progress(job_id, since=cursor)
            cursor = progress["next"]
            if on_progress is not None:
                for point in progress["points"]:
                    on_progress(point)
            if progress["state"] in ("done", "failed", "cancelled"):
                return self.job(job_id)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{job_id} still {progress['state']!r} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(poll_s)
