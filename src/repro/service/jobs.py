"""Job model of the tuning service: specs, states, structured errors.

A *job* is one tuning request — "tune model M with arm A under budget
N" — submitted by a tenant and executed asynchronously on the service
fleet.  The lifecycle is a small explicit state machine::

    queued ──> running ──> done
       │           └─────> failed
       └──> cancelled

Transitions outside :data:`VALID_TRANSITIONS` are rejected at the
store layer, so a job can never be double-run or resurrected: the
``queued -> running`` edge is claimed atomically (compare-and-swap on
the state column) and a crashed service finds its ``running`` jobs
again on restart and *resumes* them from their checkpoints instead of
re-queueing them.

Errors that cross the HTTP boundary are structured
(:class:`ServiceError` and subclasses): every rejection carries a
machine-readable ``code`` plus the fields a client needs to react
(tenant, quota, active count, ...), not just prose.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

#: every state a job can be in
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: terminal states — no edge leaves them
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: the legal state machine edges (``from -> to``)
VALID_TRANSITIONS = frozenset(
    {
        ("queued", "running"),
        ("queued", "cancelled"),
        ("running", "done"),
        ("running", "failed"),
    }
)

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ServiceError(Exception):
    """Base class of structured service rejections.

    ``code`` is the machine-readable error identifier;
    ``http_status`` the status an HTTP front end should answer with;
    ``details`` the structured payload (merged into the JSON body).
    """

    code = "service_error"
    http_status = 500

    def __init__(self, message: str, **details: Any):
        super().__init__(message)
        self.details = details

    def to_dict(self) -> Dict[str, Any]:
        """JSON body of this rejection (the ``error`` envelope)."""
        body: Dict[str, Any] = {"code": self.code, "message": str(self)}
        body.update(self.details)
        return {"error": body}


class ValidationError(ServiceError):
    """A submitted job spec is malformed."""

    code = "invalid_job"
    http_status = 400


class QuotaExceededError(ServiceError):
    """The tenant already has its full quota of active jobs."""

    code = "quota_exceeded"
    http_status = 429


class JobNotFoundError(ServiceError):
    """No job with the requested id exists."""

    code = "job_not_found"
    http_status = 404


class InvalidTransitionError(ServiceError):
    """The requested state change is not a legal state-machine edge."""

    code = "invalid_transition"
    http_status = 409


@dataclass(frozen=True)
class JobSpec:
    """What to tune: the validated, immutable submission payload.

    The spec pins everything that determines the tuning outcome —
    model, arm, budget, seeds — so re-running the same spec reproduces
    the same records (the service's crash-recovery contract builds on
    this).  ``devices`` optionally overrides the service fleet for
    this job; ``max_tasks`` truncates the task list (the same knob the
    experiment runners use for scaled-down studies).
    """

    model: str
    arm: str
    n_trial: int = 64
    early_stopping: Optional[int] = None
    trial_seed: int = 0
    env_seed: int = 2021
    tenant: str = "default"
    priority: int = 0
    devices: Optional[str] = None
    max_tasks: Optional[int] = None
    tuner_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.core import TUNER_REGISTRY
        from repro.nn.zoo import MODEL_BUILDERS

        if self.model not in MODEL_BUILDERS:
            raise ValidationError(
                f"unknown model {self.model!r}",
                field="model",
                choices=sorted(MODEL_BUILDERS),
            )
        if self.arm.lower() not in TUNER_REGISTRY:
            raise ValidationError(
                f"unknown arm {self.arm!r}",
                field="arm",
                choices=sorted(TUNER_REGISTRY),
            )
        if not isinstance(self.n_trial, int) or self.n_trial < 1:
            raise ValidationError(
                "n_trial must be a positive integer", field="n_trial"
            )
        if self.early_stopping is not None and (
            not isinstance(self.early_stopping, int)
            or self.early_stopping < 1
        ):
            raise ValidationError(
                "early_stopping must be a positive integer or null",
                field="early_stopping",
            )
        for name in ("trial_seed", "env_seed", "priority"):
            if not isinstance(getattr(self, name), int):
                raise ValidationError(
                    f"{name} must be an integer", field=name
                )
        if not isinstance(self.tenant, str) or not _TENANT_RE.match(
            self.tenant
        ):
            raise ValidationError(
                "tenant must match [A-Za-z0-9][A-Za-z0-9._-]{0,63}",
                field="tenant",
            )
        if self.max_tasks is not None and (
            not isinstance(self.max_tasks, int) or self.max_tasks < 1
        ):
            raise ValidationError(
                "max_tasks must be a positive integer or null",
                field="max_tasks",
            )
        if self.devices is not None:
            from repro.fleet.devices import parse_fleet

            try:
                parse_fleet(self.devices)
            except (ValueError, KeyError) as exc:
                raise ValidationError(
                    f"bad devices spec {self.devices!r}: {exc}",
                    field="devices",
                ) from exc
        if not isinstance(self.tuner_kwargs, dict) or any(
            not isinstance(k, str) for k in self.tuner_kwargs
        ):
            raise ValidationError(
                "tuner_kwargs must be an object with string keys",
                field="tuner_kwargs",
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Build a spec from an untrusted JSON payload.

        Unknown keys are a :class:`ValidationError` (a misspelled
        option must not be silently ignored on a paid tuning budget).
        """
        if not isinstance(data, dict):
            raise ValidationError("job spec must be a JSON object")
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(
                f"unknown job spec field(s): {', '.join(unknown)}",
                fields=unknown,
                known=sorted(known),
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValidationError(f"malformed job spec: {exc}") from exc


@dataclass
class Job:
    """One job as persisted: its spec plus lifecycle bookkeeping.

    ``seq`` is the monotonically increasing submission position (the
    FIFO tiebreaker within a priority level); wall-clock timestamps
    are service metadata and never feed into tuning decisions.
    """

    job_id: str
    seq: int
    spec: JobSpec
    state: str = "queued"
    error: str = ""
    attempts: int = 0
    created_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None

    @property
    def active(self) -> bool:
        """True while the job holds quota (queued or running)."""
        return self.state not in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (the ``/api/jobs`` row shape)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "error": self.error,
            "attempts": self.attempts,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "spec": self.spec.to_dict(),
        }


def check_transition(from_state: str, to_state: str) -> None:
    """Raise :class:`InvalidTransitionError` for an illegal edge."""
    if (from_state, to_state) not in VALID_TRANSITIONS:
        raise InvalidTransitionError(
            f"cannot move a job from {from_state!r} to {to_state!r}",
            from_state=from_state,
            to_state=to_state,
        )


def valid_sources(to_state: str) -> Tuple[str, ...]:
    """Every state with a legal edge into ``to_state``."""
    return tuple(
        src for src, dst in sorted(VALID_TRANSITIONS) if dst == to_state
    )
