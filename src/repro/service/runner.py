"""Job execution: drain the queue onto the fleet, checkpoint, recover.

:class:`JobRunner` is the single worker loop of the tuning service.
It claims jobs from the :class:`~repro.service.queue.JobQueue` (one
at a time — priority order therefore *is* execution order) and runs
each through the existing
:meth:`~repro.pipeline.compiler.DeploymentCompiler.tune` machinery on
the service fleet, with three service-grade guarantees layered on
top:

* **Checkpointed execution**: every job tunes under its own
  checkpoint directory (``<data>/jobs/<job_id>/``), reusing the
  per-task/per-device checkpoint layout of the compiler, so nothing
  about the tuning loop had to change to become crash-safe.
* **Crash recovery**: on startup the runner finds jobs a previous
  service life left ``running`` and re-executes them with
  ``resume=True``.  Home-device identity and the checkpoint/resume
  contract make the resumed records bit-identical to an
  uninterrupted run — a SIGKILLed service finishes every in-flight
  job as if nothing happened.
* **Progress streaming**: a :class:`ProgressFeed` per job taps the
  existing :class:`~repro.core.events.TuningEvent` stream (via
  :class:`~repro.obs.TuningObserver` subclasses) and buffers
  cursor-addressable best-curve points plus per-task
  :class:`~repro.obs.RunSummary` snapshots for the polling endpoint.

Results are durable the moment a job finishes: per-task records and
summaries land in the store's ``tasks``/``records`` tables (idempotent
upserts, so resume re-collection is safe), the fleet scheduling
report is attached to the job row, and — when the service runs with a
tuning log — finished tasks contribute to the shared
:class:`~repro.tlog.TuningLogDB` so later jobs with the same task
signatures are served at zero measurement cost.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs import RunObservation, TuningObserver
from repro.service.jobs import Job
from repro.service.queue import JobQueue
from repro.service.store import JobStore
from repro.utils.log import get_logger

logger = get_logger("service.runner")


class ProgressFeed:
    """Cursor-addressable, thread-safe progress buffer of one job.

    Points are appended by tuning worker threads and drained by HTTP
    handler threads: ``since(cursor)`` returns every point past the
    cursor plus the next cursor, so a poll loop never misses or
    re-reads an update.  Task summaries are keyed snapshots (latest
    wins) — the "RunSummary delta" half of the progress payload.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._points: List[Dict[str, Any]] = []
        self._summaries: Dict[str, Dict[str, Any]] = {}

    def push(self, **point: Any) -> None:
        with self._lock:
            point["n"] = len(self._points)
            self._points.append(point)

    def update_summary(self, task_key: str, summary: Dict[str, Any]) -> None:
        with self._lock:
            self._summaries[task_key] = summary

    def since(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        cursor = max(0, int(cursor))
        with self._lock:
            return list(self._points[cursor:]), len(self._points)

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {k: dict(v) for k, v in self._summaries.items()}


class _FeedObserver(TuningObserver):
    """A task observer that also streams progress into a feed.

    Extends the stock observer (metrics/trace stay disabled — the
    deterministic summary is all the service needs) with a tap on the
    event stream: each measured batch pushes one best-curve point and
    refreshes the task's summary snapshot.  The tap only *reads* the
    observer state the superclass already maintains, so checkpointed
    observer state — and therefore resume bit-identity — is untouched.
    """

    def __init__(self, feed: ProgressFeed, task_key: str):
        super().__init__(enable_metrics=False, enable_trace=False)
        self._feed = feed
        self._task_key = task_key

    def __call__(self, tuner, event) -> None:
        super().__call__(tuner, event)
        kind = event.kind
        if kind == "batch_measured":
            summary = self.summary()
            self._feed.push(
                kind="batch",
                task=self._task_key,
                step=int(event.step),
                best_gflops=round(float(summary.best_gflops), 6),
            )
            self._feed.update_summary(
                self._task_key, summary.deterministic_dict()
            )
        elif kind in ("tuning_resumed", "tlog_exact_hit"):
            self._feed.push(kind=kind, task=self._task_key,
                            step=int(event.step))


class _FeedObservation(RunObservation):
    """A :class:`RunObservation` whose observers stream into a feed."""

    def __init__(self, feed: ProgressFeed):
        super().__init__(enable_metrics=False, enable_trace=False)
        self._feed = feed

    def observer(self, key: str) -> TuningObserver:
        obs = self._observers.get(key)
        if obs is None:
            obs = self._observers[key] = _FeedObserver(self._feed, key)
        return obs


class JobRunner:
    """The service's worker loop: claim, execute, persist, recover."""

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        data_dir: Union[str, Path],
        devices: str = "gtx1080ti,gtx1080ti",
        fleet_jobs: Optional[int] = None,
        tlog: bool = True,
        warm_start: bool = False,
        pipeline: bool = False,
        poll_interval_s: float = 0.05,
    ):
        self.store = store
        self.queue = queue
        self.data_dir = Path(data_dir)
        self.devices = devices
        self.fleet_jobs = fleet_jobs
        self.tlog = tlog
        self.warm_start = warm_start
        self.pipeline = pipeline
        self.poll_interval_s = poll_interval_s
        self._feeds: Dict[str, ProgressFeed] = {}
        self._feeds_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._current_job: Optional[str] = None

    # ------------------------------------------------------------------

    def feed(self, job_id: str) -> ProgressFeed:
        """The live progress feed of one job (created on demand)."""
        with self._feeds_lock:
            feed = self._feeds.get(job_id)
            if feed is None:
                feed = self._feeds[job_id] = ProgressFeed()
            return feed

    @property
    def current_job(self) -> Optional[str]:
        """The job id being executed right now (``None`` when idle)."""
        return self._current_job

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.data_dir / "jobs" / job_id

    def tlog_dir(self) -> Optional[Path]:
        return (self.data_dir / "tlog") if self.tlog else None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker thread (recovery runs first)."""
        if self._thread is not None:
            raise RuntimeError("runner already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run_forever, name="service-runner", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Ask the loop to exit after the current job and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def run_forever(self) -> None:
        """Recover interrupted jobs, then drain the queue until stopped."""
        self.recover()
        while not self._stop.is_set():
            job = self.queue.claim_next()
            if job is None:
                self._stop.wait(self.poll_interval_s)
                continue
            self._run_job(job, resume=False)

    def recover(self) -> int:
        """Resume every job a previous service life left running.

        Their checkpoint directories carry per-task/per-device state;
        re-running with ``resume=True`` completes them bit-identically
        to an uninterrupted run.  Returns how many jobs were resumed.
        """
        interrupted = self.store.running_jobs()
        for job in interrupted:
            logger.info(
                "recovering %s (attempt %d) from %s",
                job.job_id, job.attempts + 1,
                self.checkpoint_dir(job.job_id),
            )
            self.feed(job.job_id).push(kind="recovered")
            if self._stop.is_set():
                break
            self.store.record_attempt(job.job_id)
            self._run_job(job, resume=True)
        return len(interrupted)

    # ------------------------------------------------------------------

    def _run_job(self, job: Job, resume: bool) -> None:
        """Execute one claimed job and settle its terminal state."""
        self._current_job = job.job_id
        try:
            self._execute(job, resume=resume)
        except Exception as exc:  # noqa: BLE001 - settled, not hidden
            logger.exception("%s failed", job.job_id)
            self.store.transition(job.job_id, "failed", error=str(exc))
            self.feed(job.job_id).push(kind="failed", error=str(exc))
        else:
            self.store.transition(job.job_id, "done")
            self.feed(job.job_id).push(kind="done")
        finally:
            self._current_job = None

    def _execute(self, job: Job, resume: bool) -> None:
        from repro.fleet.reporting import fleet_report_dict
        from repro.nn.zoo import build_model
        from repro.pipeline.compiler import DeploymentCompiler

        spec = job.spec
        graph = build_model(spec.model)
        compiler = DeploymentCompiler(graph, env_seed=spec.env_seed)
        if spec.max_tasks is not None:
            compiler.tasks = compiler.tasks[: spec.max_tasks]
        feed = self.feed(job.job_id)
        observation = _FeedObservation(feed)
        tlog_dir = self.tlog_dir()

        def collect(task_spec, result):
            summary = observation.observer(
                f"task-{task_spec.task_id:03d}"
            ).summary()
            self.store.add_task_result(
                job.job_id, task_spec.task_id, result,
                summary=summary.deterministic_dict(),
            )
            feed.push(
                kind="task_done",
                task_id=task_spec.task_id,
                best_gflops=round(float(result.best_gflops), 6),
                measurements=result.num_measurements,
            )

        devices = spec.devices or self.devices
        compiled = compiler.tune(
            spec.arm,
            n_trial=spec.n_trial,
            early_stopping=spec.early_stopping,
            trial_seed=spec.trial_seed,
            tuner_kwargs=dict(spec.tuner_kwargs),
            progress=collect,
            checkpoint_dir=self.checkpoint_dir(job.job_id),
            resume=resume,
            observation=observation,
            fleet=devices,
            fleet_jobs=self.fleet_jobs,
            tlog=str(tlog_dir) if tlog_dir is not None else None,
            warm_start=self.warm_start,
            pipeline=self.pipeline,
        )
        if compiled.fleet is not None:
            measurements = {
                key: res.num_measurements
                for key, res in compiled.fleet.results.items()
            }
            self.store.set_fleet_report(
                job.job_id, fleet_report_dict(compiled.fleet, measurements)
            )
        logger.info(
            "%s finished: %d task(s), tlog %s",
            job.job_id, len(compiler.tasks), compiled.tlog_counts(),
        )
