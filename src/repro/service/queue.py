"""Admission control: per-tenant quotas and priority ordering.

:class:`JobQueue` is the thin policy layer between the HTTP API and
the :class:`~repro.service.store.JobStore`.  The store *is* the queue
(state ``queued`` ordered by priority, then submission sequence — so
the queue survives restarts for free); this layer decides who may
join it:

* **Quotas** bound each tenant's *active* jobs (queued + running).
  An over-quota submit is rejected with a structured
  :class:`~repro.service.jobs.QuotaExceededError` carrying the
  tenant, its limit, and its current active count — admission
  control, not silent queue growth, is what keeps one tenant from
  starving the fleet ("millions of users" implies some of them
  submit loops).
* **Priorities** are plain integers (higher first; FIFO within a
  level).  A higher-priority job submitted later is dequeued first —
  deterministic with a single runner.

The admission check and the insert run under the store's lock via
:meth:`JobStore.submit`, so a tenant cannot race itself past its
quota from concurrent HTTP handler threads.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.service.jobs import Job, JobSpec, QuotaExceededError
from repro.service.store import JobStore
from repro.utils.log import get_logger

logger = get_logger("service.queue")

#: active jobs a tenant may hold unless configured otherwise
DEFAULT_QUOTA = 8


class JobQueue:
    """Quota-checked, priority-ordered admission over a job store."""

    def __init__(
        self,
        store: JobStore,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: int = DEFAULT_QUOTA,
    ):
        if default_quota < 1:
            raise ValueError("default_quota must be >= 1")
        for tenant, limit in (quotas or {}).items():
            if limit < 0:
                raise ValueError(
                    f"quota for tenant {tenant!r} must be >= 0"
                )
        self.store = store
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        # serializes the check-then-insert of concurrent submits
        self._admit_lock = threading.Lock()

    def quota_for(self, tenant: str) -> int:
        """The active-job limit for one tenant."""
        return self.quotas.get(tenant, self.default_quota)

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job, or raise a structured quota rejection."""
        limit = self.quota_for(spec.tenant)
        with self._admit_lock:
            active = self.store.active_count(spec.tenant)
            if active >= limit:
                raise QuotaExceededError(
                    f"tenant {spec.tenant!r} already has {active} active "
                    f"job(s); quota is {limit}",
                    tenant=spec.tenant,
                    limit=limit,
                    active=active,
                )
            return self.store.submit(spec)

    def claim_next(self) -> Optional[Job]:
        """Dequeue the next job: highest priority, FIFO within it."""
        return self.store.claim_next()

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running jobs must finish or fail).

        Raises :class:`~repro.service.jobs.InvalidTransitionError`
        when the job already left the queue — the caller learns the
        actual state from the structured error instead of a silent
        no-op on a job that is already consuming fleet time.
        """
        job = self.store.transition(job_id, "cancelled")
        logger.info("cancelled %s", job_id)
        return job

    def depth(self) -> int:
        """Jobs currently waiting in the queue."""
        return self.store.counts_by_state().get("queued", 0)
