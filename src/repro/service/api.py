"""HTTP/JSON surface of the tuning service (stdlib only).

:class:`TuningService` composes the whole deployable system — a
:class:`~repro.service.store.JobStore`, a quota-checked
:class:`~repro.service.queue.JobQueue`, a fleet-draining
:class:`~repro.service.runner.JobRunner`, and a
:class:`~http.server.ThreadingHTTPServer` — behind one ``start()`` /
``stop()`` pair.  No framework: handlers are a routing table over
``BaseHTTPRequestHandler``, which keeps the service importable
anywhere the library runs.

Endpoints (all JSON unless noted)::

    GET  /                      dashboard (HTML)
    GET  /api/health            liveness + job counts by state
    GET  /api/fleet             fleet spec, queue depth, utilization
    POST /api/jobs              submit a job (JobSpec JSON body)
    GET  /api/jobs              list jobs (?tenant=&state=)
    GET  /api/jobs/<id>         job detail + per-task results
    GET  /api/jobs/<id>/progress?since=N   cursor-polled progress:
                                new best-curve points + RunSummary
                                snapshots per task
    GET  /api/jobs/<id>/records final measurement records
    GET  /api/jobs/<id>/curve   best-so-far curve per task (JSON feed)
    POST /api/jobs/<id>/cancel  cancel a queued job

Every rejection is a structured body ``{"error": {"code": ..., ...}}``
(see :class:`~repro.service.jobs.ServiceError`), with the HTTP status
the error class dictates — 400 for malformed specs, 404 for unknown
jobs, 409 for illegal transitions, 429 for quota rejections.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.service.dashboard import DASHBOARD_HTML
from repro.service.jobs import (
    JobNotFoundError,
    JobSpec,
    ServiceError,
    ValidationError,
)
from repro.service.queue import JobQueue
from repro.service.runner import JobRunner
from repro.service.store import JobStore, aggregate_utilization
from repro.utils.log import get_logger

logger = get_logger("service.api")

#: largest accepted request body (a JobSpec is tiny; anything bigger
#: is either a mistake or a memory-exhaustion attempt)
MAX_BODY_BYTES = 64 * 1024


class TuningService:
    """The long-running tuning service: store + queue + runner + HTTP.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after construction) — the in-process test harness and parallel CI
    both rely on this.  ``start_runner=False`` leaves jobs queued so
    admission/priority behaviour can be observed without execution.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        devices: str = "gtx1080ti,gtx1080ti",
        fleet_jobs: Optional[int] = None,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: int = 8,
        tlog: bool = True,
        warm_start: bool = False,
        pipeline: bool = False,
        start_runner: bool = True,
    ):
        from repro.fleet.devices import parse_fleet

        parse_fleet(devices)  # fail fast on a bad service fleet spec
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(self.data_dir / "jobs.sqlite")
        self.queue = JobQueue(
            self.store, quotas=quotas, default_quota=default_quota
        )
        self.runner = JobRunner(
            self.store,
            self.queue,
            self.data_dir,
            devices=devices,
            fleet_jobs=fleet_jobs,
            tlog=tlog,
            warm_start=warm_start,
            pipeline=pipeline,
        )
        self.devices = devices
        self._start_runner = start_runner
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._server_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TuningService":
        """Start the runner (recovery first) and the HTTP listener."""
        if self._start_runner:
            self.runner.start()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._server_thread.start()
        logger.info("tuning service listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop accepting requests, finish the current job, close up."""
        self._server.shutdown()
        self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10.0)
            self._server_thread = None
        self.runner.stop()
        self.store.close()

    def __enter__(self) -> "TuningService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request-level operations (HTTP-agnostic; the handler maps them)

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        spec = JobSpec.from_dict(payload)
        job = self.queue.submit(spec)
        return {"job": job.to_dict()}

    def job_detail(self, job_id: str) -> Dict[str, Any]:
        job = self.store.get(job_id)
        tasks = self.store.tasks_for(job_id)
        body = job.to_dict()
        body["tasks"] = tasks
        body["tasks_done"] = len(tasks)
        body["best_gflops"] = round(
            max((t["best_gflops"] for t in tasks), default=0.0), 6
        )
        report = self.store.fleet_report(job_id)
        if report is not None:
            body["fleet_report"] = report
        return body

    def job_rows(
        self, tenant: Optional[str], state: Optional[str]
    ) -> Dict[str, Any]:
        jobs = []
        for job in self.store.list_jobs(tenant=tenant, state=state):
            row = job.to_dict()
            tasks = self.store.tasks_for(job.job_id)
            row["tasks_done"] = len(tasks)
            row["best_gflops"] = round(
                max((t["best_gflops"] for t in tasks), default=0.0), 6
            )
            jobs.append(row)
        return {"jobs": jobs}

    def progress(self, job_id: str, since: int) -> Dict[str, Any]:
        job = self.store.get(job_id)  # 404 for unknown ids
        feed = self.runner.feed(job_id)
        points, cursor = feed.since(since)
        return {
            "job_id": job_id,
            "state": job.state,
            "since": since,
            "next": cursor,
            "points": points,
            "summaries": feed.summaries(),
        }

    def records(self, job_id: str) -> Dict[str, Any]:
        job = self.store.get(job_id)
        return {
            "job_id": job_id,
            "state": job.state,
            "records": self.store.records_for(job_id),
        }

    def curve(self, job_id: str) -> Dict[str, Any]:
        """Best-so-far GFLOPS per task, derived from stored records."""
        self.store.get(job_id)
        curves: Dict[str, list] = {}
        for rec in self.store.records_for(job_id):
            key = f"task-{rec['task_id']:03d}"
            series = curves.setdefault(key, [])
            prev = series[-1] if series else 0.0
            gflops = rec["gflops"] if not rec["error"] else 0.0
            series.append(round(max(prev, gflops), 6))
        return {"job_id": job_id, "curves": curves}

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return {"job": self.queue.cancel(job_id).to_dict()}

    def fleet_status(self) -> Dict[str, Any]:
        return {
            "devices": self.devices,
            "fleet_jobs": self.runner.fleet_jobs,
            "queue_depth": self.queue.depth(),
            "current_job": self.runner.current_job,
            "counts": self.store.counts_by_state(),
            "by_class": aggregate_utilization(
                self.store.fleet_reports().values()
            ),
        }

    def health(self) -> Dict[str, Any]:
        return {"status": "ok", "counts": self.store.counts_by_state()}


def _make_handler(service: TuningService):
    """Bind a handler class to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-service/1"
        protocol_version = "HTTP/1.1"

        # --- plumbing ---------------------------------------------------

        def log_message(self, fmt: str, *args) -> None:
            logger.debug("%s %s", self.address_string(), fmt % args)

        def _send_json(self, status: int, body: Dict[str, Any]) -> None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _send_html(self, html: str) -> None:
            data = html.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _read_json(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ValidationError(
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                    limit=MAX_BODY_BYTES,
                )
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValidationError("request body must be JSON")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValidationError(
                    f"request body is not valid JSON: {exc}"
                ) from exc

        def _route(
            self, method: str
        ) -> Tuple[int, Optional[Dict[str, Any]], Optional[str]]:
            """Dispatch one request; returns (status, json, html)."""
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            query = parse_qs(parsed.query)

            if method == "GET" and parts in ([], ["dashboard"]):
                return 200, None, DASHBOARD_HTML
            if parts[:1] != ["api"]:
                raise JobNotFoundError(
                    f"no such path {parsed.path!r}", path=parsed.path
                )
            rest = parts[1:]
            if method == "GET":
                if rest == ["health"]:
                    return 200, service.health(), None
                if rest == ["fleet"]:
                    return 200, service.fleet_status(), None
                if rest == ["jobs"]:
                    return 200, service.job_rows(
                        tenant=_one(query, "tenant"),
                        state=_one(query, "state"),
                    ), None
                if len(rest) == 2 and rest[0] == "jobs":
                    return 200, service.job_detail(rest[1]), None
                if len(rest) == 3 and rest[0] == "jobs":
                    job_id, leaf = rest[1], rest[2]
                    if leaf == "progress":
                        since = int(_one(query, "since") or 0)
                        return 200, service.progress(job_id, since), None
                    if leaf == "records":
                        return 200, service.records(job_id), None
                    if leaf == "curve":
                        return 200, service.curve(job_id), None
            elif method == "POST":
                if rest == ["jobs"]:
                    return 201, service.submit(self._read_json()), None
                if len(rest) == 3 and rest[0] == "jobs" \
                        and rest[2] == "cancel":
                    return 200, service.cancel(rest[1]), None
            raise JobNotFoundError(
                f"no such endpoint {method} {parsed.path!r}",
                path=parsed.path,
            )

        def _handle(self, method: str) -> None:
            try:
                status, body, html = self._route(method)
            except ServiceError as exc:
                self._send_json(exc.http_status, exc.to_dict())
                return
            except Exception as exc:  # noqa: BLE001 - must answer HTTP
                logger.exception("unhandled error serving %s", self.path)
                self._send_json(
                    500,
                    {"error": {"code": "internal", "message": str(exc)}},
                )
                return
            if html is not None:
                self._send_html(html)
            else:
                self._send_json(status, body or {})

        # --- verbs ------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._handle("POST")

    return Handler


def _one(query: Dict[str, list], key: str) -> Optional[str]:
    values = query.get(key)
    return values[0] if values else None
