"""Persistent job database: sqlite-backed jobs/tasks/records tables.

:class:`JobStore` is the durable heart of the tuning service.  Every
lifecycle step is one committed sqlite transaction, so a SIGKILL
between *any* two state transitions leaves a database that reopens to
exactly the pre- or post-transition state — never a hybrid.  The
contracts mirror the torn-write guarantees of
:class:`~repro.pipeline.records.RecordStore` and
:class:`~repro.tlog.TuningLogDB`, moved onto sqlite's WAL journal:

* **No job is lost**: a submitted job survives any crash/reopen
  sequence (``submit`` commits before returning the id).
* **No job is double-run**: ``claim_next`` flips ``queued -> running``
  with a compare-and-swap inside one transaction; two claimants can
  never both win, and a re-opened store still refuses to re-claim a
  ``running`` job (restart *resumes* it via :meth:`running_jobs`
  instead).
* **Schema versioning**: the version is pinned in sqlite's
  ``user_version`` header; opening a database written by a newer
  build raises :class:`SchemaVersionError` instead of misreading it,
  and opening a corrupt file raises :class:`JobStoreError` naming the
  path.

Task results and measurement records land in their own tables keyed
``(job_id, task_id[, step])`` with idempotent upserts, so the
crash-resume path can safely re-collect every task of a resumed job.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.service.jobs import (
    Job,
    JobNotFoundError,
    JobSpec,
    check_transition,
    valid_sources,
)
from repro.utils.log import get_logger

logger = get_logger("service.store")

#: bump when the table layout changes incompatibly
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id     TEXT UNIQUE NOT NULL,
    tenant     TEXT NOT NULL,
    priority   INTEGER NOT NULL,
    state      TEXT NOT NULL,
    spec       TEXT NOT NULL,
    error      TEXT NOT NULL DEFAULT '',
    attempts   INTEGER NOT NULL DEFAULT 0,
    created_s  REAL NOT NULL,
    started_s  REAL,
    finished_s REAL,
    fleet_report TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_jobs_queue
    ON jobs (state, priority DESC, seq ASC);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs (tenant, state);
CREATE TABLE IF NOT EXISTS tasks (
    job_id           TEXT NOT NULL,
    task_id          INTEGER NOT NULL,
    best_index       INTEGER,
    best_gflops      REAL NOT NULL DEFAULT 0.0,
    num_measurements INTEGER NOT NULL DEFAULT 0,
    tuner            TEXT NOT NULL DEFAULT '',
    summary          TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (job_id, task_id)
);
CREATE TABLE IF NOT EXISTS records (
    job_id       TEXT NOT NULL,
    task_id      INTEGER NOT NULL,
    step         INTEGER NOT NULL,
    config_index INTEGER NOT NULL,
    gflops       REAL NOT NULL,
    error        TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (job_id, task_id, step)
);
"""


class JobStoreError(RuntimeError):
    """The job database cannot be opened or read."""


class SchemaVersionError(JobStoreError):
    """The database was written by an incompatible schema version."""


class JobStore:
    """Thread-safe sqlite persistence for jobs, tasks, and records.

    One connection guarded by an :class:`~threading.RLock` serves every
    thread (HTTP handlers, the runner, recovery); each public method is
    a single transaction.  ``synchronous=FULL`` keeps commits durable
    across power-style kills — the service's crash-recovery contract is
    only as strong as its weakest commit.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=FULL")
            self._migrate()
        except sqlite3.DatabaseError as exc:
            raise JobStoreError(
                f"cannot open job database {self.path}: {exc}"
            ) from exc

    def _migrate(self) -> None:
        """Create the schema, or refuse a future/unknown version."""
        with self._lock, self._conn:
            row = self._conn.execute("PRAGMA user_version").fetchone()
            version = int(row[0])
            if version > SCHEMA_VERSION:
                raise SchemaVersionError(
                    f"job database {self.path} has schema version "
                    f"{version}; this build reads up to {SCHEMA_VERSION}"
                )
            self._conn.executescript(_SCHEMA)
            if version < SCHEMA_VERSION:
                # future migrations chain version-by-version here
                self._conn.execute(
                    f"PRAGMA user_version = {SCHEMA_VERSION}"
                )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # jobs

    @staticmethod
    def _job_from_row(row: sqlite3.Row) -> Job:
        return Job(
            job_id=row["job_id"],
            seq=int(row["seq"]),
            spec=JobSpec.from_dict(json.loads(row["spec"])),
            state=row["state"],
            error=row["error"],
            attempts=int(row["attempts"]),
            created_s=float(row["created_s"]),
            started_s=row["started_s"],
            finished_s=row["finished_s"],
        )

    def submit(self, spec: JobSpec) -> Job:
        """Persist a new job in state ``queued``; returns it with id.

        The job id derives from the autoincrement submission sequence
        (``job-000042``), assigned inside the insert transaction so
        ids are dense, unique, and stable across restarts.
        """
        now = time.time()
        with self._lock, self._conn:
            cur = self._conn.execute(
                "INSERT INTO jobs "
                "(job_id, tenant, priority, state, spec, created_s) "
                "VALUES ('', ?, ?, 'queued', ?, ?)",
                (spec.tenant, spec.priority, spec.to_json(), now),
            )
            seq = int(cur.lastrowid)
            job_id = f"job-{seq:06d}"
            self._conn.execute(
                "UPDATE jobs SET job_id = ? WHERE seq = ?", (job_id, seq)
            )
        logger.info(
            "submitted %s: tenant=%s priority=%d %s/%s n_trial=%d",
            job_id, spec.tenant, spec.priority, spec.model, spec.arm,
            spec.n_trial,
        )
        return Job(
            job_id=job_id, seq=seq, spec=spec, state="queued",
            created_s=now,
        )

    def get(self, job_id: str) -> Job:
        """Fetch one job; raises :class:`JobNotFoundError`."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFoundError(
                f"no job {job_id!r}", job_id=job_id
            )
        return self._job_from_row(row)

    def list_jobs(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[Job]:
        """All jobs (optionally filtered), in submission order."""
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT * FROM jobs{where} ORDER BY seq ASC", params
            ).fetchall()
        return [self._job_from_row(row) for row in rows]

    def active_count(self, tenant: str) -> int:
        """Jobs currently holding this tenant's quota."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE tenant = ? "
                "AND state IN ('queued', 'running')",
                (tenant,),
            ).fetchone()
        return int(row[0])

    def transition(
        self, job_id: str, to_state: str, error: str = ""
    ) -> Job:
        """Atomically move a job along a legal state-machine edge.

        The update is a compare-and-swap on the state column: it only
        fires while the job sits in a state with a legal edge into
        ``to_state``, so concurrent transitions can never both win and
        an illegal move raises
        :class:`~repro.service.jobs.InvalidTransitionError` naming the
        actual state.
        """
        sources = valid_sources(to_state)
        placeholders = ", ".join("?" for _ in sources)
        now = time.time()
        started = "started_s = ?," if to_state == "running" else ""
        finished = (
            "finished_s = ?,"
            if to_state in ("done", "failed", "cancelled")
            else ""
        )
        attempts = (
            "attempts = attempts + 1," if to_state == "running" else ""
        )
        params: List[Any] = [to_state, error]
        if started:
            params.append(now)
        if finished:
            params.append(now)
        params.extend([job_id, *sources])
        with self._lock, self._conn:
            cur = self._conn.execute(
                f"UPDATE jobs SET state = ?, error = ?, {started} "
                f"{finished} {attempts} job_id = job_id "
                f"WHERE job_id = ? AND state IN ({placeholders})",
                params,
            )
            if cur.rowcount != 1:
                # lost the race or illegal edge: report precisely
                job = self.get(job_id)  # raises JobNotFoundError
                check_transition(job.state, to_state)
        return self.get(job_id)

    def claim_next(self) -> Optional[Job]:
        """Atomically claim the next queued job (or ``None``).

        Ordering is strict: highest priority first, FIFO by submission
        sequence within a priority level — deterministic for a
        single-runner service.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id FROM jobs WHERE state = 'queued' "
                "ORDER BY priority DESC, seq ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            return self.transition(row["job_id"], "running")

    def running_jobs(self) -> List[Job]:
        """Jobs a previous service life left mid-run (resume these)."""
        return self.list_jobs(state="running")

    def record_attempt(self, job_id: str) -> Job:
        """Count one more execution attempt (recovery re-runs).

        ``claim_next`` counts the first attempt; each crash-recovery
        resume adds one here, so ``attempts`` reads as "how many
        service lives touched this job".
        """
        with self._lock, self._conn:
            cur = self._conn.execute(
                "UPDATE jobs SET attempts = attempts + 1 "
                "WHERE job_id = ? AND state = 'running'",
                (job_id,),
            )
            if cur.rowcount != 1:
                raise JobNotFoundError(
                    f"no running job {job_id!r}", job_id=job_id
                )
        return self.get(job_id)

    # ------------------------------------------------------------------
    # task results + records

    def add_task_result(
        self,
        job_id: str,
        task_id: int,
        result,
        summary: Optional[Dict[str, Any]] = None,
        tuner: str = "",
    ) -> None:
        """Upsert one finished task and its measurement records.

        ``result`` is a :class:`~repro.core.tuner.TuningResult`.  The
        write is idempotent — a resumed job re-collects every task and
        lands on identical rows, so crash-resume never duplicates or
        reorders records.
        """
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO tasks "
                "(job_id, task_id, best_index, best_gflops, "
                " num_measurements, tuner, summary) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id,
                    task_id,
                    result.best_index,
                    float(result.best_gflops),
                    result.num_measurements,
                    tuner or result.tuner_name,
                    json.dumps(summary or {}, sort_keys=True),
                ),
            )
            self._conn.execute(
                "DELETE FROM records WHERE job_id = ? AND task_id = ?",
                (job_id, task_id),
            )
            self._conn.executemany(
                "INSERT INTO records "
                "(job_id, task_id, step, config_index, gflops, error) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        job_id,
                        task_id,
                        rec.step,
                        rec.config_index,
                        float(rec.gflops),
                        rec.error,
                    )
                    for rec in result.records
                ],
            )

    def tasks_for(self, job_id: str) -> List[Dict[str, Any]]:
        """Per-task result rows of one job, in task order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM tasks WHERE job_id = ? ORDER BY task_id",
                (job_id,),
            ).fetchall()
        return [
            {
                "task_id": int(row["task_id"]),
                "best_index": row["best_index"],
                "best_gflops": float(row["best_gflops"]),
                "num_measurements": int(row["num_measurements"]),
                "tuner": row["tuner"],
                "summary": json.loads(row["summary"]),
            }
            for row in rows
        ]

    def records_for(
        self, job_id: str, task_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Measurement records in (task, step) order — the bit-identity
        surface the service test harness compares against a direct
        :meth:`~repro.pipeline.compiler.DeploymentCompiler.tune`."""
        clause = " AND task_id = ?" if task_id is not None else ""
        params: List[Any] = [job_id]
        if task_id is not None:
            params.append(task_id)
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM records WHERE job_id = ?"
                f"{clause} ORDER BY task_id, step",
                params,
            ).fetchall()
        return [
            {
                "task_id": int(row["task_id"]),
                "step": int(row["step"]),
                "config_index": int(row["config_index"]),
                "gflops": float(row["gflops"]),
                "error": row["error"],
            }
            for row in rows
        ]

    # ------------------------------------------------------------------
    # fleet reports

    def set_fleet_report(
        self, job_id: str, report: Dict[str, Any]
    ) -> None:
        """Attach the job's fleet scheduling report (done jobs only)."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET fleet_report = ? WHERE job_id = ?",
                (json.dumps(report, sort_keys=True), job_id),
            )

    def fleet_report(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT fleet_report FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None or not row["fleet_report"]:
            return None
        return json.loads(row["fleet_report"])

    def fleet_reports(self) -> Dict[str, Dict[str, Any]]:
        """Every stored fleet report, keyed by job id."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, fleet_report FROM jobs "
                "WHERE fleet_report != '' ORDER BY seq"
            ).fetchall()
        return {
            row["job_id"]: json.loads(row["fleet_report"]) for row in rows
        }

    # ------------------------------------------------------------------

    def counts_by_state(self) -> Dict[str, int]:
        """Job counts per state (the health/dashboard summary)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}


def aggregate_utilization(
    reports: Iterable[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Fold per-job ``by_class`` fleet rollups into one utilization map.

    Mirrors :func:`repro.fleet.reporting.fleet_report_dict`'s
    ``by_class`` shape so the dashboard renders service-lifetime
    utilization with the same fields a single run reports.
    """
    by_class: Dict[str, Dict[str, Any]] = {}
    total = 0
    for report in reports:
        for cls, row in report.get("by_class", {}).items():
            agg = by_class.setdefault(
                cls,
                {
                    "devices": 0,
                    "homed": 0,
                    "executed": 0,
                    "stolen_in": 0,
                    "stolen_out": 0,
                    "measurements": 0,
                },
            )
            agg["devices"] = max(agg["devices"], int(row.get("devices", 0)))
            for key in (
                "homed", "executed", "stolen_in", "stolen_out",
                "measurements",
            ):
                agg[key] += int(row.get(key, 0))
            total += int(row.get("measurements", 0))
    for row in by_class.values():
        row["utilization"] = (
            round(row["measurements"] / total, 6) if total else 0.0
        )
    return {cls: by_class[cls] for cls in sorted(by_class)}
