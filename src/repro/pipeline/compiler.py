"""Deployment compilation and end-to-end latency evaluation.

:class:`DeploymentCompiler` drives the full Fig. 1 flow for one model:
extract tasks, tune each node with a chosen arm, and combine the best
configurations into a :class:`CompiledModel`.  The compiled model
evaluates end-to-end inference latency the way the paper measures it
(Sec. V-A): the deployed model is "run" many times (600 in the paper)
and the mean latency and its variance across runs are reported.

Per-run latency is

    L = (1 + g) * sum_k t_k * (1 + e_k)

where ``t_k`` is a kernel's ground-truth time, ``e_k`` its private
timing jitter (std from the kernel profile), and ``g`` a run-global
factor (clock/thermal state) whose std is proportional to the
time-weighted mean kernel sigma — so choosing robust configurations
lowers *both* noise terms, reproducing the Table I variance effect.

Fused kernels not covered by a tuning task (pooling, softmax, the dense
layers that the TVM tutorial flow does not tune) contribute a fixed
default-schedule time from a conservative roofline estimate.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core import make_tuner
from repro.core.events import TlogExactHit
from repro.obs import RunObservation
from repro.core.tuner import TuningResult
from repro.fleet.devices import Fleet, FleetSpec
from repro.fleet.scheduler import FleetRunResult, FleetScheduler, FleetTask
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.hardware.executor import (
    ExecutorSpec,
    MeasureCache,
    build_executor,
)
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.hardware.measure import SimulatedTask
from repro.nn.graph import Graph
from repro.pipeline.records import RecordStore, TuningRecord
from repro.pipeline.tasks import TaskSpec, extract_tasks, untuned_ops
from repro.tlog import (
    TaskSignature,
    TlogRecord,
    TuningLogDB,
    build_warm_start,
)
from repro.utils.io import atomic_pickle_dump, atomic_write_text
from repro.utils.log import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("pipeline.compiler")

#: default-schedule efficiencies for non-tuned kernels: an untuned
#: fallback schedule realizes only a small fraction of the machine
#: (typically several times slower than a tuned kernel)
_DEFAULT_COMPUTE_FRACTION = 0.08
_DEFAULT_BANDWIDTH_FRACTION = 0.25
_DEFAULT_KERNEL_SIGMA = 0.012
#: coupling between per-kernel noise and the run-global factor
_GLOBAL_NOISE_COUPLING = 2.0


@dataclass(frozen=True)
class KernelTiming:
    """Ground-truth time and noise level of one deployed kernel."""

    name: str
    time_s: float
    sigma_rel: float
    tuned: bool


@dataclass
class LatencySample:
    """Latency statistics over repeated timed runs of a deployment."""

    latencies_ms: np.ndarray

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_ms.mean())

    @property
    def variance(self) -> float:
        """Variance across runs in ms^2 (the paper's 'Variance' column)."""
        return float(self.latencies_ms.var(ddof=1))

    @property
    def std_ms(self) -> float:
        return float(self.latencies_ms.std(ddof=1))


@dataclass
class CompiledModel:
    """A fully deployed model: every kernel bound to a schedule."""

    model_name: str
    device: GpuDevice
    kernels: List[KernelTiming]
    #: per-task tuning results (empty when built from a record store)
    tuning_results: Dict[int, TuningResult] = field(default_factory=dict)
    #: scheduling report of a fleet-mode compile (None for serial runs)
    fleet: Optional[FleetRunResult] = None
    #: per-task tuning-log outcome (``"hit"``/``"warm"``/``"cold"``),
    #: empty when the compile ran without a tuning log
    tlog_status: Dict[int, str] = field(default_factory=dict)

    def tlog_counts(self) -> Dict[str, int]:
        """Aggregate hit/warm/cold counts of this compile."""
        counts = {"hit": 0, "warm": 0, "cold": 0}
        for status in self.tlog_status.values():
            counts[status] = counts.get(status, 0) + 1
        return counts

    @property
    def base_latency_ms(self) -> float:
        """Noise-free end-to-end latency."""
        return 1e3 * sum(k.time_s for k in self.kernels)

    def measure_latency(
        self, num_runs: int = 600, seed: int = 0
    ) -> LatencySample:
        """Time ``num_runs`` end-to-end inferences (Sec. V-A protocol)."""
        if num_runs < 2:
            raise ValueError("need at least 2 runs for a variance")
        rng = np.random.default_rng(derive_seed(seed, "latency", self.model_name))
        times = np.array([k.time_s for k in self.kernels])
        sigmas = np.array([k.sigma_rel for k in self.kernels])
        total = times.sum()
        weights = times / total if total > 0 else np.ones_like(times)
        sigma_global = _GLOBAL_NOISE_COUPLING * float(np.dot(weights, sigmas))

        per_kernel = rng.normal(
            0.0, 1.0, size=(num_runs, len(times))
        ) * sigmas[None, :]
        np.maximum(per_kernel, -0.9, out=per_kernel)
        g = np.maximum(rng.normal(0.0, sigma_global, size=num_runs), -0.9)
        run_times = (1.0 + g) * ((times[None, :] * (1.0 + per_kernel)).sum(axis=1))
        return LatencySample(latencies_ms=run_times * 1e3)


class DeploymentCompiler:
    """Tune and deploy one model on a (simulated) device.

    The per-task environments (terrain, measurement noise) derive from
    ``env_seed`` only, so different tuner arms compared under one
    compiler face the *same* optimization problems — the paper's
    experimental protocol.
    """

    def __init__(
        self,
        graph: Graph,
        device: GpuDevice = GTX_1080_TI,
        env_seed: int = 0,
        include_winograd: bool = False,
    ):
        self.graph = graph
        self.device = device
        self.env_seed = int(env_seed)
        self.tasks: List[TaskSpec] = extract_tasks(
            graph, include_winograd=include_winograd
        )
        self._untuned = untuned_ops(graph)

    def simulated_task(
        self, spec: TaskSpec, device: Optional[GpuDevice] = None
    ) -> SimulatedTask:
        """The (deterministic) environment for one task.

        ``device`` selects the cost model the task is measured on; it
        defaults to the compiler's device (the serial-tuning and
        deployment target).  Fleet-mode compiles pass each task's home
        device so a mixed pool really measures on distinct hardware.
        """
        target = self.device if device is None else device
        return spec.to_simulated(device=target, seed=self.env_seed)

    # ------------------------------------------------------------------

    @staticmethod
    def _executor_spec(
        executor: ExecutorSpec,
        jobs: Optional[int] = None,
        measure_cache: Optional[MeasureCache] = None,
        faults: Optional[FaultModel] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> ExecutorSpec:
        """Fold executor options into a single spec for :func:`make_tuner`."""
        if (
            measure_cache is None and jobs is None and faults is None
            and retry is None and (executor is None or executor == "serial")
        ):
            return executor

        def spec(measurer):
            return build_executor(
                measurer, executor, jobs=jobs, cache=measure_cache,
                faults=faults, retry=retry,
            )

        return spec

    @staticmethod
    def _task_key(spec: TaskSpec) -> str:
        return f"task-{spec.task_id:03d}"

    @staticmethod
    def _task_paths(
        ckpt_dir: Optional[Path], task_key: str, subdir: Optional[str] = None
    ) -> Tuple[Optional[Path], Optional[Path], Optional[Path]]:
        """(done, ckpt, obs) paths for one task, under a device subdir
        in fleet mode."""
        if ckpt_dir is None:
            return None, None, None
        base = ckpt_dir if subdir is None else ckpt_dir / subdir
        base.mkdir(parents=True, exist_ok=True)
        return (
            base / f"{task_key}.done",
            base / f"{task_key}.ckpt",
            base / f"{task_key}.obs.json",
        )

    # ------------------------------------------------------------------
    # tuning-log integration

    @staticmethod
    def _open_tlog(
        tlog: Optional[Union["TuningLogDB", str, Path]]
    ) -> Optional[TuningLogDB]:
        """Coerce the ``tlog=`` argument into an open database."""
        if tlog is None or isinstance(tlog, TuningLogDB):
            return tlog
        return TuningLogDB(tlog)

    def _tlog_run_key(
        self, tuner_name: str, trial_seed: int, n_trial: int
    ) -> str:
        """Identity of this logical compile for idempotent contribution.

        A crash/resume cycle re-runs :meth:`tune` with identical
        arguments and therefore the same run key, so the database skips
        the duplicate contribution instead of double-appending.
        """
        return (
            f"{self.graph.name}:{tuner_name}:trial={trial_seed}"
            f":env={self.env_seed}:n={n_trial}"
        )

    def _serve_or_plan(
        self,
        tlog_db: TuningLogDB,
        spec: TaskSpec,
        device: GpuDevice,
        serve_hits: bool,
        warm_start: bool,
        warm_k: int,
        observer,
        warm_device: str = "any",
    ) -> Tuple[Optional[TuningResult], Optional[object], TaskSignature, str]:
        """Consult the tuning log for one task before tuning it.

        Returns ``(served_result, warm_plan, signature, status)``: an
        exact hit yields a replayed result and zero measurements; a
        transferable neighbor (with ``warm_start``) yields a plan for
        the tuner; otherwise the task runs cold.
        """
        task = spec.to_simulated(device=device, seed=self.env_seed)
        sig = TaskSignature.of(
            spec.workload, task.space, device, template=spec.template
        )
        if serve_hits:
            records = tlog_db.lookup_exact(sig)
            best = max(
                (r.gflops for r in records or () if r.ok), default=0.0
            )
            if best > 0:
                result = self._result_from_tlog(task.name, records)
                if observer is not None:
                    observer(
                        None,
                        TlogExactHit(
                            step=0,
                            signature_key=sig.key,
                            records=len(records),
                            best_gflops=best,
                        ),
                    )
                logger.info(
                    "%s T%d: tuning-log exact hit (%d records, "
                    "best %.1f GFLOPS, zero measurements)",
                    self.graph.name, spec.task_id + 1,
                    len(records), best,
                )
                return result, None, sig, "hit"
        if warm_start:
            plan = build_warm_start(
                tlog_db, sig, task.space, k=warm_k, device=warm_device
            )
            if plan is not None:
                return None, plan, sig, "warm"
        return None, None, sig, "cold"

    @staticmethod
    def _result_from_tlog(
        task_name: str, records: List[TlogRecord]
    ) -> TuningResult:
        """Summarize stored records as a finished result.

        The served result carries only the best configuration — its
        ``records`` stay empty so ``num_measurements`` is honestly zero
        and record stores never double-log replayed history.
        """
        best_index: Optional[int] = None
        best_gflops = 0.0
        for rec in records:
            if rec.ok and rec.gflops > best_gflops:
                best_gflops = rec.gflops
                best_index = rec.config_index
        return TuningResult(
            task_name=task_name,
            tuner_name="tlog",
            records=[],
            best_index=best_index,
            best_gflops=best_gflops,
        )

    def _contribute(
        self,
        tlog_db: TuningLogDB,
        sig: TaskSignature,
        spec: TaskSpec,
        result: TuningResult,
        run_key: str,
    ) -> None:
        """Append one tuned task's measurements to the database."""
        if not result.records:
            return
        from repro.space.templates import build_space

        space = build_space(spec.workload, spec.template)
        indices = [r.config_index for r in result.records]
        digits = space.decode_batch(indices)
        tlog_db.record_task(
            sig,
            [
                TlogRecord(
                    config_index=rec.config_index,
                    knob_indices=tuple(int(d) for d in row),
                    gflops=rec.gflops,
                    tuner=result.tuner_name,
                    error=rec.error,
                )
                for rec, row in zip(result.records, digits)
            ],
            run_key=run_key,
        )

    def _tune_one(
        self,
        spec: TaskSpec,
        tuner_name: str,
        n_trial: int,
        early_stopping: Optional[int],
        trial_seed: int,
        kwargs: dict,
        executor_spec: ExecutorSpec,
        done_path: Optional[Path],
        ckpt_path: Optional[Path],
        obs_path: Optional[Path],
        observer,
        resume: bool,
        pipeline: bool = False,
        device: Optional[GpuDevice] = None,
    ) -> TuningResult:
        """Tune (or restore) one task — the unit both the serial loop
        and the fleet workers execute.

        Pure in its arguments: every seeded decision derives from the
        task spec and ``trial_seed``, so calls may run in any order, on
        any worker thread, and still reproduce the serial stream.
        ``device`` is the cost model the task is measured on (the home
        device in fleet mode; ``None`` means the compiler's device).
        """
        if resume and done_path is not None and done_path.exists():
            with done_path.open("rb") as fh:
                result = pickle.load(fh)
            if (
                observer is not None
                and obs_path is not None
                and obs_path.exists()
            ):
                with obs_path.open("r", encoding="utf-8") as fh:
                    observer.load_state_dict(json.load(fh))
            logger.info(
                "%s T%d (%s): loaded completed result from %s",
                self.graph.name, spec.task_id + 1, tuner_name, done_path,
            )
            return result
        task = self.simulated_task(spec, device=device)
        tuner_seed = derive_seed(
            trial_seed, "tuner", tuner_name, spec.task_id
        )
        tuner = make_tuner(
            tuner_name, task, seed=tuner_seed,
            executor=executor_spec, **kwargs,
        )
        sinks = (observer,) if observer is not None else ()
        try:
            if resume and ckpt_path is not None and ckpt_path.exists():
                logger.info(
                    "%s T%d (%s): resuming from %s",
                    self.graph.name, spec.task_id + 1, tuner_name,
                    ckpt_path,
                )
                result = tuner.resume(
                    ckpt_path, on_event=sinks, pipeline=pipeline
                )
            else:
                result = tuner.tune(
                    n_trial=n_trial,
                    early_stopping=early_stopping,
                    checkpoint=ckpt_path,
                    on_event=sinks,
                    pipeline=pipeline,
                )
        finally:
            tuner.shutdown()
        if observer is not None and obs_path is not None:
            atomic_write_text(
                str(obs_path),
                json.dumps(observer.state_dict(), sort_keys=True),
            )
        if done_path is not None:
            atomic_pickle_dump(done_path, result)
        return result

    def _collect(
        self,
        spec: TaskSpec,
        result: TuningResult,
        tuner_name: str,
        record_store: Optional[RecordStore],
        progress: Optional[Callable[[TaskSpec, TuningResult], None]],
    ) -> None:
        """Fold one finished task into the run-level outputs.

        Called in task order for both serial and fleet compiles, so the
        record store's line order is identical either way.
        """
        if record_store is not None:
            for record in result.records:
                record_store.add(
                    TuningRecord(
                        workload=spec.workload,
                        config_index=record.config_index,
                        gflops=record.gflops,
                        tuner_name=tuner_name,
                        error=record.error,
                        template=spec.template,
                    )
                )
        if progress is not None:
            progress(spec, result)
        logger.info(
            "%s T%d (%s): best %.1f GFLOPS in %d measurements",
            self.graph.name,
            spec.task_id + 1,
            tuner_name,
            result.best_gflops,
            result.num_measurements,
        )

    def tune(
        self,
        tuner_name: str,
        n_trial: int = 1024,
        early_stopping: Optional[int] = 400,
        trial_seed: int = 0,
        tuner_kwargs: Optional[dict] = None,
        record_store: Optional[RecordStore] = None,
        progress: Optional[Callable[[TaskSpec, TuningResult], None]] = None,
        executor: ExecutorSpec = None,
        jobs: Optional[int] = None,
        measure_cache: Optional[MeasureCache] = None,
        faults: Optional[FaultModel] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        observation: Optional[RunObservation] = None,
        fleet: Optional[FleetSpec] = None,
        fleet_jobs: Optional[int] = None,
        tlog: Optional[Union[TuningLogDB, str, Path]] = None,
        warm_start: bool = False,
        warm_k: int = 16,
        serve_hits: bool = True,
        warm_device: str = "any",
        pipeline: bool = False,
    ) -> CompiledModel:
        """Tune every task with arm ``tuner_name`` and compile.

        ``trial_seed`` varies the tuner randomness across repeated
        trials while the environment stays fixed.  ``executor`` /
        ``jobs`` / ``measure_cache`` select the measurement backend the
        per-task tuners use; results are identical for every choice
        (see ``docs/EXECUTION.md``).  ``faults``/``retry`` inject
        deterministic measurement faults with retry/backoff.

        With ``checkpoint_dir`` set, each task writes a resumable
        checkpoint (``task-NNN.ckpt``) while tuning and a completed
        result (``task-NNN.done``) afterwards; ``resume=True`` skips
        completed tasks and continues interrupted ones so an
        interrupted compile reproduces the uninterrupted run exactly.

        ``observation`` (a :class:`repro.obs.RunObservation`) attaches
        one :class:`~repro.obs.TuningObserver` per task, keyed
        ``task-NNN``.  Observer state is persisted per task
        (``task-NNN.obs.json`` next to the ``.done`` file) and restored
        on resume — including for already-completed tasks — so the
        run-level metrics/trace/summary exports of a resumed compile
        match an uninterrupted one (modulo wall-clock durations).

        ``fleet`` (a :class:`~repro.fleet.Fleet`, spec string, or
        device-name sequence) shards the per-task tuning runs across a
        simulated device pool with ``fleet_jobs`` worker threads (one
        per device by default).  Each task is *measured on its home
        device's cost model* (``seq % len(fleet)``), so a mixed fleet
        tunes each task for the hardware it is homed on; work stealing
        moves execution, never measurement identity.  When every slot
        is the compiler's device class and no slot overrides the
        fleet-level fault model, per-task records, summaries, and the
        record store are bit-identical to the serial run for any pool
        size and steal schedule; a mixed fleet is instead bit-identical
        to per-home-device serial compiles (and invariant to pool size,
        steal order, and kill/resume).  Checkpoints land under a
        per-device subdirectory (``device-NN/task-NNN.ckpt``), keyed by
        each task's deterministic home device, so an interrupted fleet
        run resumes with the same fleet spec.  The scheduling report is
        returned as ``CompiledModel.fleet``.

        ``tlog`` (a :class:`~repro.tlog.TuningLogDB` or its directory)
        consults the cross-run tuning log before every task: an exact
        signature hit is served instantly with zero measurements
        (disable with ``serve_hits=False``); with ``warm_start=True``,
        tasks without a hit seed their initialization from the top
        ``warm_k`` prior configurations of the nearest transferable
        tasks and pretrain their cost models from the discounted
        history.  ``warm_device`` restricts which stored tasks may seed
        the warm start: ``"any"`` (default), ``"same"`` (only the
        task's own device class), or ``"cross"`` (only *other* device
        classes — the transfer scenario of ``experiment crossdevice``).
        Finished tasks contribute back to the database after the run
        (idempotently — resuming never double-appends); fleet mode keys
        records by each task's home device class, which is also the
        class that measured them.  Per-task outcomes land in
        ``CompiledModel.tlog_status``.  All of it is off by default:
        ``tlog=None`` compiles are bit-identical to builds without
        tuning-log support.

        ``pipeline=True`` runs each task's tuning loop in pipelined
        mode (measurement overlapped with speculative proposal, see
        :meth:`repro.core.Tuner.tune`); records and summaries stay
        bit-identical to the serial loop.
        """
        kwargs = dict(tuner_kwargs or {})
        ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        if ckpt_dir is not None:
            ckpt_dir.mkdir(parents=True, exist_ok=True)
        tlog_db = self._open_tlog(tlog)
        if fleet is not None:
            return self._tune_fleet(
                tuner_name,
                fleet=fleet,
                fleet_jobs=fleet_jobs,
                n_trial=n_trial,
                early_stopping=early_stopping,
                trial_seed=trial_seed,
                kwargs=kwargs,
                record_store=record_store,
                progress=progress,
                executor=executor,
                jobs=jobs,
                measure_cache=measure_cache,
                faults=faults,
                retry=retry,
                ckpt_dir=ckpt_dir,
                resume=resume,
                observation=observation,
                tlog_db=tlog_db,
                warm_start=warm_start,
                warm_k=warm_k,
                serve_hits=serve_hits,
                warm_device=warm_device,
                pipeline=pipeline,
            )
        executor_spec = self._executor_spec(
            executor, jobs=jobs, measure_cache=measure_cache,
            faults=faults, retry=retry,
        )

        run_key = (
            self._tlog_run_key(tuner_name, trial_seed, n_trial)
            if tlog_db is not None else ""
        )
        results: Dict[int, TuningResult] = {}
        best_configs: Dict[int, Optional[int]] = {}
        tlog_status: Dict[int, str] = {}
        contributions: List[Tuple[TaskSignature, TaskSpec, TuningResult]] = []
        for spec in self.tasks:
            task_key = self._task_key(spec)
            done_path, ckpt_path, obs_path = self._task_paths(
                ckpt_dir, task_key
            )
            observer = (
                observation.observer(task_key)
                if observation is not None else None
            )
            served: Optional[TuningResult] = None
            task_kwargs = kwargs
            collect_name = tuner_name
            if tlog_db is not None:
                served, plan, sig, status = self._serve_or_plan(
                    tlog_db, spec, self.device, serve_hits,
                    warm_start, warm_k, observer,
                    warm_device=warm_device,
                )
                tlog_status[spec.task_id] = status
                if plan is not None:
                    task_kwargs = dict(kwargs, warm_start=plan)
            if served is not None:
                result = served
                collect_name = "tlog"
            else:
                result = self._tune_one(
                    spec, tuner_name, n_trial, early_stopping, trial_seed,
                    task_kwargs, executor_spec, done_path, ckpt_path,
                    obs_path, observer, resume, pipeline=pipeline,
                )
                if tlog_db is not None:
                    contributions.append((sig, spec, result))
            results[spec.task_id] = result
            best_configs[spec.task_id] = result.best_index
            self._collect(spec, result, collect_name, record_store, progress)
        # contributions are deferred to the end of the run (in task
        # order) so serial and fleet compiles observe the same database
        # state while tuning — lookups never see same-run records
        for sig, spec, result in contributions:
            self._contribute(tlog_db, sig, spec, result, run_key)
        compiled = self._compile(best_configs)
        compiled.tuning_results = results
        compiled.tlog_status = tlog_status
        return compiled

    def _tune_fleet(
        self,
        tuner_name: str,
        fleet: FleetSpec,
        fleet_jobs: Optional[int],
        n_trial: int,
        early_stopping: Optional[int],
        trial_seed: int,
        kwargs: dict,
        record_store: Optional[RecordStore],
        progress: Optional[Callable[[TaskSpec, TuningResult], None]],
        executor: ExecutorSpec,
        jobs: Optional[int],
        measure_cache: Optional[MeasureCache],
        faults: Optional[FaultModel],
        retry: Optional[RetryPolicy],
        ckpt_dir: Optional[Path],
        resume: bool,
        observation: Optional[RunObservation],
        tlog_db: Optional[TuningLogDB] = None,
        warm_start: bool = False,
        warm_k: int = 16,
        serve_hits: bool = True,
        warm_device: str = "any",
        pipeline: bool = False,
    ) -> CompiledModel:
        """Fleet-mode compile: shard tasks over a simulated device pool.

        Every task is measured on its *home* device's cost model, and
        its tuning-log signature carries that same device class — the
        identity that produced the records.  Work stealing only moves
        which worker thread executes the tuning loop.

        A :class:`~repro.fleet.FleetError` mid-run leaves per-task
        ``.done``/``.ckpt`` files behind; re-running with
        ``resume=True`` and the same fleet spec completes the survivors
        bit-identically to an uninterrupted run.
        """
        pool = Fleet.from_spec(fleet)
        by_key = {self._task_key(spec): spec for spec in self.tasks}
        # pre-create observers on the caller's thread: workers only
        # ever *use* their own task's observer
        if observation is not None:
            for key in by_key:
                observation.observer(key)

        # consult the tuning log up front on the caller thread, in task
        # order and keyed by each task's home device class, so workers
        # never touch the database concurrently and lookups match what
        # a later resume of the same run would see
        served_by_key: Dict[str, TuningResult] = {}
        plan_by_key: Dict[str, object] = {}
        sig_by_key: Dict[str, TaskSignature] = {}
        tlog_status: Dict[int, str] = {}
        if tlog_db is not None:
            for i, spec in enumerate(self.tasks):
                key = self._task_key(spec)
                home = pool.home_of(i)
                observer = (
                    observation.observer(key)
                    if observation is not None else None
                )
                served, plan, sig, status = self._serve_or_plan(
                    tlog_db, spec, home.device, serve_hits,
                    warm_start, warm_k, observer,
                    warm_device=warm_device,
                )
                tlog_status[spec.task_id] = status
                sig_by_key[key] = sig
                if served is not None:
                    served_by_key[key] = served
                elif plan is not None:
                    plan_by_key[key] = plan

        def run_task(ftask: FleetTask, _executing_device) -> TuningResult:
            served = served_by_key.get(ftask.key)
            if served is not None:
                return served
            spec = by_key[ftask.key]
            home = pool.home_of(ftask.seq)
            executor_spec = self._executor_spec(
                executor, jobs=jobs, measure_cache=measure_cache,
                faults=home.fault_model(faults), retry=retry,
            )
            done_path, ckpt_path, obs_path = self._task_paths(
                ckpt_dir, ftask.key, subdir=home.dirname
            )
            observer = (
                observation.observer(ftask.key)
                if observation is not None else None
            )
            plan = plan_by_key.get(ftask.key)
            task_kwargs = (
                dict(kwargs, warm_start=plan) if plan is not None else kwargs
            )
            return self._tune_one(
                spec, tuner_name, n_trial, early_stopping, trial_seed,
                task_kwargs, executor_spec, done_path, ckpt_path, obs_path,
                observer, resume, pipeline=pipeline, device=home.device,
            )

        scheduler = FleetScheduler(pool, run_task, jobs=fleet_jobs)
        fleet_result = scheduler.run(
            [
                FleetTask(key=self._task_key(spec), seq=i)
                for i, spec in enumerate(self.tasks)
            ]
        )
        results: Dict[int, TuningResult] = {}
        best_configs: Dict[int, Optional[int]] = {}
        for spec in self.tasks:
            key = self._task_key(spec)
            result = fleet_result.results[key]
            results[spec.task_id] = result
            best_configs[spec.task_id] = result.best_index
            collect_name = "tlog" if key in served_by_key else tuner_name
            self._collect(spec, result, collect_name, record_store, progress)
        if tlog_db is not None:
            run_key = self._tlog_run_key(tuner_name, trial_seed, n_trial)
            for spec in self.tasks:
                key = self._task_key(spec)
                if key in served_by_key:
                    continue
                self._contribute(
                    tlog_db, sig_by_key[key], spec,
                    fleet_result.results[key], run_key,
                )
        for report in fleet_result.reports:
            report.measurements = sum(
                fleet_result.results[key].num_measurements
                for key in report.homed
            )
        compiled = self._compile(best_configs)
        compiled.tuning_results = results
        compiled.fleet = fleet_result
        compiled.tlog_status = tlog_status
        return compiled

    def compile_from_records(self, store: RecordStore) -> CompiledModel:
        """Deploy using the best logged configuration per workload."""
        best_configs: Dict[int, Optional[int]] = {}
        for spec in self.tasks:
            record = store.best_for(spec.workload, template=spec.template)
            best_configs[spec.task_id] = (
                record.config_index if record is not None else None
            )
        return self._compile(best_configs)

    def compile_from_tlog(
        self, db: Union[TuningLogDB, str, Path]
    ) -> CompiledModel:
        """Deploy using the best tuning-log configuration per task.

        The cross-run counterpart of :meth:`compile_from_records`:
        every task resolves its exact signature against this compiler's
        device and deploys the best stored configuration; tasks without
        history fall back to the default schedule (and are marked
        ``"cold"`` in ``tlog_status``).
        """
        tlog_db = self._open_tlog(db)
        best_configs: Dict[int, Optional[int]] = {}
        tlog_status: Dict[int, str] = {}
        for spec in self.tasks:
            sig = spec.signature(self.device)
            best = tlog_db.best_exact(sig)
            best_configs[spec.task_id] = (
                best.config_index if best is not None else None
            )
            tlog_status[spec.task_id] = "hit" if best is not None else "cold"
        compiled = self._compile(best_configs)
        compiled.tlog_status = tlog_status
        return compiled

    # ------------------------------------------------------------------

    def _default_time(self, flops: int, traffic_bytes: int) -> float:
        """Roofline time of an untuned kernel under a default schedule."""
        compute = flops / (self.device.peak_flops * _DEFAULT_COMPUTE_FRACTION)
        memory = traffic_bytes / (
            self.device.mem_bandwidth * _DEFAULT_BANDWIDTH_FRACTION
        )
        return max(compute, memory) + self.device.launch_overhead_s

    def _spec_timing(
        self, spec: TaskSpec, index: Optional[int]
    ) -> Tuple[float, float]:
        """(kernel time, noise sigma) for one tuned task variant."""
        if index is None:
            time_s = self._default_time(
                spec.workload.flops,
                spec.workload.input_bytes + spec.workload.output_bytes,
            )
            return time_s, 3 * _DEFAULT_KERNEL_SIGMA
        task = self.simulated_task(spec)
        return task.true_time_s(index), task.noise_sigma(index)

    def _compile(
        self, best_configs: Dict[int, Optional[int]]
    ) -> CompiledModel:
        kernels: List[KernelTiming] = []
        # template variants of one workload share kernel names; deploy
        # whichever variant timed fastest (TVM graph-tuner behaviour)
        by_workload: Dict[object, List[TaskSpec]] = {}
        for spec in self.tasks:
            by_workload.setdefault(spec.workload, []).append(spec)
        for specs in by_workload.values():
            timings = [
                self._spec_timing(spec, best_configs.get(spec.task_id))
                for spec in specs
            ]
            time_s, sigma = min(timings, key=lambda t: t[0])
            for name in specs[0].kernel_names:
                kernels.append(
                    KernelTiming(
                        name=name, time_s=time_s, sigma_rel=sigma, tuned=True
                    )
                )
        for fused in self._untuned:
            traffic = 0
            for node_id in fused.node_ids:
                node = self.graph[node_id]
                shape = node.output_shape or ()
                size = 4
                for dim in shape:
                    size *= dim
                traffic += size
            time_s = self._default_time(fused.flops, 2 * traffic)
            kernels.append(
                KernelTiming(
                    name=fused.name,
                    time_s=time_s,
                    sigma_rel=_DEFAULT_KERNEL_SIGMA,
                    tuned=False,
                )
            )
        return CompiledModel(
            model_name=self.graph.name, device=self.device, kernels=kernels
        )
