"""Tuning-record persistence.

AutoTVM logs every measurement as a JSON line and replays logs to apply
the best configuration per workload; :class:`RecordStore` reproduces
that contract: append records during tuning, query the best record per
workload, serialize to / load from JSON-lines files.

Record files are also the crash-recovery surface of a tuning run, so
loading is hardened: a malformed line raises a :class:`ValueError`
naming the line — *except* a torn final line (the signature of a crash
mid-append), which is dropped with a warning so the surviving prefix
replays cleanly.  Nothing is ever silently coerced: an unknown workload
kind, a missing field, or a record from a future format version all
raise rather than corrupt the best-config query.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
    Workload,
)
from repro.utils.log import get_logger

logger = get_logger("pipeline.records")

#: bump when the JSON record layout changes incompatibly
RECORD_VERSION = 1

_WORKLOAD_CLASSES = {
    "conv2d": Conv2DWorkload,
    "depthwise_conv2d": DepthwiseConv2DWorkload,
    "dense": DenseWorkload,
}


def workload_from_dict(data: Dict[str, object]) -> Workload:
    """Inverse of :meth:`Workload.to_dict`."""
    data = dict(data)
    kind = data.pop("kind", None)
    if kind not in _WORKLOAD_CLASSES:
        raise ValueError(f"unknown workload kind {kind!r}")
    try:
        return _WORKLOAD_CLASSES[kind](**data)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ValueError(
            f"malformed {kind!r} workload fields: {exc}"
        ) from exc


@dataclass(frozen=True)
class TuningRecord:
    """One logged measurement: workload, config index, result."""

    workload: Workload
    config_index: int
    gflops: float
    tuner_name: str = ""
    error: str = ""
    template: str = "direct"

    @property
    def ok(self) -> bool:
        return not self.error

    def to_json(self) -> str:
        return json.dumps(
            {
                "v": RECORD_VERSION,
                "workload": self.workload.to_dict(),
                "config_index": self.config_index,
                "gflops": self.gflops,
                "tuner": self.tuner_name,
                "error": self.error,
                "template": self.template,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "TuningRecord":
        """Parse one JSON-line record.

        Raises :class:`ValueError` (never a bare ``KeyError``/
        ``TypeError``) for anything that is not a complete record this
        version can read: truncated JSON, missing fields, an unknown
        workload kind, or a future ``"v"``.  Records written before the
        version field (``v`` absent) still load.
        """
        data = json.loads(line)  # JSONDecodeError is a ValueError
        if not isinstance(data, dict):
            raise ValueError(f"record line is not a JSON object: {line!r}")
        version = data.get("v", 1)
        if version != RECORD_VERSION:
            raise ValueError(
                f"record version {version!r} is not readable by this "
                f"build (expected {RECORD_VERSION})"
            )
        try:
            workload_data = data["workload"]
            config_index = int(data["config_index"])
            gflops = float(data["gflops"])
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed record fields: {exc}") from exc
        return TuningRecord(
            workload=workload_from_dict(workload_data),
            config_index=config_index,
            gflops=gflops,
            tuner_name=data.get("tuner", ""),
            error=data.get("error", ""),
            template=data.get("template", "direct"),
        )


class RecordStore:
    """In-memory record collection with JSON-lines persistence."""

    def __init__(self) -> None:
        self._records: List[TuningRecord] = []
        self._best: Dict[tuple, TuningRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TuningRecord]:
        return iter(self._records)

    def add(self, record: TuningRecord) -> None:
        """Append one record, updating the per-(workload, template) best."""
        self._records.append(record)
        if record.ok and record.gflops > 0:
            key = (record.workload, record.template)
            incumbent = self._best.get(key)
            if incumbent is None or record.gflops > incumbent.gflops:
                self._best[key] = record

    def extend(self, records: Iterable[TuningRecord]) -> None:
        for record in records:
            self.add(record)

    def best_for(
        self, workload: Workload, template: str = "direct"
    ) -> Optional[TuningRecord]:
        """Best valid record for ``(workload, template)``, if any."""
        return self._best.get((workload, template))

    def workloads(self) -> List[Workload]:
        """Workloads that have at least one valid record."""
        seen: Dict[Workload, None] = {}
        for workload, _template in self._best:
            seen.setdefault(workload, None)
        return list(seen.keys())

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: Union[str, Path]) -> None:
        """Write all records as JSON lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(record.to_json())
                fh.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RecordStore":
        """Load a JSON-lines record file.

        A malformed line raises :class:`ValueError` naming the 1-based
        line number — except a *final* line that fails to parse as JSON,
        which is the signature of a crash mid-append and is dropped with
        a warning so the surviving prefix replays cleanly.
        """
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            lines = [
                (number, line.strip())
                for number, line in enumerate(fh, start=1)
            ]
        lines = [(number, line) for number, line in lines if line]
        for position, (number, line) in enumerate(lines):
            is_final = position == len(lines) - 1
            try:
                record = TuningRecord.from_json(line)
            except json.JSONDecodeError:
                if is_final:
                    logger.warning(
                        "%s:%d: dropping torn final record line "
                        "(crash mid-append?)",
                        path,
                        number,
                    )
                    break
                raise ValueError(
                    f"{path}:{number}: malformed record line"
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: {exc}") from exc
            store.add(record)
        return store
