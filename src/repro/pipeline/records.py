"""Tuning-record persistence.

AutoTVM logs every measurement as a JSON line and replays logs to apply
the best configuration per workload; :class:`RecordStore` reproduces
that contract: append records during tuning, query the best record per
workload, serialize to / load from JSON-lines files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
    Workload,
)

_WORKLOAD_CLASSES = {
    "conv2d": Conv2DWorkload,
    "depthwise_conv2d": DepthwiseConv2DWorkload,
    "dense": DenseWorkload,
}


def workload_from_dict(data: Dict[str, object]) -> Workload:
    """Inverse of :meth:`Workload.to_dict`."""
    data = dict(data)
    kind = data.pop("kind", None)
    if kind not in _WORKLOAD_CLASSES:
        raise ValueError(f"unknown workload kind {kind!r}")
    return _WORKLOAD_CLASSES[kind](**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class TuningRecord:
    """One logged measurement: workload, config index, result."""

    workload: Workload
    config_index: int
    gflops: float
    tuner_name: str = ""
    error: str = ""
    template: str = "direct"

    @property
    def ok(self) -> bool:
        return not self.error

    def to_json(self) -> str:
        return json.dumps(
            {
                "workload": self.workload.to_dict(),
                "config_index": self.config_index,
                "gflops": self.gflops,
                "tuner": self.tuner_name,
                "error": self.error,
                "template": self.template,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "TuningRecord":
        data = json.loads(line)
        return TuningRecord(
            workload=workload_from_dict(data["workload"]),
            config_index=int(data["config_index"]),
            gflops=float(data["gflops"]),
            tuner_name=data.get("tuner", ""),
            error=data.get("error", ""),
            template=data.get("template", "direct"),
        )


class RecordStore:
    """In-memory record collection with JSON-lines persistence."""

    def __init__(self) -> None:
        self._records: List[TuningRecord] = []
        self._best: Dict[tuple, TuningRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TuningRecord]:
        return iter(self._records)

    def add(self, record: TuningRecord) -> None:
        """Append one record, updating the per-(workload, template) best."""
        self._records.append(record)
        if record.ok and record.gflops > 0:
            key = (record.workload, record.template)
            incumbent = self._best.get(key)
            if incumbent is None or record.gflops > incumbent.gflops:
                self._best[key] = record

    def extend(self, records: Iterable[TuningRecord]) -> None:
        for record in records:
            self.add(record)

    def best_for(
        self, workload: Workload, template: str = "direct"
    ) -> Optional[TuningRecord]:
        """Best valid record for ``(workload, template)``, if any."""
        return self._best.get((workload, template))

    def workloads(self) -> List[Workload]:
        """Workloads that have at least one valid record."""
        seen: Dict[Workload, None] = {}
        for workload, _template in self._best:
            seen.setdefault(workload, None)
        return list(seen.keys())

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: Union[str, Path]) -> None:
        """Write all records as JSON lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(record.to_json())
                fh.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RecordStore":
        """Load a JSON-lines record file."""
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    store.add(TuningRecord.from_json(line))
        return store
