"""End-to-end deployment pipeline (Fig. 1 of the paper).

Model -> graph optimization (fusion) -> task extraction -> node-wise
tuning -> combined deployment, plus the tuning-record store and the
end-to-end latency evaluator that Table I measures.
"""

from repro.pipeline.tasks import extract_tasks, TaskSpec
from repro.pipeline.records import RecordStore, TuningRecord
from repro.pipeline.compiler import (
    DeploymentCompiler,
    CompiledModel,
    LatencySample,
)

__all__ = [
    "extract_tasks",
    "TaskSpec",
    "RecordStore",
    "TuningRecord",
    "DeploymentCompiler",
    "CompiledModel",
    "LatencySample",
]
