"""Tuning-task extraction from computational graphs.

Mirrors AutoTVM's ``extract_from_program``: fuse the graph, collect the
tunable anchor workloads, deduplicate equal workloads into one task
each, and record how many fused kernels share every task (needed to
assemble end-to-end latency).  As in the TVM CUDA tutorials the paper
follows, only convolution-family operators are extracted by default —
that is what makes MobileNet-v1 a 19-task model (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.hardware.measure import SimulatedTask
from repro.nn.fusion import FusedOp, fuse_graph
from repro.nn.graph import Graph
from repro.nn.workloads import Workload

#: operator kinds extracted as tuning tasks by default (TVM tutorial set)
DEFAULT_TUNABLE_OPS: Tuple[str, ...] = ("conv2d", "depthwise_conv2d")


@dataclass
class TaskSpec:
    """One deduplicated tuning task of a model."""

    task_id: int
    workload: Workload
    #: fused-kernel names in the graph that share this workload
    kernel_names: Tuple[str, ...]
    #: schedule template family ('direct' or 'winograd')
    template: str = "direct"

    @property
    def occurrences(self) -> int:
        return len(self.kernel_names)

    @property
    def total_flops(self) -> int:
        """FLOPs contributed to one inference by all occurrences."""
        return self.workload.flops * self.occurrences

    def to_simulated(
        self, device: GpuDevice = GTX_1080_TI, seed: int = 0
    ) -> SimulatedTask:
        """Bind the task to a simulated device environment."""
        return SimulatedTask(
            self.workload, device=device, seed=seed, template=self.template
        )

    def signature(self, device: GpuDevice = GTX_1080_TI) -> "TaskSignature":
        """Canonical content-addressed identity of this task on ``device``.

        Pure function of (workload, template, device class): two
        processes extracting the same model derive byte-identical
        signatures, which is what keys the cross-run tuning log.
        """
        from repro.space.templates import build_space
        from repro.tlog.signature import TaskSignature

        space = build_space(self.workload, self.template)
        return TaskSignature.of(
            self.workload, space, device, template=self.template
        )

    def __repr__(self) -> str:
        return (
            f"TaskSpec(T{self.task_id + 1}, {self.workload.kind}"
            f"/{self.template}, x{self.occurrences})"
        )


def extract_tasks(
    graph: Graph,
    ops: Sequence[str] = DEFAULT_TUNABLE_OPS,
    include_winograd: bool = False,
) -> List[TaskSpec]:
    """Extract deduplicated tuning tasks from ``graph``.

    Tasks are numbered in first-appearance order (T1, T2, ... as in the
    paper's Fig. 5).  With ``include_winograd=True``, every eligible
    convolution additionally yields a Winograd-template task (appended
    after the direct tasks) — the deployment compiler then picks the
    faster template per kernel, as TVM's graph tuner does.
    """
    from repro.space.templates import winograd_applicable

    wanted = set(ops)
    order: List[Workload] = []
    kernels: Dict[Workload, List[str]] = {}
    for fused in fuse_graph(graph):
        workload = fused.workload
        if workload is None or workload.kind not in wanted:
            continue
        if workload not in kernels:
            kernels[workload] = []
            order.append(workload)
        kernels[workload].append(fused.name)
    tasks = [
        TaskSpec(task_id=i, workload=w, kernel_names=tuple(kernels[w]))
        for i, w in enumerate(order)
    ]
    if include_winograd:
        next_id = len(tasks)
        for workload in order:
            if winograd_applicable(workload):
                tasks.append(
                    TaskSpec(
                        task_id=next_id,
                        workload=workload,
                        kernel_names=tuple(kernels[workload]),
                        template="winograd",
                    )
                )
                next_id += 1
    return tasks


def untuned_ops(graph: Graph, ops: Sequence[str] = DEFAULT_TUNABLE_OPS) -> List[FusedOp]:
    """Fused groups that are *not* covered by the extracted tasks.

    Used by the latency evaluator to account for the fixed (non-tuned)
    portion of end-to-end inference time.
    """
    wanted = set(ops)
    out = []
    for fused in fuse_graph(graph):
        if fused.workload is None or fused.workload.kind not in wanted:
            out.append(fused)
    return out
