"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.settings` — the paper's hyper-parameters
  (Sec. V-A) plus a scaling knob for CI-speed runs.
* :mod:`repro.experiments.fig4` — GFLOPS convergence curves (Fig. 4).
* :mod:`repro.experiments.fig5` — per-task #configs and GFLOPS ratios on
  MobileNet-v1 (Fig. 5).
* :mod:`repro.experiments.table1` — end-to-end latency & variance for
  the five models (Table I).
* :mod:`repro.experiments.ablation` — design-choice ablations (batch
  count B, ensemble size Gamma, adaptive radius, TED vs random init).
* :mod:`repro.experiments.transfer` — warm-vs-cold study over the
  cross-run tuning log (:mod:`repro.tlog`).
* :mod:`repro.experiments.adaptive` — measurements saved by the
  adaptive-sampling proposal stage (Chameleon-style).
* :mod:`repro.experiments.crossdevice` — per-device retuning vs
  cross-device tuning-log transfer over the heterogeneous device zoo.
"""

from repro.experiments.settings import (
    ARMS,
    EXTENDED_ARMS,
    ExperimentSettings,
    PAPER_SETTINGS,
)
from repro.experiments.runner import (
    DEFAULT_EARLY_STOPPING,
    run_arm_on_task,
    average_curves,
)
from repro.experiments.engine import ExperimentCell, ExperimentEngine
from repro.experiments.fig4 import run_fig4, Fig4Result
from repro.experiments.fig5 import run_fig5, Fig5Result
from repro.experiments.table1 import run_table1, Table1Result
from repro.experiments.analysis import (
    bootstrap_ci,
    compare_arms,
    curve_auc,
    time_to_fraction,
)
from repro.experiments.report import build_report, summarize_results_dir
from repro.experiments.transfer import (
    WarmColdResult,
    measurements_to_target,
    run_warm_cold,
)
from repro.experiments.adaptive import AdaptiveStudyResult, run_adaptive_study
from repro.experiments.crossdevice import (
    DEFAULT_DEVICES,
    CrossDeviceResult,
    run_cross_device,
)

__all__ = [
    "ExperimentSettings",
    "PAPER_SETTINGS",
    "ARMS",
    "EXTENDED_ARMS",
    "DEFAULT_EARLY_STOPPING",
    "run_arm_on_task",
    "average_curves",
    "ExperimentCell",
    "ExperimentEngine",
    "run_fig4",
    "Fig4Result",
    "run_fig5",
    "Fig5Result",
    "run_table1",
    "Table1Result",
    "bootstrap_ci",
    "compare_arms",
    "curve_auc",
    "time_to_fraction",
    "build_report",
    "summarize_results_dir",
    "WarmColdResult",
    "measurements_to_target",
    "run_warm_cold",
    "AdaptiveStudyResult",
    "run_adaptive_study",
    "DEFAULT_DEVICES",
    "CrossDeviceResult",
    "run_cross_device",
]
