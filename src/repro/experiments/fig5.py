"""Fig. 5: per-task sampling workload and GFLOPS on MobileNet-v1.

For each of the 19 MobileNet-v1 tasks (T1..T19) and each arm, the paper
reports (a) the number of configurations sampled until early stopping
and (b) the best GFLOPS achieved, normalized to AutoTVM's — plus the
AVG column.  The expected shape: BTED samples *more* configurations
than AutoTVM, BTED+BAO samples roughly the same, and both beat AutoTVM
on GFLOPS (by up to ~36.7% / ~47.9% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.engine import ExperimentCell, ExperimentEngine
from repro.experiments.runner import format_table
from repro.experiments.settings import ARMS, ExperimentSettings, PAPER_SETTINGS
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks


@dataclass
class Fig5Result:
    """Per-task averages: ``num_configs`` and ``gflops`` keyed by (task, arm)."""

    model_name: str
    task_ids: List[int]
    num_configs: Dict[Tuple[int, str], float]
    gflops: Dict[Tuple[int, str], float]
    baseline_arm: str = "autotvm"

    def gflops_ratio(self, task_id: int, arm: str) -> float:
        """GFLOPS as a percentage of the baseline arm (Fig. 5(b) y-axis)."""
        base = self.gflops[(task_id, self.baseline_arm)]
        if base <= 0:
            return float("nan")
        return 100.0 * self.gflops[(task_id, arm)] / base

    def average_ratio(self, arm: str) -> float:
        """The AVG bar of Fig. 5(b) for one arm."""
        ratios = [self.gflops_ratio(t, arm) for t in self.task_ids]
        return float(np.mean(ratios))

    def average_configs(self, arm: str) -> float:
        """The AVG bar of Fig. 5(a) for one arm."""
        return float(
            np.mean([self.num_configs[(t, arm)] for t in self.task_ids])
        )

    def arms(self) -> List[str]:
        return sorted({arm for _, arm in self.gflops})

    def report(self) -> str:
        arms = self.arms()
        headers = ["task"] + [f"#conf({a})" for a in arms] + [
            f"GFLOPS%({a})" for a in arms
        ]
        rows = []
        for task_id in self.task_ids:
            row: List[object] = [f"T{task_id + 1}"]
            row += [f"{self.num_configs[(task_id, a)]:.0f}" for a in arms]
            row += [f"{self.gflops_ratio(task_id, a):.1f}" for a in arms]
            rows.append(row)
        avg: List[object] = ["AVG"]
        avg += [f"{self.average_configs(a):.0f}" for a in arms]
        avg += [f"{self.average_ratio(a):.1f}" for a in arms]
        rows.append(avg)
        title = (
            f"Fig. 5 — #configs and GFLOPS ratio vs {self.baseline_arm}, "
            f"{self.model_name}\n"
        )
        return title + format_table(headers, rows)


def run_fig5(
    model_name: str = "mobilenet-v1",
    arms: Sequence[str] = ARMS,
    settings: ExperimentSettings = PAPER_SETTINGS,
    num_trials: Optional[int] = None,
    device: GpuDevice = GTX_1080_TI,
    max_tasks: Optional[int] = None,
    jobs: int = 1,
    measure_cache: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    summary_dir: Optional[str] = None,
    fleet: Optional[str] = None,
) -> Fig5Result:
    """Regenerate the Fig. 5 study (early stopping active, as in the paper).

    ``jobs`` fans the (task, arm, trial) cells over a process pool;
    results are identical to the serial run for any value.
    ``checkpoint_dir`` persists finished cells so an interrupted study
    can be rerun without recomputing them.  ``summary_dir`` collects
    per-cell RunSummary files plus an aggregated ``summary.json``.
    ``fleet`` (a device spec like ``gtx1080ti,titanv``) shards the
    cells across a simulated device pool instead — see
    :mod:`repro.fleet`.
    """
    graph = build_model(model_name)
    tasks = extract_tasks(graph)
    if max_tasks is not None:
        tasks = tasks[:max_tasks]
    trials = num_trials if num_trials is not None else settings.num_trials

    cells = [
        ExperimentCell(
            arm=arm,
            task=spec.to_simulated(device=device, seed=settings.env_seed),
            trial=trial,
            key=(spec.task_id, arm),
        )
        for spec in tasks
        for arm in arms
        for trial in range(trials)
    ]
    with ExperimentEngine(
        settings, jobs=jobs, measure_cache=measure_cache,
        checkpoint_dir=checkpoint_dir, summary_dir=summary_dir,
        fleet=fleet,
    ) as engine:
        results = engine.run_cells(cells)

    counts: Dict[Tuple[int, str], List[float]] = {}
    bests: Dict[Tuple[int, str], List[float]] = {}
    for cell, result in zip(cells, results):
        counts.setdefault(cell.key, []).append(result.num_measurements)
        bests.setdefault(cell.key, []).append(result.best_gflops)
    num_configs = {key: float(np.mean(v)) for key, v in counts.items()}
    gflops = {key: float(np.mean(v)) for key, v in bests.items()}
    return Fig5Result(
        model_name=model_name,
        task_ids=[spec.task_id for spec in tasks],
        num_configs=num_configs,
        gflops=gflops,
        baseline_arm=arms[0],
    )
