"""Fig. 4: GFLOPS convergence on the first two MobileNet-v1 layers.

The paper plots best-so-far GFLOPS against the number of sampled
configurations (up to 1024) for (a) AutoTVM vs BTED on the first layer
and (b) BTED+BAO on the second layer.  This harness runs all requested
arms on the first ``num_layers`` tasks with a fixed measurement budget
(no early stopping, so curves share an x-axis) and averages the curves
over trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.engine import ExperimentCell, ExperimentEngine
from repro.experiments.runner import average_curves
from repro.experiments.settings import ARMS, ExperimentSettings, PAPER_SETTINGS
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks


@dataclass
class Fig4Result:
    """Averaged convergence curves: ``curves[(layer, arm)] -> np.ndarray``."""

    model_name: str
    num_measurements: int
    curves: Dict[Tuple[int, str], np.ndarray]

    def arms(self) -> List[str]:
        return sorted({arm for _, arm in self.curves})

    def layers(self) -> List[int]:
        return sorted({layer for layer, _ in self.curves})

    def final_gflops(self, layer: int, arm: str) -> float:
        """Converged (final) best GFLOPS of one curve."""
        return float(self.curves[(layer, arm)][-1])

    def report(self, checkpoints: Sequence[int] = (64, 256, 512, 1024)) -> str:
        """Text rendering of the curves at selected x positions."""
        from repro.experiments.runner import format_table

        checkpoints = [c for c in checkpoints if c <= self.num_measurements]
        headers = ["layer", "arm"] + [f"@{c}" for c in checkpoints]
        rows = []
        for (layer, arm), curve in sorted(self.curves.items()):
            rows.append(
                [f"T{layer + 1}", arm]
                + [f"{curve[c - 1]:.1f}" for c in checkpoints]
            )
        title = f"Fig. 4 — GFLOPS convergence, {self.model_name}\n"
        return title + format_table(headers, rows)


def run_fig4(
    model_name: str = "mobilenet-v1",
    num_layers: int = 2,
    arms: Sequence[str] = ARMS,
    settings: ExperimentSettings = PAPER_SETTINGS,
    num_measurements: int = 1024,
    num_trials: int = 3,
    device: GpuDevice = GTX_1080_TI,
    jobs: int = 1,
    measure_cache: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    summary_dir: Optional[str] = None,
    fleet: Optional[str] = None,
) -> Fig4Result:
    """Regenerate the Fig. 4 convergence study.

    ``jobs`` fans the (layer, arm, trial) cells over a process pool;
    results are identical to the serial run for any value.
    ``checkpoint_dir`` persists finished cells so an interrupted study
    can be rerun without recomputing them.  ``summary_dir`` collects
    per-cell RunSummary files plus an aggregated ``summary.json``
    (typically the figure's output directory).  ``fleet`` (a device
    spec like ``gtx1080ti,titanv``) shards the cells across a
    simulated device pool instead — see :mod:`repro.fleet`.
    """
    graph = build_model(model_name)
    tasks = extract_tasks(graph)[:num_layers]
    if len(tasks) < num_layers:
        raise ValueError(f"{model_name} has only {len(tasks)} tasks")

    cells = [
        ExperimentCell(
            arm=arm,
            task=spec.to_simulated(device=device, seed=settings.env_seed),
            trial=trial,
            n_trial=num_measurements,
            early_stopping=None,
            key=(spec.task_id, arm),
        )
        for spec in tasks
        for arm in arms
        for trial in range(num_trials)
    ]
    with ExperimentEngine(
        settings, jobs=jobs, measure_cache=measure_cache,
        checkpoint_dir=checkpoint_dir, summary_dir=summary_dir,
        fleet=fleet,
    ) as engine:
        results = engine.run_cells(cells)

    trial_curves: Dict[Tuple[int, str], List[np.ndarray]] = {}
    for cell, result in zip(cells, results):
        trial_curves.setdefault(cell.key, []).append(result.best_curve())
    curves = {
        key: average_curves(curve_list, length=num_measurements)
        for key, curve_list in trial_curves.items()
    }
    return Fig4Result(
        model_name=model_name,
        num_measurements=num_measurements,
        curves=curves,
    )
