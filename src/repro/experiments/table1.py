"""Table I: end-to-end inference latency and variance for five models.

For every model and arm the paper deploys the tuned configuration,
times 600 end-to-end runs, and reports the mean latency (ms) and the
variance across runs, averaged over 10 independent trials — plus the
improvement percentages of BTED and BTED+BAO relative to AutoTVM.
Expected shape: both latency and variance drop from AutoTVM to BTED to
BTED+BAO (paper: −13.83% latency / −67.74% variance on average for the
full framework).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import format_table
from repro.experiments.settings import ARMS, ExperimentSettings, PAPER_SETTINGS
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.nn.zoo import PAPER_MODELS, build_model
from repro.obs import RunObservation, aggregate_summary_dir, write_summary_json
from repro.pipeline.compiler import DeploymentCompiler
from repro.utils.log import get_logger
from repro.utils.rng import derive_seed

logger = get_logger("experiments.table1")


@dataclass
class ModelArmStats:
    """Latency statistics of one (model, arm) cell, averaged over trials."""

    latency_ms: float
    variance: float
    per_trial_latency: List[float]
    per_trial_variance: List[float]


@dataclass
class Table1Result:
    """All cells of Table I plus derived improvement percentages."""

    cells: Dict[Tuple[str, str], ModelArmStats]
    models: List[str]
    arms: List[str]
    baseline_arm: str = "autotvm"

    def latency_delta_pct(self, model: str, arm: str) -> float:
        """Latency change vs the baseline arm, in percent (negative=better)."""
        base = self.cells[(model, self.baseline_arm)].latency_ms
        ours = self.cells[(model, arm)].latency_ms
        return 100.0 * (ours - base) / base

    def variance_delta_pct(self, model: str, arm: str) -> float:
        """Variance change vs the baseline arm, in percent."""
        base = self.cells[(model, self.baseline_arm)].variance
        ours = self.cells[(model, arm)].variance
        return 100.0 * (ours - base) / base

    def average_row(self, arm: str) -> Tuple[float, float]:
        """(mean latency, mean variance) across models for one arm."""
        lat = float(np.mean([self.cells[(m, arm)].latency_ms for m in self.models]))
        var = float(np.mean([self.cells[(m, arm)].variance for m in self.models]))
        return lat, var

    def report(self) -> str:
        headers: List[str] = ["Model"]
        for arm in self.arms:
            headers += [f"{arm} lat(ms)", f"{arm} var"]
            if arm != self.baseline_arm:
                headers += [f"{arm} dLat%", f"{arm} dVar%"]
        rows: List[List[object]] = []
        for model in self.models:
            row: List[object] = [model]
            for arm in self.arms:
                stats = self.cells[(model, arm)]
                row += [f"{stats.latency_ms:.4f}", f"{stats.variance:.6f}"]
                if arm != self.baseline_arm:
                    row += [
                        f"{self.latency_delta_pct(model, arm):+.2f}",
                        f"{self.variance_delta_pct(model, arm):+.2f}",
                    ]
            rows.append(row)
        avg_row: List[object] = ["Average"]
        base_lat, base_var = self.average_row(self.baseline_arm)
        for arm in self.arms:
            lat, var = self.average_row(arm)
            avg_row += [f"{lat:.4f}", f"{var:.6f}"]
            if arm != self.baseline_arm:
                avg_row += [
                    f"{100.0 * (lat - base_lat) / base_lat:+.2f}",
                    f"{100.0 * (var - base_var) / base_var:+.2f}",
                ]
        rows.append(avg_row)
        return "Table I — end-to-end latency and variance\n" + format_table(
            headers, rows
        )


def _table1_cell(
    payload: Tuple[
        str, str, int, ExperimentSettings, GpuDevice, Optional[str]
    ],
) -> Tuple[float, float]:
    """Worker entry point: tune + deploy one (model, arm, trial) cell.

    Returns ``(mean latency ms, variance)``.  All randomness derives
    from the cell coordinates, so execution order is irrelevant.  With
    a summary path, per-task RunSummaries of the deployment's tuning
    runs are written as one ``{"model", "arm", "trial", "tasks"}`` cell
    file.
    """
    model_name, arm, trial, settings, device, summary_path = payload
    graph = build_model(model_name)
    compiler = DeploymentCompiler(
        graph, device=device, env_seed=settings.env_seed
    )
    observation = (
        RunObservation(enable_metrics=False, enable_trace=False)
        if summary_path is not None
        else None
    )
    compiled = compiler.tune(
        arm,
        n_trial=settings.n_trial,
        early_stopping=settings.early_stopping,
        trial_seed=derive_seed(settings.env_seed, "t1", arm, trial),
        tuner_kwargs=settings.tuner_kwargs(arm),
        observation=observation,
    )
    if observation is not None and summary_path is not None:
        write_summary_json(
            summary_path,
            {
                "model": model_name,
                "arm": arm,
                "trial": trial,
                "tasks": [s.to_dict() for s in observation.summaries()],
            },
        )
    sample = compiled.measure_latency(
        num_runs=settings.num_runs,
        seed=derive_seed(settings.env_seed, "runs", trial),
    )
    logger.info(
        "%s/%s trial %d: %.4f ms (var %.6f)",
        model_name,
        arm,
        trial,
        sample.mean_ms,
        sample.variance,
    )
    return sample.mean_ms, sample.variance


def run_table1(
    models: Sequence[str] = tuple(PAPER_MODELS),
    arms: Sequence[str] = ARMS,
    settings: ExperimentSettings = PAPER_SETTINGS,
    device: GpuDevice = GTX_1080_TI,
    num_trials: Optional[int] = None,
    jobs: int = 1,
    summary_dir: Optional[str] = None,
    fleet: Optional[str] = None,
) -> Table1Result:
    """Regenerate Table I (the full five-model end-to-end comparison).

    ``jobs`` fans the (model, arm, trial) cells over a process pool;
    results are identical to the serial run for any value.  ``fleet``
    (a device spec like ``gtx1080ti,titanv``) shards the cells across
    a simulated device pool instead — see :mod:`repro.fleet`.
    ``summary_dir`` collects one RunSummary cell file per (model, arm,
    trial) plus the aggregated ``summary.json``.
    """
    trials = num_trials if num_trials is not None else settings.num_trials
    grid = [
        (model_name, arm, trial)
        for model_name in models
        for arm in arms
        for trial in range(trials)
    ]
    summary_root = Path(summary_dir) if summary_dir is not None else None
    if summary_root is not None:
        summary_root.mkdir(parents=True, exist_ok=True)

    def cell_summary_path(model_name: str, arm: str, trial: int):
        if summary_root is None:
            return None
        slug = re.sub(
            r"[^A-Za-z0-9._+-]+", "_", f"{model_name}-{arm}-t{trial}"
        )
        return str(summary_root / f"cell-{slug}.summary.json")

    payloads = [
        (
            model_name, arm, trial, settings, device,
            cell_summary_path(model_name, arm, trial),
        )
        for model_name, arm, trial in grid
    ]
    with ExperimentEngine(settings, jobs=jobs, fleet=fleet) as engine:
        samples = engine.map(_table1_cell, payloads)
    if summary_root is not None:
        aggregate_summary_dir(str(summary_root))

    lat: Dict[Tuple[str, str], List[float]] = {}
    var: Dict[Tuple[str, str], List[float]] = {}
    for (model_name, arm, _trial), (mean_ms, variance) in zip(grid, samples):
        lat.setdefault((model_name, arm), []).append(mean_ms)
        var.setdefault((model_name, arm), []).append(variance)
    cells = {
        key: ModelArmStats(
            latency_ms=float(np.mean(lat[key])),
            variance=float(np.mean(var[key])),
            per_trial_latency=lat[key],
            per_trial_variance=var[key],
        )
        for key in lat
    }
    return Table1Result(
        cells=cells,
        models=list(models),
        arms=list(arms),
        baseline_arm=arms[0],
    )
