"""Adaptive-sampling study: measurements saved by pruning proposals.

Chameleon's claim (PAPERS.md), checked on this repo's simulator: with
the k-center adaptive-sampling stage on (the ``bted+as`` arm), each
proposed batch shrinks to its diverse representatives, so the early
stopper's no-improvement window fills after fewer *measurements* while
the best-found configuration stays within noise of the unpruned arm.

The study runs a baseline arm and its adaptive counterpart over the
same fig4 task grid (same ``env_seed`` — identical optimization
problems), under early stopping so measurement counts are allowed to
differ, and reports the per-task measurement reduction and best-GFLOPS
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.engine import ExperimentCell, ExperimentEngine
from repro.experiments.settings import ExperimentSettings, PAPER_SETTINGS
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks


@dataclass
class AdaptiveStudyResult:
    """Per-task outcomes: ``measurements[(layer, arm)]`` etc. (trial means)."""

    model_name: str
    baseline_arm: str
    adaptive_arm: str
    layers: List[int]
    measurements: Dict[Tuple[int, str], float]
    best_gflops: Dict[Tuple[int, str], float]

    def measurement_reduction_pct(self) -> float:
        """Mean % fewer measurements the adaptive arm needed."""
        ratios = []
        for layer in self.layers:
            base = self.measurements[(layer, self.baseline_arm)]
            adap = self.measurements[(layer, self.adaptive_arm)]
            if base > 0:
                ratios.append(100.0 * (base - adap) / base)
        return float(np.mean(ratios)) if ratios else 0.0

    def gflops_ratio(self) -> float:
        """Mean adaptive-to-baseline ratio of best-found GFLOPS."""
        ratios = []
        for layer in self.layers:
            base = self.best_gflops[(layer, self.baseline_arm)]
            adap = self.best_gflops[(layer, self.adaptive_arm)]
            if base > 0:
                ratios.append(adap / base)
        return float(np.mean(ratios)) if ratios else 0.0

    def report(self) -> str:
        from repro.experiments.runner import format_table

        headers = [
            "layer",
            f"#meas {self.baseline_arm}",
            f"#meas {self.adaptive_arm}",
            f"best {self.baseline_arm}",
            f"best {self.adaptive_arm}",
        ]
        rows = []
        for layer in self.layers:
            rows.append([
                f"T{layer + 1}",
                f"{self.measurements[(layer, self.baseline_arm)]:.0f}",
                f"{self.measurements[(layer, self.adaptive_arm)]:.0f}",
                f"{self.best_gflops[(layer, self.baseline_arm)]:.1f}",
                f"{self.best_gflops[(layer, self.adaptive_arm)]:.1f}",
            ])
        title = (
            f"Adaptive sampling — {self.model_name}: "
            f"{self.measurement_reduction_pct():.1f}% fewer measurements "
            f"at {100.0 * self.gflops_ratio():.1f}% of baseline GFLOPS\n"
        )
        return title + format_table(headers, rows)


def run_adaptive_study(
    model_name: str = "mobilenet-v1",
    num_layers: int = 2,
    baseline_arm: str = "bted",
    adaptive_arm: str = "bted+as",
    settings: ExperimentSettings = PAPER_SETTINGS,
    n_trial: Optional[int] = None,
    early_stopping: Optional[int] = None,
    num_trials: int = 3,
    device: GpuDevice = GTX_1080_TI,
    jobs: int = 1,
    measure_cache: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    summary_dir: Optional[str] = None,
    fleet: Optional[str] = None,
) -> AdaptiveStudyResult:
    """Run the measurements-saved study on one model's first layers.

    ``n_trial``/``early_stopping`` default to the settings' budgets
    (early stopping stays *on* — it is what converts smaller batches
    into fewer total measurements).  The cell fan-out knobs (``jobs``,
    ``measure_cache``, ``checkpoint_dir``, ``summary_dir``, ``fleet``)
    behave exactly as in :func:`~repro.experiments.fig4.run_fig4`.
    """
    if n_trial is None:
        n_trial = settings.n_trial
    if early_stopping is None:
        early_stopping = settings.early_stopping
    graph = build_model(model_name)
    tasks = extract_tasks(graph)[:num_layers]
    if len(tasks) < num_layers:
        raise ValueError(f"{model_name} has only {len(tasks)} tasks")

    arms: Sequence[str] = (baseline_arm, adaptive_arm)
    cells = [
        ExperimentCell(
            arm=arm,
            task=spec.to_simulated(device=device, seed=settings.env_seed),
            trial=trial,
            n_trial=n_trial,
            early_stopping=early_stopping,
            key=(spec.task_id, arm),
        )
        for spec in tasks
        for arm in arms
        for trial in range(num_trials)
    ]
    with ExperimentEngine(
        settings, jobs=jobs, measure_cache=measure_cache,
        checkpoint_dir=checkpoint_dir, summary_dir=summary_dir,
        fleet=fleet,
    ) as engine:
        results = engine.run_cells(cells)

    meas: Dict[Tuple[int, str], List[float]] = {}
    best: Dict[Tuple[int, str], List[float]] = {}
    for cell, result in zip(cells, results):
        meas.setdefault(cell.key, []).append(float(result.num_measurements))
        best.setdefault(cell.key, []).append(float(result.best_gflops))
    return AdaptiveStudyResult(
        model_name=model_name,
        baseline_arm=baseline_arm,
        adaptive_arm=adaptive_arm,
        layers=[spec.task_id for spec in tasks],
        measurements={k: float(np.mean(v)) for k, v in meas.items()},
        best_gflops={k: float(np.mean(v)) for k, v in best.items()},
    )
