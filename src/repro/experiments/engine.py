"""Parallel experiment engine: fan independent cells over worker processes.

The paper's evaluation is a grid of independent *cells* — one (arm,
task, trial) tuning run, or one (model, arm, trial) end-to-end
deployment.  Nothing couples cells except aggregation at the end, and
every cell's randomness derives from its own coordinates via
:func:`repro.utils.rng.derive_seed`, so executing them on a process
pool in any order produces results bit-identical to the historical
serial loops.  :class:`ExperimentEngine` owns that fan-out; the
``fig4``/``fig5``/``table1`` harnesses all build on it.

``jobs=1`` (the default) runs cells inline in submission order — the
exact code path of the old serial loops, with zero pickling overhead.
"""

from __future__ import annotations

import pickle
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.tuner import TuningResult
from repro.experiments.runner import (
    DEFAULT_EARLY_STOPPING,
    EarlyStoppingArg,
    run_arm_on_task,
)
from repro.experiments.settings import ExperimentSettings
from repro.fleet.devices import Fleet, FleetSpec
from repro.fleet.reporting import write_fleet_report
from repro.fleet.scheduler import FleetRunResult, FleetScheduler, FleetTask
from repro.hardware.executor import MeasureCache
from repro.hardware.measure import SimulatedTask
from repro.obs import (
    TuningObserver,
    aggregate_summary_dir,
    write_summary_json,
)
from repro.utils.io import atomic_pickle_dump
from repro.utils.log import get_logger

logger = get_logger("experiments.engine")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ExperimentCell:
    """One independent unit of the evaluation grid.

    ``key`` is an opaque caller-side identifier (e.g. ``(task_id,
    arm)``) carried through the engine so aggregation code can match
    results to coordinates without relying on list positions.
    """

    arm: str
    task: SimulatedTask
    trial: int = 0
    n_trial: Optional[int] = None
    early_stopping: EarlyStoppingArg = DEFAULT_EARLY_STOPPING
    key: Tuple = field(default=())


def _cell_slug(cell: ExperimentCell) -> str:
    """Stable, filesystem-safe identifier for one cell."""
    return re.sub(
        r"[^A-Za-z0-9._+-]+", "_",
        f"{cell.arm}-{cell.task.name}-t{cell.trial}",
    )


def _cell_checkpoint_name(cell: ExperimentCell) -> str:
    """Completed-cell filename under ``checkpoint_dir``."""
    return f"cell-{_cell_slug(cell)}.done"


def _cell_summary_name(cell: ExperimentCell) -> str:
    """Per-cell RunSummary filename under ``summary_dir``."""
    return f"cell-{_cell_slug(cell)}.summary.json"


def _execute_cell(
    cell: ExperimentCell,
    settings: ExperimentSettings,
    cache: Optional[MeasureCache],
    done_path: Optional[str],
    summary_path: Optional[str],
) -> TuningResult:
    """Run one cell, persisting its summary (then its ``.done`` marker).

    The summary is written *before* the done marker so a crash between
    the two leaves a re-runnable cell, never a done cell with a missing
    summary.
    """
    observer = (
        TuningObserver(enable_metrics=False, enable_trace=False)
        if summary_path is not None
        else None
    )
    result = run_arm_on_task(
        cell.arm,
        cell.task,
        settings,
        trial=cell.trial,
        n_trial=cell.n_trial,
        early_stopping=cell.early_stopping,
        measure_cache=cache,
        on_event=(observer,) if observer is not None else (),
    )
    if observer is not None and summary_path is not None:
        summary = observer.summary()
        summary.task = summary.task or cell.task.name
        write_summary_json(summary_path, summary.to_dict())
    if done_path is not None:
        atomic_pickle_dump(done_path, result)
    return result


def _run_cell(
    payload: Tuple[
        ExperimentCell,
        ExperimentSettings,
        Optional[str],
        Optional[str],
        Optional[str],
    ],
) -> TuningResult:
    """Worker entry point: execute one cell (must stay module-level)."""
    cell, settings, cache_path, done_path, summary_path = payload
    cache = MeasureCache(path=cache_path) if cache_path is not None else None
    return _execute_cell(cell, settings, cache, done_path, summary_path)


class ExperimentEngine:
    """Executes experiment cells, serially or across a process pool.

    Determinism is the contract: for any ``jobs``, results come back in
    submission order and each cell's records are identical to what the
    serial loop produced, because per-cell seeds derive from cell
    coordinates alone.  ``measure_cache`` (a path) lets cells reuse
    previously simulated measurements across trials and arms; with
    ``jobs > 1`` each worker loads the cache read-only (no write-back
    merge across processes).

    ``checkpoint_dir`` makes the grid restartable at cell granularity:
    every finished cell is persisted (atomically) as a ``.done`` file
    keyed by its coordinates, and a re-run with the same directory
    loads those results instead of recomputing them.  Because each cell
    is a pure function of its coordinates, a resumed grid is
    bit-identical to an uninterrupted one.

    ``summary_dir`` attaches a :class:`~repro.obs.TuningObserver` to
    every executed cell and collects per-cell
    ``cell-<slug>.summary.json`` files plus an aggregated
    ``summary.json`` in that directory (the fig4/fig5/table1 harnesses
    point it at their output dirs).  Summaries survive grid restarts:
    a cell loaded from its ``.done`` file keeps the summary written
    when it originally ran.

    ``fleet`` (any :data:`~repro.fleet.FleetSpec`) switches the engine
    from the process pool to the work-stealing
    :class:`~repro.fleet.FleetScheduler`: cells home on device
    ``seq % len(fleet)``, checkpoints land under per-device
    subdirectories, and ``jobs`` becomes the worker-thread count (one
    per device when left at 1).  Cells stay pure functions of their
    coordinates, so fleet results are bit-identical to serial for any
    pool size; the scheduling report lands in
    ``summary_dir/fleet.json`` and on :attr:`fleet_result`.
    """

    def __init__(
        self,
        settings: ExperimentSettings,
        jobs: int = 1,
        measure_cache: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        summary_dir: Optional[str] = None,
        fleet: Optional[FleetSpec] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.settings = settings
        self.jobs = jobs
        self.measure_cache = measure_cache
        self.fleet = Fleet.from_spec(fleet) if fleet is not None else None
        self.fleet_result: Optional[FleetRunResult] = None
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.summary_dir = (
            Path(summary_dir) if summary_dir is not None else None
        )
        if self.summary_dir is not None:
            self.summary_dir.mkdir(parents=True, exist_ok=True)
        self._shared_cache: Optional[MeasureCache] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], payloads: Sequence[T]) -> List[R]:
        """Ordered map of ``fn`` over payloads, inline or on the pool.

        ``fn`` must be a module-level (picklable) callable when
        ``jobs > 1``.  In fleet mode the payloads are sharded across
        the device pool instead (worker threads, no pickling), so
        ``fn`` only needs to be thread-safe.
        """
        payloads = list(payloads)
        if self.fleet is not None and len(payloads) > 1:
            scheduler = FleetScheduler(
                self.fleet,
                lambda task, _device: fn(task.payload),
                jobs=self.jobs if self.jobs > 1 else None,
            )
            fleet_result = scheduler.run(
                [
                    FleetTask(key=f"item-{i:04d}", seq=i, payload=p)
                    for i, p in enumerate(payloads)
                ]
            )
            self.fleet_result = fleet_result
            return [
                fleet_result.results[f"item-{i:04d}"]
                for i in range(len(payloads))
            ]
        if self.jobs == 1 or len(payloads) <= 1:
            return [fn(p) for p in payloads]
        pool = self._ensure_pool()
        return list(pool.map(fn, payloads, chunksize=1))

    def _cell_done_path(
        self, cell: ExperimentCell, seq: Optional[int] = None
    ) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        base = self.checkpoint_dir
        if self.fleet is not None and seq is not None:
            # fleet mode: checkpoints live under the cell's home device
            base = base / self.fleet.home_of(seq).dirname
            base.mkdir(parents=True, exist_ok=True)
        return base / _cell_checkpoint_name(cell)

    def _cell_summary_path(self, cell: ExperimentCell) -> Optional[Path]:
        if self.summary_dir is None:
            return None
        return self.summary_dir / _cell_summary_name(cell)

    def aggregate_summaries(self) -> Optional[dict]:
        """Fold per-cell summary files into ``summary_dir/summary.json``."""
        if self.summary_dir is None:
            return None
        return aggregate_summary_dir(str(self.summary_dir))

    def run_cells(
        self, cells: Sequence[ExperimentCell]
    ) -> List[TuningResult]:
        """Execute every cell; results in submission order.

        With ``checkpoint_dir`` set, cells whose ``.done`` file already
        exists are loaded instead of recomputed.  With ``summary_dir``
        set, every executed cell leaves a RunSummary file and the
        directory-level aggregate is refreshed before returning.
        """
        results: List[Optional[TuningResult]] = [None] * len(cells)
        pending: List[Tuple[int, ExperimentCell, Optional[Path]]] = []
        for i, cell in enumerate(cells):
            done_path = self._cell_done_path(cell, seq=i)
            if done_path is not None and done_path.exists():
                with done_path.open("rb") as fh:
                    results[i] = pickle.load(fh)
            else:
                pending.append((i, cell, done_path))
        logger.info(
            "engine: %d cells (%d cached) on %d worker(s)",
            len(cells), len(cells) - len(pending), self.jobs,
        )
        if self.fleet is not None:
            self._run_cells_fleet(pending, results)
            self.aggregate_summaries()
            return list(results)  # type: ignore[arg-type]
        if self.jobs == 1:
            cache: Optional[MeasureCache] = None
            if self.measure_cache is not None and pending:
                if self._shared_cache is None:
                    self._shared_cache = MeasureCache(path=self.measure_cache)
                cache = self._shared_cache
            for i, cell, done_path in pending:
                summary_path = self._cell_summary_path(cell)
                results[i] = _execute_cell(
                    cell,
                    self.settings,
                    cache,
                    str(done_path) if done_path is not None else None,
                    str(summary_path) if summary_path is not None else None,
                )
            if cache is not None:
                cache.save()
            self.aggregate_summaries()
            return list(results)  # type: ignore[arg-type]
        payloads = []
        for _, cell, done_path in pending:
            summary_path = self._cell_summary_path(cell)
            payloads.append(
                (
                    cell,
                    self.settings,
                    self.measure_cache,
                    str(done_path) if done_path is not None else None,
                    str(summary_path) if summary_path is not None else None,
                )
            )
        for (i, _, _), result in zip(pending, self.map(_run_cell, payloads)):
            results[i] = result
        self.aggregate_summaries()
        return list(results)  # type: ignore[arg-type]

    def _run_cells_fleet(
        self,
        pending: Sequence[Tuple[int, ExperimentCell, Optional[Path]]],
        results: List[Optional[TuningResult]],
    ) -> FleetRunResult:
        """Drain pending cells through the work-stealing fleet scheduler.

        Each worker thread opens the measurement cache read-only per
        cell (the process-pool semantics), and a cell failure raises
        :class:`~repro.fleet.FleetError` after in-flight cells finish —
        their ``.done`` files make the grid resumable.
        """
        by_key = {
            f"cell-{i:04d}-{_cell_slug(cell)}": (i, cell, done_path)
            for i, cell, done_path in pending
        }

        def run(ftask: FleetTask, _executing_device) -> TuningResult:
            _, cell, done_path = by_key[ftask.key]
            summary_path = self._cell_summary_path(cell)
            cache = (
                MeasureCache(path=self.measure_cache)
                if self.measure_cache is not None
                else None
            )
            return _execute_cell(
                cell,
                self.settings,
                cache,
                str(done_path) if done_path is not None else None,
                str(summary_path) if summary_path is not None else None,
            )

        scheduler = FleetScheduler(
            self.fleet, run, jobs=self.jobs if self.jobs > 1 else None
        )
        fleet_result = scheduler.run(
            [FleetTask(key=key, seq=i) for key, (i, _, _) in by_key.items()]
        )
        for key, result in fleet_result.results.items():
            results[by_key[key][0]] = result
        measurements = {
            key: result.num_measurements
            for key, result in fleet_result.results.items()
        }
        report_dir = self.summary_dir or self.checkpoint_dir
        if report_dir is not None:
            write_fleet_report(
                report_dir / "fleet.json", fleet_result, measurements
            )
        self.fleet_result = fleet_result
        return fleet_result

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
