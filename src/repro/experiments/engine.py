"""Parallel experiment engine: fan independent cells over worker processes.

The paper's evaluation is a grid of independent *cells* — one (arm,
task, trial) tuning run, or one (model, arm, trial) end-to-end
deployment.  Nothing couples cells except aggregation at the end, and
every cell's randomness derives from its own coordinates via
:func:`repro.utils.rng.derive_seed`, so executing them on a process
pool in any order produces results bit-identical to the historical
serial loops.  :class:`ExperimentEngine` owns that fan-out; the
``fig4``/``fig5``/``table1`` harnesses all build on it.

``jobs=1`` (the default) runs cells inline in submission order — the
exact code path of the old serial loops, with zero pickling overhead.
"""

from __future__ import annotations

import pickle
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.tuner import TuningResult
from repro.experiments.runner import (
    DEFAULT_EARLY_STOPPING,
    EarlyStoppingArg,
    run_arm_on_task,
)
from repro.experiments.settings import ExperimentSettings
from repro.hardware.executor import MeasureCache
from repro.hardware.measure import SimulatedTask
from repro.utils.io import atomic_pickle_dump
from repro.utils.log import get_logger

logger = get_logger("experiments.engine")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ExperimentCell:
    """One independent unit of the evaluation grid.

    ``key`` is an opaque caller-side identifier (e.g. ``(task_id,
    arm)``) carried through the engine so aggregation code can match
    results to coordinates without relying on list positions.
    """

    arm: str
    task: SimulatedTask
    trial: int = 0
    n_trial: Optional[int] = None
    early_stopping: EarlyStoppingArg = DEFAULT_EARLY_STOPPING
    key: Tuple = field(default=())


def _cell_checkpoint_name(cell: ExperimentCell) -> str:
    """Stable, filesystem-safe completed-cell filename."""
    slug = re.sub(
        r"[^A-Za-z0-9._+-]+", "_",
        f"{cell.arm}-{cell.task.name}-t{cell.trial}",
    )
    return f"cell-{slug}.done"


def _run_cell(
    payload: Tuple[
        ExperimentCell, ExperimentSettings, Optional[str], Optional[str]
    ],
) -> TuningResult:
    """Worker entry point: execute one cell (must stay module-level)."""
    cell, settings, cache_path, done_path = payload
    cache = MeasureCache(path=cache_path) if cache_path is not None else None
    result = run_arm_on_task(
        cell.arm,
        cell.task,
        settings,
        trial=cell.trial,
        n_trial=cell.n_trial,
        early_stopping=cell.early_stopping,
        measure_cache=cache,
    )
    if done_path is not None:
        atomic_pickle_dump(done_path, result)
    return result


class ExperimentEngine:
    """Executes experiment cells, serially or across a process pool.

    Determinism is the contract: for any ``jobs``, results come back in
    submission order and each cell's records are identical to what the
    serial loop produced, because per-cell seeds derive from cell
    coordinates alone.  ``measure_cache`` (a path) lets cells reuse
    previously simulated measurements across trials and arms; with
    ``jobs > 1`` each worker loads the cache read-only (no write-back
    merge across processes).

    ``checkpoint_dir`` makes the grid restartable at cell granularity:
    every finished cell is persisted (atomically) as a ``.done`` file
    keyed by its coordinates, and a re-run with the same directory
    loads those results instead of recomputing them.  Because each cell
    is a pure function of its coordinates, a resumed grid is
    bit-identical to an uninterrupted one.
    """

    def __init__(
        self,
        settings: ExperimentSettings,
        jobs: int = 1,
        measure_cache: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.settings = settings
        self.jobs = jobs
        self.measure_cache = measure_cache
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._shared_cache: Optional[MeasureCache] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], payloads: Sequence[T]) -> List[R]:
        """Ordered map of ``fn`` over payloads, inline or on the pool.

        ``fn`` must be a module-level (picklable) callable when
        ``jobs > 1``.
        """
        payloads = list(payloads)
        if self.jobs == 1 or len(payloads) <= 1:
            return [fn(p) for p in payloads]
        pool = self._ensure_pool()
        return list(pool.map(fn, payloads, chunksize=1))

    def _cell_done_path(self, cell: ExperimentCell) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / _cell_checkpoint_name(cell)

    def run_cells(
        self, cells: Sequence[ExperimentCell]
    ) -> List[TuningResult]:
        """Execute every cell; results in submission order.

        With ``checkpoint_dir`` set, cells whose ``.done`` file already
        exists are loaded instead of recomputed.
        """
        results: List[Optional[TuningResult]] = [None] * len(cells)
        pending: List[Tuple[int, ExperimentCell, Optional[Path]]] = []
        for i, cell in enumerate(cells):
            done_path = self._cell_done_path(cell)
            if done_path is not None and done_path.exists():
                with done_path.open("rb") as fh:
                    results[i] = pickle.load(fh)
            else:
                pending.append((i, cell, done_path))
        logger.info(
            "engine: %d cells (%d cached) on %d worker(s)",
            len(cells), len(cells) - len(pending), self.jobs,
        )
        if self.jobs == 1:
            cache: Optional[MeasureCache] = None
            if self.measure_cache is not None and pending:
                if self._shared_cache is None:
                    self._shared_cache = MeasureCache(path=self.measure_cache)
                cache = self._shared_cache
            for i, cell, done_path in pending:
                result = run_arm_on_task(
                    cell.arm,
                    cell.task,
                    self.settings,
                    trial=cell.trial,
                    n_trial=cell.n_trial,
                    early_stopping=cell.early_stopping,
                    measure_cache=cache,
                )
                if done_path is not None:
                    atomic_pickle_dump(done_path, result)
                results[i] = result
            if cache is not None:
                cache.save()
            return list(results)  # type: ignore[arg-type]
        payloads = [
            (
                cell,
                self.settings,
                self.measure_cache,
                str(done_path) if done_path is not None else None,
            )
            for _, cell, done_path in pending
        ]
        for (i, _, _), result in zip(pending, self.map(_run_cell, payloads)):
            results[i] = result
        return list(results)  # type: ignore[arg-type]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
