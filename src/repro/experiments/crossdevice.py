"""Cross-device study: per-device retuning vs tuning-log transfer.

The device-zoo question (ROADMAP: heterogeneous scenarios; PAPERS.md:
the HW-aware-initialization and Chameleon transfer lines): once one
device class has tuned a model, how much measurement does a *different*
class need when it seeds its search from the foreign records instead of
starting cold?  Two passes over the same tasks per device:

1. **retune** — every device tunes the model cold, recording every
   measurement into one shared :class:`~repro.tlog.TuningLogDB`.  The
   signatures differ only in device class, so the database ends up with
   one segment per (task, device).
2. **transfer** — every device tunes again with ``warm_start=True``,
   hit-serving disabled, and ``warm_device="cross"``: the warm-start
   sources are restricted to segments measured on *other* device
   classes (:meth:`~repro.tlog.TuningLogDB.top_k_similar` with
   ``cross_device=True``).  Its own pass-1 records are invisible, so
   the pass measures pure cross-device transfer.

The headline metric mirrors the warm-vs-cold study: per device,
measurements until 95% of that device's own retuned best.  Transfer
helps exactly to the degree the zoo's optima overlap; the report makes
the asymmetry visible (GPU->GPU transfers well, GPU->CPU less so).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.runner import format_table
from repro.experiments.transfer import measurements_to_target
from repro.hardware.device import device_preset, normalize_device_name
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler
from repro.tlog import TuningLogDB
from repro.utils.log import get_logger

logger = get_logger("experiments.crossdevice")

#: the default zoo: the paper's evaluation GPU, a Volta workstation
#: part, and an embedded module — three distinct cost-model regimes
DEFAULT_DEVICES: Tuple[str, ...] = ("gtx1080ti", "titanv", "jetsontx2")


@dataclass
class CrossDeviceResult:
    """Per-device retune-vs-transfer outcomes of :func:`run_cross_device`."""

    model_name: str
    tuner_name: str
    #: normalized device handles, in study order
    devices: List[str]
    task_ids: List[int]
    #: device -> task -> best GFLOPS of the cold retune pass
    retune_best: Dict[str, Dict[int, float]]
    #: device -> task -> best GFLOPS of the cross-device transfer pass
    transfer_best: Dict[str, Dict[int, float]]
    #: device -> task -> measurements until 95% of the retuned best
    retune_to95: Dict[str, Dict[int, Optional[int]]]
    transfer_to95: Dict[str, Dict[int, Optional[int]]]
    #: device -> task -> pass-2 tuning-log status ("warm"/"cold")
    transfer_status: Dict[str, Dict[int, str]] = field(default_factory=dict)

    def warm_tasks(self, device: str) -> int:
        """Pass-2 tasks on ``device`` that found cross-device sources."""
        return sum(
            1 for s in self.transfer_status.get(device, {}).values()
            if s == "warm"
        )

    def mean_reduction_pct(self, device: str) -> float:
        """Average % reduction in measurements-to-95% on one device."""
        ratios = []
        for task_id in self.task_ids:
            retune = self.retune_to95[device][task_id]
            transfer = self.transfer_to95[device][task_id]
            if retune is None or transfer is None or retune == 0:
                continue
            ratios.append(100.0 * (retune - transfer) / retune)
        return float(np.mean(ratios)) if ratios else 0.0

    def report(self) -> str:
        """Table-1-style per-device rows: retune vs transfer."""
        headers = [
            "device", "task", "retune best", "transfer best",
            "retune→95%", "transfer→95%", "status",
        ]
        rows: List[List[object]] = []
        for device in self.devices:
            for task_id in self.task_ids:
                rows.append([
                    device,
                    f"T{task_id + 1}",
                    f"{self.retune_best[device][task_id]:.1f}",
                    f"{self.transfer_best[device][task_id]:.1f}",
                    str(self.retune_to95[device][task_id]),
                    str(self.transfer_to95[device][task_id]),
                    self.transfer_status.get(device, {}).get(task_id, "-"),
                ])
        lines = [
            f"Cross-device transfer — {self.model_name} / "
            f"{self.tuner_name} across {', '.join(self.devices)}"
        ]
        for device in self.devices:
            lines.append(
                f"  {device}: {self.warm_tasks(device)}/"
                f"{len(self.task_ids)} tasks warm-started from foreign "
                f"records (avg {self.mean_reduction_pct(device):+.1f}% "
                "measurements-to-95% vs retuning)"
            )
        return "\n".join(lines) + "\n" + format_table(headers, rows)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready digest (the CI artifact)."""
        return {
            "model": self.model_name,
            "arm": self.tuner_name,
            "devices": list(self.devices),
            "tasks": [
                {
                    "task_id": task_id,
                    "per_device": {
                        device: {
                            "retune_best": self.retune_best[device][task_id],
                            "transfer_best":
                                self.transfer_best[device][task_id],
                            "retune_to95": self.retune_to95[device][task_id],
                            "transfer_to95":
                                self.transfer_to95[device][task_id],
                            "status": self.transfer_status
                            .get(device, {}).get(task_id, "-"),
                        }
                        for device in self.devices
                    },
                }
                for task_id in self.task_ids
            ],
            "summary": {
                device: {
                    "warm_tasks": self.warm_tasks(device),
                    "mean_reduction_pct":
                        round(self.mean_reduction_pct(device), 3),
                }
                for device in self.devices
            },
        }


def run_cross_device(
    model_name: str = "mobilenet-v1",
    tuner_name: str = "bted",
    n_trial: int = 256,
    early_stopping: Optional[int] = None,
    trial_seed: int = 0,
    env_seed: int = 0,
    devices: Sequence[str] = DEFAULT_DEVICES,
    max_tasks: Optional[int] = None,
    tlog_dir: Optional[Union[str, Path]] = None,
    warm_k: int = 16,
) -> CrossDeviceResult:
    """Run the two-pass cross-device study on one model.

    ``devices`` names at least two distinct preset classes (handles or
    full names).  ``tlog_dir`` persists the shared tuning log across
    passes; by default a temporary directory is used and discarded.
    ``max_tasks`` truncates the task list for CI-speed runs.
    """
    handles = [
        normalize_device_name(device_preset(name).name) for name in devices
    ]
    if len(set(handles)) < 2:
        raise ValueError(
            "the cross-device study needs at least two distinct device "
            f"classes, got {handles!r}"
        )

    tmp: Optional[TemporaryDirectory] = None
    if tlog_dir is None:
        tmp = TemporaryDirectory(prefix="repro-crossdevice-")
        tlog_dir = tmp.name

    retune_best: Dict[str, Dict[int, float]] = {}
    transfer_best: Dict[str, Dict[int, float]] = {}
    retune_to95: Dict[str, Dict[int, Optional[int]]] = {}
    transfer_to95: Dict[str, Dict[int, Optional[int]]] = {}
    transfer_status: Dict[str, Dict[int, str]] = {}
    task_ids: List[int] = []
    try:
        db = TuningLogDB(tlog_dir)

        compilers: Dict[str, DeploymentCompiler] = {}
        for name, handle in zip(devices, handles):
            graph = build_model(model_name)
            compiler = DeploymentCompiler(
                graph, device=device_preset(name), env_seed=env_seed
            )
            if max_tasks is not None:
                compiler.tasks = compiler.tasks[:max_tasks]
            compilers[handle] = compiler
        task_ids = [
            spec.task_id for spec in next(iter(compilers.values())).tasks
        ]

        retuned = {}
        for handle, compiler in compilers.items():
            logger.info(
                "pass 1 (retune): %s on %s via %s",
                model_name, handle, tuner_name,
            )
            retuned[handle] = compiler.tune(
                tuner_name, n_trial=n_trial, early_stopping=early_stopping,
                trial_seed=trial_seed, tlog=db,
            )
        for handle, compiler in compilers.items():
            logger.info(
                "pass 2 (transfer): %s on %s from %d foreign segment(s)",
                model_name, handle, len(db),
            )
            transferred = compiler.tune(
                tuner_name, n_trial=n_trial, early_stopping=early_stopping,
                trial_seed=trial_seed + 1, tlog=db,
                warm_start=True, serve_hits=False, warm_k=warm_k,
                warm_device="cross",
            )
            retune_best[handle] = {}
            transfer_best[handle] = {}
            retune_to95[handle] = {}
            transfer_to95[handle] = {}
            transfer_status[handle] = {}
            for task_id in task_ids:
                cold = retuned[handle].tuning_results[task_id]
                warm = transferred.tuning_results[task_id]
                retune_best[handle][task_id] = cold.best_gflops
                transfer_best[handle][task_id] = warm.best_gflops
                target = 0.95 * cold.best_gflops
                retune_to95[handle][task_id] = measurements_to_target(
                    cold.best_curve(), target
                )
                transfer_to95[handle][task_id] = measurements_to_target(
                    warm.best_curve(), target
                )
                transfer_status[handle][task_id] = (
                    transferred.tlog_status.get(task_id, "-")
                )
    finally:
        if tmp is not None:
            tmp.cleanup()

    return CrossDeviceResult(
        model_name=model_name,
        tuner_name=tuner_name,
        devices=list(dict.fromkeys(handles)),
        task_ids=task_ids,
        retune_best=retune_best,
        transfer_best=transfer_best,
        retune_to95=retune_to95,
        transfer_to95=transfer_to95,
        transfer_status=transfer_status,
    )
