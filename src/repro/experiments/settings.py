"""Experimental settings (Sec. V-A of the paper) with CI scaling.

The paper's protocol: AutoTVM defaults (64 initial points, early
stopping after 400 non-improving measurements), BTED inputs
``(V=D, mu=0.1, M=500, m=64, B=10)``, BAO parameters
``eta=0.05, Gamma=2, tau=1.5, R=3``, 600 timed runs per deployment, and
10 independent trials per algorithm averaged.

A full paper-scale run takes hours even on the simulator, so
:meth:`ExperimentSettings.scaled` shrinks the budgets proportionally
while keeping every algorithmic setting intact; the experiment
harnesses and benchmarks default to a scaled configuration and accept
``scale=1.0`` for the full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.bao import BaoSettings

#: the three experimental arms, in the paper's order
ARMS: Tuple[str, ...] = ("autotvm", "bted", "bted+bao")

#: the paper arms plus the post-paper search arms (coordinate-descent
#: exploitation and adaptive sampling — see ``docs/ARMS.md``)
EXTENDED_ARMS: Tuple[str, ...] = ARMS + (
    "droplet",
    "bted+as",
    "bted+bao+droplet",
)


@dataclass(frozen=True)
class ExperimentSettings:
    """All tunables of the evaluation protocol."""

    # active-learning budgets
    init_size: int = 64
    n_trial: int = 2048
    early_stopping: Optional[int] = 400
    batch_size: int = 64

    # BTED (Alg. 2) inputs
    mu: float = 0.1
    batch_candidates: int = 500
    num_batches: int = 10

    # BAO (Alg. 4) settings
    bao: BaoSettings = field(default_factory=BaoSettings)

    # adaptive sampling (the "+as" arms): plan share kept per batch
    adaptive_keep: float = 0.5
    # batched proposals for the pruned BTED+BAO variant
    adaptive_batch_size: int = 8

    # evaluation protocol
    num_runs: int = 600
    num_trials: int = 10
    env_seed: int = 2021

    def scaled(self, scale: float) -> "ExperimentSettings":
        """Proportionally shrink the budgets (algorithm settings intact).

        ``scale=1.0`` is the paper protocol; ``scale=0.1`` runs ~10x
        fewer measurements/trials.  Floors keep the scaled protocol
        meaningful (at least one init batch, two trials, 100 runs).
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")

        def shrink(v: int, floor: int) -> int:
            return max(floor, int(round(v * scale)))

        return replace(
            self,
            n_trial=shrink(self.n_trial, 2 * self.init_size),
            early_stopping=(
                None
                if self.early_stopping is None
                else shrink(self.early_stopping, self.init_size)
            ),
            batch_candidates=shrink(self.batch_candidates, 2 * self.init_size),
            num_batches=shrink(self.num_batches, 2),
            num_runs=shrink(self.num_runs, 100),
            num_trials=shrink(self.num_trials, 2),
        )

    # ------------------------------------------------------------------

    def tuner_kwargs(self, arm: str) -> Dict[str, object]:
        """Constructor kwargs for :func:`repro.core.make_tuner`."""
        arm = arm.lower()
        if arm in ("autotvm",):
            return {
                "batch_size": self.batch_size,
                "init_size": self.init_size,
            }
        if arm in ("bted", "bted+as"):
            kwargs: Dict[str, object] = {
                "batch_size": self.batch_size,
                "init_size": self.init_size,
                "mu": self.mu,
                "batch_candidates": self.batch_candidates,
                "num_batches": self.num_batches,
            }
            if arm == "bted+as":
                kwargs["adaptive_keep"] = self.adaptive_keep
            return kwargs
        if arm in ("bted+bao", "bted+bao+droplet", "bted+bao+as"):
            kwargs = {
                "init_size": self.init_size,
                "mu": self.mu,
                "batch_candidates": self.batch_candidates,
                "num_batches": self.num_batches,
                "bao_settings": self.bao,
            }
            if arm == "bted+bao+as":
                kwargs["measure_batch_size"] = self.adaptive_batch_size
                kwargs["adaptive_keep"] = self.adaptive_keep
            return kwargs
        if arm == "droplet":
            return {
                "batch_size": self.batch_size,
                "init_size": self.init_size,
            }
        if arm == "ga":
            return {"population_size": self.batch_size}
        if arm in ("random", "grid"):
            return {"batch_size": self.batch_size}
        raise KeyError(f"unknown experimental arm {arm!r}")


#: the exact Sec. V-A configuration
PAPER_SETTINGS = ExperimentSettings()

#: a configuration sized for CI / benchmarking runs
BENCH_SETTINGS = ExperimentSettings().scaled(0.125)
