"""Design-choice ablations (not in the paper; see DESIGN.md §4).

Each ablation isolates one component of the advanced framework:

* :func:`bted_batch_sweep` — effect of the batch count ``B`` on the
  diversity of the initialization set (BTED's core claim: batches buy
  diversity at bounded kernel cost).
* :func:`gamma_sweep` — effect of the bootstrap ensemble size ``Gamma``
  on final tuning quality.
* :func:`adaptive_radius_ablation` — BAO with the adaptive rule vs a
  fixed radius vs compounding widening.
* :func:`init_diversity_comparison` — TED/BTED vs random initialization
  measured by dispersion statistics of the selected sets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.core.bted import bted_select
from repro.experiments.settings import ExperimentSettings
from repro.experiments.runner import run_arm_on_task
from repro.hardware.measure import SimulatedTask
from repro.utils.mathx import pairwise_sq_dists
from repro.utils.rng import derive_seed


@dataclass
class DiversityStats:
    """Dispersion statistics of a selected configuration set."""

    min_distance: float
    mean_distance: float
    mean_nearest_neighbor: float

    @staticmethod
    def of(features: np.ndarray) -> "DiversityStats":
        features = np.asarray(features, dtype=np.float64)
        if len(features) < 2:
            raise ValueError("need at least 2 points")
        sq = pairwise_sq_dists(features, features)
        dist = np.sqrt(sq)
        iu = np.triu_indices(len(dist), k=1)
        off = dist[iu]
        np.fill_diagonal(dist, np.inf)
        return DiversityStats(
            min_distance=float(off.min()),
            mean_distance=float(off.mean()),
            mean_nearest_neighbor=float(dist.min(axis=1).mean()),
        )


def init_diversity_comparison(
    task: SimulatedTask, m: int = 64, seed: int = 0
) -> Dict[str, DiversityStats]:
    """Compare random vs BTED initialization dispersion on one task."""
    space = task.space
    random_indices = space.sample(m, seed=derive_seed(seed, "rand-init"))
    bted_indices = bted_select(space, m=m, seed=derive_seed(seed, "bted-init"))
    return {
        "random": DiversityStats.of(space.feature_matrix(random_indices)),
        "bted": DiversityStats.of(space.feature_matrix(bted_indices)),
    }


def bted_batch_sweep(
    task: SimulatedTask,
    batch_counts: Sequence[int] = (1, 5, 10, 20),
    m: int = 64,
    batch_candidates: int = 500,
    seed: int = 0,
) -> Dict[int, DiversityStats]:
    """Dispersion of the BTED init set as the batch count B varies."""
    out: Dict[int, DiversityStats] = {}
    for b in batch_counts:
        indices = bted_select(
            task.space,
            m=m,
            batch_candidates=batch_candidates,
            num_batches=b,
            seed=derive_seed(seed, "sweep", b),
        )
        out[b] = DiversityStats.of(task.space.feature_matrix(indices))
    return out


def gamma_sweep(
    task: SimulatedTask,
    settings: ExperimentSettings,
    gammas: Sequence[int] = (1, 2, 4),
    num_trials: int = 3,
) -> Dict[int, float]:
    """Mean best GFLOPS of BTED+BAO as the ensemble size Gamma varies."""
    out: Dict[int, float] = {}
    for gamma in gammas:
        sweep_settings = replace(
            settings, bao=replace(settings.bao, gamma=gamma)
        )
        bests: List[float] = []
        for trial in range(num_trials):
            result = run_arm_on_task(
                "bted+bao", task, sweep_settings, trial=trial
            )
            bests.append(result.best_gflops)
        out[gamma] = float(np.mean(bests))
    return out


def adaptive_radius_ablation(
    task: SimulatedTask,
    settings: ExperimentSettings,
    num_trials: int = 3,
) -> Dict[str, float]:
    """BAO radius policies: adaptive (paper), fixed R, compounding tau^k R.

    'fixed' is emulated by an improvement threshold of 0 (the widening
    branch never triggers); 'compound' keeps multiplying by tau while
    stagnating.
    """
    policies = {
        "adaptive": settings.bao,
        "fixed": replace(settings.bao, eta=0.0),
        "compound": replace(settings.bao, compound_radius=True),
    }
    out: Dict[str, float] = {}
    for name, bao in policies.items():
        policy_settings = replace(settings, bao=bao)
        bests: List[float] = []
        for trial in range(num_trials):
            result = run_arm_on_task(
                "bted+bao", task, policy_settings, trial=trial
            )
            bests.append(result.best_gflops)
        out[name] = float(np.mean(bests))
    return out
