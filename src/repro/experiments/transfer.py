"""Warm-vs-cold transfer study over the cross-run tuning log.

Quantifies what :mod:`repro.tlog` buys on a model zoo member with three
passes over the *same* tasks (same ``env_seed``, so the optimization
problems are identical):

1. **cold** — tune from scratch while recording every measurement into
   a fresh :class:`~repro.tlog.TuningLogDB`.
2. **warm** — tune again with ``warm_start=True`` but hit-serving
   disabled, so every task seeds its initial batch (and its cost
   model's :class:`~repro.learning.transfer.TransferHistory`) from the
   database instead of replaying it.
3. **hits** — tune once more with hit-serving enabled: every task now
   resolves to an exact signature hit and finishes with zero
   measurements.

The headline metric is measurements-to-95%: how many measurements each
pass needs before reaching 95% of the *cold* pass's best GFLOPS.  The
warm pass injects the cold incumbent among its seed configurations, so
it reaches the target within its first batch — strictly fewer
measurements than the cold search on any task the cold pass did not
solve immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List, Optional, Union

import numpy as np

from repro.experiments.runner import format_table
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler
from repro.tlog import TuningLogDB
from repro.utils.log import get_logger

logger = get_logger("experiments.transfer")


def measurements_to_target(
    curve: np.ndarray, target: float
) -> Optional[int]:
    """First measurement count whose best-so-far reaches ``target``."""
    curve = np.asarray(curve, dtype=np.float64)
    if len(curve) == 0:
        return None
    hits = np.nonzero(curve >= target)[0]
    if len(hits) == 0:
        return None
    return int(hits[0]) + 1


@dataclass
class WarmColdResult:
    """Per-task warm-vs-cold outcomes of :func:`run_warm_cold`."""

    model_name: str
    tuner_name: str
    task_ids: List[int]
    cold_best: Dict[int, float]
    warm_best: Dict[int, float]
    #: measurements until 95% of the cold best (None = never reached)
    cold_to95: Dict[int, Optional[int]]
    warm_to95: Dict[int, Optional[int]]
    #: third-pass tuning-log statuses (expected: all ``"hit"``)
    hit_status: Dict[int, str] = field(default_factory=dict)
    #: measurements spent by the third (hit-serving) pass
    hit_measurements: int = 0

    @property
    def num_hits(self) -> int:
        return sum(1 for s in self.hit_status.values() if s == "hit")

    def warm_faster_tasks(self) -> List[int]:
        """Tasks where warm start strictly reduced measurements-to-95%."""
        out = []
        for task_id in self.task_ids:
            cold, warm = self.cold_to95[task_id], self.warm_to95[task_id]
            if warm is not None and (cold is None or warm < cold):
                out.append(task_id)
        return out

    def mean_reduction_pct(self) -> float:
        """Average % reduction in measurements-to-95% (warm vs cold)."""
        ratios = []
        for task_id in self.task_ids:
            cold, warm = self.cold_to95[task_id], self.warm_to95[task_id]
            if cold is None or warm is None or cold == 0:
                continue
            ratios.append(100.0 * (cold - warm) / cold)
        return float(np.mean(ratios)) if ratios else 0.0

    def report(self) -> str:
        headers = [
            "task", "cold best", "warm best", "cold→95%", "warm→95%",
            "pass3",
        ]
        rows: List[List[object]] = []
        for task_id in self.task_ids:
            rows.append([
                f"T{task_id + 1}",
                f"{self.cold_best[task_id]:.1f}",
                f"{self.warm_best[task_id]:.1f}",
                str(self.cold_to95[task_id]),
                str(self.warm_to95[task_id]),
                self.hit_status.get(task_id, "-"),
            ])
        title = (
            f"Warm-vs-cold transfer — {self.model_name} / "
            f"{self.tuner_name}: {len(self.warm_faster_tasks())}/"
            f"{len(self.task_ids)} tasks faster warm "
            f"(avg -{self.mean_reduction_pct():.1f}% measurements), "
            f"{self.num_hits} exact hits in pass 3 "
            f"({self.hit_measurements} measurements)\n"
        )
        return title + format_table(headers, rows)


def run_warm_cold(
    model_name: str = "mobilenet-v1",
    tuner_name: str = "bted",
    n_trial: int = 256,
    early_stopping: Optional[int] = None,
    trial_seed: int = 0,
    env_seed: int = 0,
    device: GpuDevice = GTX_1080_TI,
    max_tasks: Optional[int] = None,
    tlog_dir: Optional[Union[str, Path]] = None,
    warm_k: int = 16,
) -> WarmColdResult:
    """Run the three-pass warm-vs-cold study on one model.

    ``tlog_dir`` persists the tuning log between passes (and after the
    study — useful for inspecting the index); by default a temporary
    directory is used and discarded.  ``max_tasks`` truncates the task
    list for CI-speed runs.
    """
    graph = build_model(model_name)
    compiler = DeploymentCompiler(graph, device=device, env_seed=env_seed)
    if max_tasks is not None:
        compiler.tasks = compiler.tasks[:max_tasks]
    task_ids = [spec.task_id for spec in compiler.tasks]

    tmp: Optional[TemporaryDirectory] = None
    if tlog_dir is None:
        tmp = TemporaryDirectory(prefix="repro-tlog-")
        tlog_dir = tmp.name
    try:
        db = TuningLogDB(tlog_dir)

        logger.info("pass 1/3 (cold): %s via %s", model_name, tuner_name)
        cold = compiler.tune(
            tuner_name, n_trial=n_trial, early_stopping=early_stopping,
            trial_seed=trial_seed, tlog=db,
        )
        logger.info("pass 2/3 (warm): seeding from %d tasks", len(db))
        warm = compiler.tune(
            tuner_name, n_trial=n_trial, early_stopping=early_stopping,
            trial_seed=trial_seed + 1, tlog=db,
            warm_start=True, serve_hits=False, warm_k=warm_k,
        )
        logger.info("pass 3/3 (hits): replaying exact signatures")
        hits = compiler.tune(
            tuner_name, n_trial=n_trial, early_stopping=early_stopping,
            trial_seed=trial_seed + 2, tlog=db,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    cold_best: Dict[int, float] = {}
    warm_best: Dict[int, float] = {}
    cold_to95: Dict[int, Optional[int]] = {}
    warm_to95: Dict[int, Optional[int]] = {}
    for task_id in task_ids:
        c = cold.tuning_results[task_id]
        w = warm.tuning_results[task_id]
        cold_best[task_id] = c.best_gflops
        warm_best[task_id] = w.best_gflops
        target = 0.95 * c.best_gflops
        cold_to95[task_id] = measurements_to_target(c.best_curve(), target)
        warm_to95[task_id] = measurements_to_target(w.best_curve(), target)

    return WarmColdResult(
        model_name=model_name,
        tuner_name=tuner_name,
        task_ids=task_ids,
        cold_best=cold_best,
        warm_best=warm_best,
        cold_to95=cold_to95,
        warm_to95=warm_to95,
        hit_status={
            task_id: hits.tlog_status.get(task_id, "-")
            for task_id in task_ids
        },
        hit_measurements=sum(
            hits.tuning_results[t].num_measurements for t in task_ids
        ),
    )
