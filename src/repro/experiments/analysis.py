"""Statistical analysis utilities for experiment results.

The paper reports point averages over 10 trials; a production
reproduction should also quantify uncertainty.  This module provides
bootstrap confidence intervals, a Mann-Whitney U comparison between
arms (does arm A beat arm B more often than chance?), and
convergence-curve summary metrics (AUC, time-to-threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap confidence interval for a statistic."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = 100 * self.confidence
        return f"{self.point:.4g} [{self.low:.4g}, {self.high:.4g}] @{pct:.0f}%"


def bootstrap_ci(
    samples: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for ``statistic``."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or len(samples) < 2:
        raise ValueError("need a 1-D sample of size >= 2")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = as_generator(seed)
    n = len(samples)
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        resampled[i] = statistic(samples[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(statistic(samples)),
        low=float(np.quantile(resampled, alpha)),
        high=float(np.quantile(resampled, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-arm comparison."""

    #: probability that a random draw of A exceeds a random draw of B
    prob_superiority: float
    #: two-sided Mann-Whitney U p-value
    p_value: float
    median_a: float
    median_b: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def compare_arms(
    scores_a: Sequence[float], scores_b: Sequence[float]
) -> ComparisonResult:
    """Mann-Whitney U comparison of two arms' per-trial scores.

    Use per-trial best-GFLOPS (higher is better) or negated latency.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least 2 samples per arm")
    u_stat, p_value = stats.mannwhitneyu(a, b, alternative="two-sided")
    return ComparisonResult(
        prob_superiority=float(u_stat) / (len(a) * len(b)),
        p_value=float(p_value),
        median_a=float(np.median(a)),
        median_b=float(np.median(b)),
    )


def curve_auc(curve: Sequence[float], normalize: bool = True) -> float:
    """Area under a best-so-far curve (higher = faster convergence).

    With ``normalize=True`` the result is the mean of the curve divided
    by its final value — 1.0 means instant convergence.
    """
    curve = np.asarray(curve, dtype=np.float64)
    if len(curve) == 0:
        raise ValueError("empty curve")
    area = float(curve.mean())
    if not normalize:
        return area
    final = float(curve[-1])
    if final <= 0:
        raise ValueError("final value must be positive to normalize")
    return area / final


def time_to_fraction(
    curve: Sequence[float], fraction: float = 0.95
) -> Optional[int]:
    """First measurement index reaching ``fraction`` of the final value.

    Returns ``None`` when the curve never reaches it (possible only for
    fraction > 1).
    """
    curve = np.asarray(curve, dtype=np.float64)
    if len(curve) == 0:
        raise ValueError("empty curve")
    if not 0.0 < fraction:
        raise ValueError("fraction must be positive")
    target = fraction * curve[-1]
    hits = np.nonzero(curve >= target)[0]
    if len(hits) == 0:
        return None
    return int(hits[0]) + 1


def variance_reduction_pct(
    baseline_variance: float, new_variance: float
) -> float:
    """The paper's Delta-variance metric: percent change vs baseline."""
    if baseline_variance <= 0:
        raise ValueError("baseline variance must be positive")
    return 100.0 * (new_variance - baseline_variance) / baseline_variance
