"""Shared experiment-running helpers."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core import make_tuner
from repro.core.checkpoint import CheckpointSpec
from repro.core.tuner import TuningResult
from repro.experiments.settings import ExperimentSettings
from repro.hardware.executor import ExecutorSpec, MeasureCache, build_executor
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.hardware.measure import SimulatedTask
from repro.utils.rng import derive_seed


class DefaultEarlyStopping:
    """Sentinel type: 'use the settings' early-stopping window'.

    Distinct from both an integer window and ``None`` (stopping
    disabled), so callers can explicitly pass ``None`` for fixed-budget
    runs while omission defers to :class:`ExperimentSettings`.
    """

    _instance: Optional["DefaultEarlyStopping"] = None

    def __new__(cls) -> "DefaultEarlyStopping":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DEFAULT_EARLY_STOPPING"


#: pass this (the default) to inherit ``settings.early_stopping``
DEFAULT_EARLY_STOPPING = DefaultEarlyStopping()

EarlyStoppingArg = Union[Optional[int], DefaultEarlyStopping]


def run_arm_on_task(
    arm: str,
    task: SimulatedTask,
    settings: ExperimentSettings,
    trial: int = 0,
    n_trial: Optional[int] = None,
    early_stopping: EarlyStoppingArg = DEFAULT_EARLY_STOPPING,
    executor: ExecutorSpec = None,
    measure_cache: Optional[MeasureCache] = None,
    faults: Optional[FaultModel] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: CheckpointSpec = None,
    resume: bool = False,
    on_event: Sequence = (),
) -> TuningResult:
    """Run one arm on one task for one trial.

    The tuner seed derives from ``(arm, task, trial)`` so trials are
    independent while the task environment stays fixed — and so the
    result is a pure function of the cell coordinates, independent of
    which worker (or in which order) the cell executes.  Pass
    ``early_stopping=None`` to disable stopping (fixed-budget runs, as
    in the Fig. 4 convergence study).  ``executor``/``measure_cache``
    select the measurement backend for the tuner; ``faults``/``retry``
    inject deterministic measurement faults with retry/backoff.

    ``checkpoint`` enables periodic tuning checkpoints; with
    ``resume=True`` and an existing checkpoint file the run continues
    from it, reproducing the uninterrupted measurement stream exactly.
    ``on_event`` sinks (e.g. a :class:`repro.obs.TuningObserver`) are
    forwarded to both the fresh-tune and the resume path.
    """
    seed = derive_seed(settings.env_seed, "trial", arm, task.name, trial)
    executor_spec: ExecutorSpec = executor
    if (
        measure_cache is not None or faults is not None or retry is not None
        or not (executor is None or executor == "serial")
    ):
        def executor_spec(measurer):  # noqa: F811 - intentional rebind
            return build_executor(
                measurer, executor, cache=measure_cache,
                faults=faults, retry=retry,
            )

    tuner = make_tuner(
        arm, task, seed=seed, executor=executor_spec,
        **settings.tuner_kwargs(arm),
    )
    stop = (
        settings.early_stopping
        if isinstance(early_stopping, DefaultEarlyStopping)
        else early_stopping
    )
    try:
        if resume and checkpoint is not None:
            path = checkpoint if isinstance(checkpoint, (str, Path)) else (
                checkpoint.path
            )
            if Path(path).exists():
                return tuner.resume(path, on_event=on_event)
        return tuner.tune(
            n_trial=n_trial if n_trial is not None else settings.n_trial,
            early_stopping=stop,
            checkpoint=checkpoint,
            on_event=on_event,
        )
    finally:
        tuner.shutdown()


def average_curves(
    curves: Sequence[np.ndarray], length: Optional[int] = None
) -> np.ndarray:
    """Average best-so-far curves of possibly different lengths.

    Shorter curves (early-stopped runs) are extended by holding their
    final value, matching how convergence plots treat stopped trials.
    """
    if not curves:
        raise ValueError("no curves to average")
    if length is None:
        length = max(len(c) for c in curves)
    padded = np.empty((len(curves), length))
    for i, curve in enumerate(curves):
        curve = np.asarray(curve, dtype=np.float64)
        if len(curve) == 0:
            raise ValueError("cannot average an empty curve")
        if len(curve) >= length:
            padded[i] = curve[:length]
        else:
            padded[i, : len(curve)] = curve
            padded[i, len(curve):] = curve[-1]
    return padded.mean(axis=0)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table formatting used by all experiment reports."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    for r, row in enumerate(cells):
        line = "  ".join(c.rjust(w) for c, w in zip(row, widths))
        lines.append(line)
        if r == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
