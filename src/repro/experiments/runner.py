"""Shared experiment-running helpers."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import make_tuner
from repro.core.tuner import TuningResult
from repro.experiments.settings import ExperimentSettings
from repro.hardware.measure import SimulatedTask
from repro.utils.rng import derive_seed


def run_arm_on_task(
    arm: str,
    task: SimulatedTask,
    settings: ExperimentSettings,
    trial: int = 0,
    n_trial: Optional[int] = None,
    early_stopping: Optional[int] = "default",  # type: ignore[assignment]
) -> TuningResult:
    """Run one arm on one task for one trial.

    The tuner seed derives from ``(arm, task, trial)`` so trials are
    independent while the task environment stays fixed.  Pass
    ``early_stopping=None`` to disable stopping (fixed-budget runs, as
    in the Fig. 4 convergence study).
    """
    seed = derive_seed(settings.env_seed, "trial", arm, task.name, trial)
    tuner = make_tuner(arm, task, seed=seed, **settings.tuner_kwargs(arm))
    stop = settings.early_stopping if early_stopping == "default" else early_stopping
    return tuner.tune(
        n_trial=n_trial if n_trial is not None else settings.n_trial,
        early_stopping=stop,
    )


def average_curves(
    curves: Sequence[np.ndarray], length: Optional[int] = None
) -> np.ndarray:
    """Average best-so-far curves of possibly different lengths.

    Shorter curves (early-stopped runs) are extended by holding their
    final value, matching how convergence plots treat stopped trials.
    """
    if not curves:
        raise ValueError("no curves to average")
    if length is None:
        length = max(len(c) for c in curves)
    padded = np.empty((len(curves), length))
    for i, curve in enumerate(curves):
        curve = np.asarray(curve, dtype=np.float64)
        if len(curve) == 0:
            raise ValueError("cannot average an empty curve")
        if len(curve) >= length:
            padded[i] = curve[:length]
        else:
            padded[i, : len(curve)] = curve
            padded[i, len(curve):] = curve[-1]
    return padded.mean(axis=0)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table formatting used by all experiment reports."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    for r, row in enumerate(cells):
        line = "  ".join(c.rjust(w) for c, w in zip(row, widths))
        lines.append(line)
        if r == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
