"""Aggregate benchmark artifacts into a single reproduction report.

The benchmarks under ``benchmarks/`` each persist a rendered table to a
results directory; :func:`build_report` stitches them into one markdown
document (the machine-generated companion to EXPERIMENTS.md), and
:func:`summarize_results_dir` gives programmatic access to which
experiments have been regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

#: canonical section order and titles for known artifacts
_SECTIONS = [
    ("fig4_convergence", "Fig. 4 — GFLOPS convergence"),
    ("fig5_mobilenet_tasks", "Fig. 5 — MobileNet-v1 per-task results"),
    ("table1_end_to_end", "Table I — end-to-end latency and variance"),
    ("ablation_bted_batches", "Ablation: BTED batch count"),
    ("ablation_gamma", "Ablation: bootstrap ensemble size"),
    ("ablation_radius_policy", "Ablation: BAO radius policy"),
    ("ablation_neighborhood_metric", "Ablation: neighborhood metric"),
    ("ablation_bao_batch_size", "Ablation: BAO measurement batch"),
    ("ablation_acquisition", "Ablation: acquisition function"),
    ("ablation_evaluation_function", "Ablation: evaluation function"),
    ("winograd_crossover", "Substrate: direct vs Winograd crossover"),
]


@dataclass(frozen=True)
class ResultsSummary:
    """Which known experiment artifacts exist in a results directory."""

    present: List[str]
    missing: List[str]

    @property
    def complete(self) -> bool:
        return not self.missing


def summarize_results_dir(
    results_dir: Union[str, Path]
) -> ResultsSummary:
    """Inventory a benchmark results directory."""
    results_dir = Path(results_dir)
    present = []
    missing = []
    for name, _title in _SECTIONS:
        if (results_dir / f"{name}.txt").exists():
            present.append(name)
        else:
            missing.append(name)
    return ResultsSummary(present=present, missing=missing)


def build_report(
    results_dir: Union[str, Path],
    title: str = "Reproduction report",
    include_missing: bool = True,
) -> str:
    """Render all available artifacts as one markdown document."""
    results_dir = Path(results_dir)
    lines: List[str] = [f"# {title}", ""]
    summary = summarize_results_dir(results_dir)
    lines.append(
        f"{len(summary.present)} of {len(_SECTIONS)} experiment artifacts "
        f"present in `{results_dir}`."
    )
    lines.append("")
    for name, section_title in _SECTIONS:
        path = results_dir / f"{name}.txt"
        lines.append(f"## {section_title}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text(encoding="utf-8").rstrip())
            lines.append("```")
        elif include_missing:
            lines.append(
                f"*not generated — run the `{name}` benchmark*"
            )
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: Union[str, Path],
    output: Union[str, Path],
    title: str = "Reproduction report",
) -> Path:
    """Build the report and write it to ``output``; returns the path."""
    output = Path(output)
    output.write_text(build_report(results_dir, title=title), encoding="utf-8")
    return output
