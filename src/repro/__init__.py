"""repro — reproduction of "Deep Neural Network Hardware Deployment
Optimization via Advanced Active Learning" (Sun, Bai, Geng & Yu,
DATE 2021).

The package implements the paper's advanced active-learning framework
(BTED initialization + Bootstrap-guided adaptive optimization) together
with every substrate it depends on: an AutoTVM-style schedule
configuration space, an XGBoost-style cost model with simulated
annealing, a simulated CUDA GPU measurement environment, the five-model
DNN zoo of the evaluation, and the end-to-end deployment pipeline.

Quickstart::

    from repro import SimulatedTask, make_tuner
    from repro.nn.workloads import Conv2DWorkload

    workload = Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
    task = SimulatedTask(workload, seed=0)
    tuner = make_tuner("bted+bao", task, seed=0)
    result = tuner.tune(n_trial=256, early_stopping=100)
    print(result.best_gflops)
"""

from repro.core import (
    AutoTVMTuner,
    BTEDBAOTuner,
    BTEDTuner,
    BaoSettings,
    DropletTuner,
    EventLog,
    GridTuner,
    RandomTuner,
    TUNER_REGISTRY,
    Tuner,
    TuningEvent,
    TuningResult,
    bted_select,
    make_tuner,
    ted_select,
)
from repro.hardware import (
    GTX_1080_TI,
    GpuDevice,
    MeasureCache,
    Measurer,
    ParallelExecutor,
    SerialExecutor,
    SimulatedTask,
)
from repro.nn.zoo import PAPER_MODELS, build_model
from repro.pipeline import DeploymentCompiler, RecordStore
from repro.space import ConfigSpace, build_space

__version__ = "1.0.0"

__all__ = [
    "AutoTVMTuner",
    "BTEDBAOTuner",
    "BTEDTuner",
    "BaoSettings",
    "DropletTuner",
    "GridTuner",
    "RandomTuner",
    "TUNER_REGISTRY",
    "Tuner",
    "TuningResult",
    "bted_select",
    "make_tuner",
    "ted_select",
    "EventLog",
    "TuningEvent",
    "GTX_1080_TI",
    "GpuDevice",
    "MeasureCache",
    "Measurer",
    "ParallelExecutor",
    "SerialExecutor",
    "SimulatedTask",
    "PAPER_MODELS",
    "build_model",
    "DeploymentCompiler",
    "RecordStore",
    "ConfigSpace",
    "build_space",
    "__version__",
]
