"""Gradient-boosted regression trees — the XGBoost stand-in.

Squared-error boosting with shrinkage, row subsampling, and optional
early stopping on a validation split.  This is the evaluation-function
family used by AutoTVM's cost model [15] and by all three experimental
arms of the paper (the framework is agnostic to the evaluation
function; see Sec. IV).

Two tree back-ends are available:

* ``method="hist"`` (default) — quantile-binned histogram trees
  (:class:`~repro.learning.tree.BinnedRegressionTree`), fast enough for
  BAO's per-iteration ensemble refits;
* ``method="exact"`` — exact greedy CART
  (:class:`~repro.learning.tree.RegressionTree`), the reference
  implementation (supports ``max_features`` column subsampling).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.learning.tree import (
    BinnedRegressionTree,
    RegressionTree,
    apply_bins,
    bin_features,
    predict_stacked,
    stack_trees,
)
from repro.obs.hooks import notify_refit_reuse, refit_reuse_hooks_active
from repro.utils.rng import SeedLike, as_generator

_Tree = Union[RegressionTree, BinnedRegressionTree]


class GradientBoostedTrees:
    """Additive tree ensemble fit by gradient boosting on squared loss."""

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.2,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        subsample: float = 0.9,
        max_features: Optional[float] = None,
        early_stopping_rounds: Optional[int] = None,
        validation_fraction: float = 0.15,
        method: str = "hist",
        n_bins: int = 16,
        seed: SeedLike = None,
        bin_edges: Optional[list] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        if method not in ("hist", "exact"):
            raise ValueError("method must be 'hist' or 'exact'")
        if method == "hist" and max_features is not None:
            raise ValueError("max_features requires method='exact'")
        if bin_edges is not None and method != "hist":
            raise ValueError("bin_edges requires method='hist'")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self.method = method
        self.n_bins = n_bins
        #: optional precomputed quantile bin edges (from
        #: :func:`~repro.learning.tree.bin_features`); lets a bootstrap
        #: ensemble bin the shared design matrix once instead of
        #: re-deriving quantiles per member fit
        self.bin_edges = bin_edges
        self._rng = as_generator(seed)
        self._trees: List[_Tree] = []
        self._edges: Optional[list[np.ndarray]] = None
        self._base: float = 0.0
        self._fitted = False
        self._stack = None  # lazy StackedTrees cache for vectorized predict

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal RNG (used by parallel ensemble fits)."""
        self._rng = as_generator(seed)

    def __getstate__(self):
        # the stacked-predict cache is derivable; keep checkpoints lean
        state = self.__dict__.copy()
        state["_stack"] = None
        return state

    # ------------------------------------------------------------------

    def _new_tree(self) -> _Tree:
        if self.method == "hist":
            return BinnedRegressionTree(
                n_bins=self.n_bins,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
        return RegressionTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            seed=self._rng,
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "GradientBoostedTrees":
        """Fit the ensemble; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            weight = np.ones(n)
        else:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != y.shape:
                raise ValueError("sample_weight must match y")

        if self.method == "hist":
            if self.bin_edges is not None:
                self._edges = self.bin_edges
                codes = apply_bins(X, self._edges)
            else:
                codes, self._edges = bin_features(X, n_bins=self.n_bins)
            data: np.ndarray = codes
        else:
            self._edges = None
            data = X

        use_validation = self.early_stopping_rounds is not None and n >= 20
        if use_validation:
            perm = self._rng.permutation(n)
            n_val = max(1, int(round(self.validation_fraction * n)))
            val_idx = perm[:n_val]
            train_idx = perm[n_val:]
        else:
            train_idx = np.arange(n)
            val_idx = np.empty(0, dtype=np.int64)

        Dt, yt, wt = data[train_idx], y[train_idx], weight[train_idx]
        Dv, yv = data[val_idx], y[val_idx]

        self._base = float(np.dot(wt, yt) / wt.sum())
        self._trees = []
        pred_t = np.full(len(yt), self._base)
        pred_v = np.full(len(yv), self._base)

        best_val = np.inf
        best_len = 0
        rounds_since_best = 0

        for _ in range(self.n_estimators):
            residual = yt - pred_t
            if self.subsample < 1.0 and len(yt) > 4:
                n_sub = max(2, int(round(self.subsample * len(yt))))
                rows = self._rng.choice(len(yt), size=n_sub, replace=False)
            else:
                rows = np.arange(len(yt))
            tree = self._new_tree()
            tree.fit(Dt[rows], residual[rows], sample_weight=wt[rows])
            self._trees.append(tree)
            pred_t += self.learning_rate * tree.predict(Dt)

            if use_validation:
                pred_v += self.learning_rate * tree.predict(Dv)
                val_err = float(np.mean((yv - pred_v) ** 2))
                if val_err < best_val - 1e-12:
                    best_val = val_err
                    best_len = len(self._trees)
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        self._trees = self._trees[:best_len]
                        break
        self._fitted = True
        self._stack = None
        return self

    def fit_more(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_rounds: int,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "GradientBoostedTrees":
        """Warm start: grow ``n_rounds`` extra boosting rounds on (X, y).

        Existing trees, the base prediction, and (for ``method="hist"``)
        the bin edges frozen at the original :meth:`fit` are all kept;
        only the new rounds are fit, against the residual of the current
        ensemble on the given data.  Validation early stopping does not
        apply to the incremental rounds.  Returns ``self``.
        """
        if not self._fitted:
            raise RuntimeError("fit_more requires a fitted model")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        n = X.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            weight = np.ones(n)
        else:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != y.shape:
                raise ValueError("sample_weight must match y")

        if self.method == "hist":
            assert self._edges is not None
            data: np.ndarray = apply_bins(X, self._edges)
        else:
            data = X

        reused = len(self._trees)
        pred_t = self._accumulate(data, n)
        for _ in range(n_rounds):
            residual = y - pred_t
            if self.subsample < 1.0 and n > 4:
                n_sub = max(2, int(round(self.subsample * n)))
                rows = self._rng.choice(n, size=n_sub, replace=False)
            else:
                rows = np.arange(n)
            tree = self._new_tree()
            tree.fit(data[rows], residual[rows], sample_weight=weight[rows])
            self._trees.append(tree)
            pred_t += self.learning_rate * tree.predict(data)
        self._stack = None
        if refit_reuse_hooks_active():
            notify_refit_reuse(reused)
        return self

    def _accumulate(self, data: np.ndarray, n: int) -> np.ndarray:
        """Sum tree predictions over native ``data`` (codes or floats).

        Uses the stacked vectorized forest predict when there is more
        than one tree, accumulating per-tree outputs serially in fit
        order so the result is bit-identical to the per-tree loop.
        """
        out = np.full(n, self._base)
        if len(self._trees) > 1:
            stack = self.__dict__.get("_stack")
            if stack is None or stack.n_trees != len(self._trees):
                stack = stack_trees(self._trees)
                self._stack = stack
            preds = predict_stacked(stack, data)
            for t in range(preds.shape[0]):
                out += self.learning_rate * preds[t]
        else:
            for tree in self._trees:
                out += self.learning_rate * tree.predict(data)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for rows of ``X``."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if self._edges is not None:
            data: np.ndarray = apply_bins(X, self._edges)
        else:
            data = X
        return self._accumulate(data, X.shape[0])

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict from pre-binned integer codes (``method="hist"`` only).

        Lets an ensemble whose members share one set of bin edges apply
        the binning once for the whole candidate scope instead of once
        per member.
        """
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        if self._edges is None:
            raise RuntimeError("predict_binned requires method='hist'")
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise ValueError("codes must be 2-D")
        return self._accumulate(codes, codes.shape[0])

    @property
    def n_trees(self) -> int:
        return len(self._trees)
