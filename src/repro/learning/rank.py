"""Pairwise-rank gradient boosting.

AutoTVM's cost model is trained with a *rank* objective rather than
plain regression [18]: the tuner only needs the model to order
configurations correctly, and rank losses are robust to the heavy right
tail of GFLOPS distributions.  :class:`RankGradientBoostedTrees`
implements LambdaRank-style boosting: each round fits a tree to the
gradient of a pairwise logistic loss

    L = sum_{(i, j): y_i > y_j} log(1 + exp(s_j - s_i))

over a subsampled set of pairs, reusing the fast binned trees.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.learning.tree import BinnedRegressionTree, apply_bins, bin_features
from repro.utils.rng import SeedLike, as_generator


class RankGradientBoostedTrees:
    """Gradient-boosted trees trained on a pairwise logistic rank loss.

    Scores returned by :meth:`predict` order candidates; their absolute
    scale carries no meaning.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.15,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        pairs_per_sample: int = 8,
        n_bins: int = 16,
        seed: SeedLike = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if pairs_per_sample < 1:
            raise ValueError("pairs_per_sample must be >= 1")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.pairs_per_sample = pairs_per_sample
        self.n_bins = n_bins
        self._rng = as_generator(seed)
        self._trees: List[BinnedRegressionTree] = []
        self._edges: Optional[list[np.ndarray]] = None

    def _pair_gradients(
        self, y: np.ndarray, scores: np.ndarray
    ) -> np.ndarray:
        """Negative gradient of the pairwise logistic loss per sample."""
        n = len(y)
        k = min(self.pairs_per_sample, max(n - 1, 1))
        i = np.repeat(np.arange(n), k)
        j = self._rng.integers(0, n, size=n * k)
        keep = y[i] != y[j]
        i, j = i[keep], j[keep]
        if len(i) == 0:
            return np.zeros(n)
        # orient pairs so y[i] > y[j]
        flip = y[i] < y[j]
        i[flip], j[flip] = j[flip], i[flip].copy()
        # d L / d s_i = -sigmoid(s_j - s_i); d L / d s_j = +sigmoid(...)
        sig = 1.0 / (1.0 + np.exp(np.clip(scores[i] - scores[j], -30, 30)))
        grad = np.zeros(n)
        np.add.at(grad, i, sig)
        np.add.at(grad, j, -sig)
        return grad / k

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RankGradientBoostedTrees":
        """Fit the ranking ensemble; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        codes, self._edges = bin_features(X, n_bins=self.n_bins)
        scores = np.zeros(len(y))
        self._trees = []
        for _ in range(self.n_estimators):
            grad = self._pair_gradients(y, scores)
            if not np.any(grad):
                break
            tree = BinnedRegressionTree(
                n_bins=self.n_bins,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(codes, grad)
            self._trees.append(tree)
            scores += self.learning_rate * tree.predict(codes)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Ranking scores (higher = predicted better)."""
        if self._edges is None:
            raise RuntimeError("model is not fitted")
        codes = apply_bins(np.asarray(X, dtype=np.float64), self._edges)
        scores = np.zeros(len(codes))
        for tree in self._trees:
            scores += self.learning_rate * tree.predict(codes)
        return scores

    @property
    def n_trees(self) -> int:
        return len(self._trees)
