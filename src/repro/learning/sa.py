"""Model-guided parallel simulated annealing.

AutoTVM's iterative optimizer [16], [18]: a batch of Markov chains
walks the configuration space, scored by the surrogate model (cheap to
evaluate), and the visited configurations with the highest predicted
scores are proposed for real hardware measurement.  Used by the
baseline AutoTVM arm; the BAO arm replaces this proposal mechanism.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Set

import numpy as np

from repro.space.space import ConfigSpace
from repro.utils.rng import SeedLike, as_generator

ScoreFn = Callable[[np.ndarray], np.ndarray]


def simulated_annealing_search(
    space: ConfigSpace,
    score_fn: ScoreFn,
    plan_size: int,
    seed: SeedLike = None,
    n_chains: int = 128,
    n_steps: int = 150,
    temp_start: float = 1.0,
    temp_end: float = 0.0,
    exclude: Optional[Iterable[int]] = None,
) -> List[int]:
    """Propose ``plan_size`` high-scoring distinct configs.

    ``score_fn`` maps an array of config indices to predicted scores
    (higher is better).  ``exclude`` marks already-measured indices that
    must not be proposed again.  Returns up to ``plan_size`` indices
    sorted by descending predicted score.
    """
    if plan_size <= 0:
        raise ValueError("plan_size must be positive")
    if n_chains <= 0 or n_steps <= 0:
        raise ValueError("n_chains and n_steps must be positive")
    rng = as_generator(seed)
    excluded: Set[int] = set(int(i) for i in exclude) if exclude else set()

    points = space.sample(n_chains, seed=rng)
    scores = score_fn(points)

    # top-k heap of (score, index) over *visited*, non-excluded configs
    heap: List[tuple[float, int]] = []
    in_heap: Set[int] = set()

    def offer(batch_points: np.ndarray, batch_scores: np.ndarray) -> None:
        for idx, s in zip(batch_points, batch_scores):
            idx = int(idx)
            if idx in excluded or idx in in_heap:
                continue
            item = (float(s), idx)
            if len(heap) < plan_size:
                heapq.heappush(heap, item)
                in_heap.add(idx)
            elif item > heap[0]:
                _, evicted = heapq.heappushpop(heap, item)
                in_heap.discard(evicted)
                in_heap.add(idx)

    offer(points, scores)

    temps = np.linspace(temp_start, temp_end, n_steps)
    for temp in temps:
        proposals = np.array(
            [space.random_walk(int(p), seed=rng) for p in points],
            dtype=np.int64,
        )
        prop_scores = score_fn(proposals)
        delta = prop_scores - scores
        if temp > 1e-9:
            accept_prob = np.exp(np.minimum(delta / temp, 0.0))
            accept = (delta > 0) | (rng.random(len(points)) < accept_prob)
        else:
            accept = delta > 0
        points = np.where(accept, proposals, points)
        scores = np.where(accept, prop_scores, scores)
        offer(proposals[accept], prop_scores[accept])

    ranked = sorted(heap, reverse=True)
    return [idx for _, idx in ranked]
