"""Evaluation metrics for cost models.

Tuning cares about *ranking* (which configuration is best) more than
absolute regression error, so alongside RMSE this module provides
pairwise rank accuracy and top-k recall — the metrics used by the
AutoTVM paper to compare cost models.
"""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    if len(y_true) == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root-mean-squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def rank_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of ordered pairs ranked concordantly (ties count half).

    1.0 means the prediction induces exactly the true order; 0.5 is
    chance level.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    n = len(y_true)
    if n < 2:
        raise ValueError("need at least 2 samples for rank accuracy")
    dt = np.sign(y_true[:, None] - y_true[None, :])
    dp = np.sign(y_pred[:, None] - y_pred[None, :])
    mask = np.triu(np.ones((n, n), dtype=bool), k=1) & (dt != 0)
    total = int(mask.sum())
    if total == 0:
        return 1.0  # all-true-ties: any prediction is vacuously concordant
    concordant = float(np.sum((dt == dp) & mask))
    ties = float(np.sum((dp == 0) & mask))
    return (concordant + 0.5 * ties) / total


def top_k_recall(y_true: np.ndarray, y_pred: np.ndarray, k: int) -> float:
    """Fraction of the true top-``k`` items found in the predicted top-``k``."""
    y_true, y_pred = _validate(y_true, y_pred)
    if not 1 <= k <= len(y_true):
        raise ValueError(f"k must be in [1, {len(y_true)}]")
    true_top = set(np.argsort(-y_true, kind="stable")[:k].tolist())
    pred_top = set(np.argsort(-y_pred, kind="stable")[:k].tolist())
    return len(true_top & pred_top) / k
