"""A small MLP regressor (numpy-only) as an alternative evaluation function.

The paper stresses that the advanced framework "is independent of the
specific forms of evaluation functions" (Sec. IV) and anticipates
integration with "deep learning algorithms" (Sec. V-B).  This module
provides that integration point: :class:`MlpRegressor` implements the
same ``fit`` / ``predict`` contract as
:class:`~repro.learning.gbt.GradientBoostedTrees` and can be passed to
:class:`~repro.core.bootstrap.BootstrapEnsemble` via ``model_factory``.

Architecture: input standardization -> ``hidden_layers`` of ReLU
affine blocks -> linear head, trained with Adam on mini-batch MSE.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class MlpRegressor:
    """Multi-layer perceptron regressor trained with Adam on MSE."""

    def __init__(
        self,
        hidden_layers: Sequence[int] = (64, 32),
        epochs: int = 120,
        batch_size: int = 64,
        learning_rate: float = 1e-2,
        weight_decay: float = 1e-5,
        seed: SeedLike = None,
    ):
        if not hidden_layers:
            raise ValueError("need at least one hidden layer")
        if any(h <= 0 for h in hidden_layers):
            raise ValueError("hidden layer widths must be positive")
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self._rng = as_generator(seed)
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------

    def _init_params(self, d_in: int) -> None:
        sizes = [d_in, *self.hidden_layers, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(
                self._rng.normal(0.0, scale, size=(fan_in, fan_out))
            )
            self._biases.append(np.zeros(fan_out))

    def _forward(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Return (output, per-layer post-activations incl. input)."""
        activations = [X]
        h = X
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            h = h @ W + b
            if i != last:
                h = np.maximum(h, 0.0)
            activations.append(h)
        return h[:, 0], activations

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "MlpRegressor":
        """Fit on (X, y); returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        n, d = X.shape
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            w = np.ones(n)
        else:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != y.shape:
                raise ValueError("sample_weight must match y")
        w = w / w.mean()

        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std < 1e-12] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        Xn = (X - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        self._init_params(d)
        m = [np.zeros_like(W) for W in self._weights]
        v = [np.zeros_like(W) for W in self._weights]
        mb = [np.zeros_like(b) for b in self._biases]
        vb = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                rows = order[start:start + self.batch_size]
                xb, yb, wb = Xn[rows], yn[rows], w[rows]
                pred, acts = self._forward(xb)
                # weighted MSE gradient w.r.t. the output
                grad_out = (2.0 / len(rows)) * wb * (pred - yb)
                grad = grad_out[:, None]
                step += 1
                grads_w: List[np.ndarray] = [None] * len(self._weights)  # type: ignore
                grads_b: List[np.ndarray] = [None] * len(self._biases)  # type: ignore
                for i in range(len(self._weights) - 1, -1, -1):
                    a_prev = acts[i]
                    grads_w[i] = a_prev.T @ grad + (
                        self.weight_decay * self._weights[i]
                    )
                    grads_b[i] = grad.sum(axis=0)
                    if i > 0:
                        grad = grad @ self._weights[i].T
                        grad = grad * (acts[i] > 0)
                for i in range(len(self._weights)):
                    m[i] = beta1 * m[i] + (1 - beta1) * grads_w[i]
                    v[i] = beta2 * v[i] + (1 - beta2) * grads_w[i] ** 2
                    mb[i] = beta1 * mb[i] + (1 - beta1) * grads_b[i]
                    vb[i] = beta2 * vb[i] + (1 - beta2) * grads_b[i] ** 2
                    m_hat = m[i] / (1 - beta1**step)
                    v_hat = v[i] / (1 - beta2**step)
                    mb_hat = mb[i] / (1 - beta1**step)
                    vb_hat = vb[i] / (1 - beta2**step)
                    self._weights[i] -= self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps
                    )
                    self._biases[i] -= self.learning_rate * mb_hat / (
                        np.sqrt(vb_hat) + eps
                    )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for rows of ``X``."""
        if self._x_mean is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        Xn = (X - self._x_mean) / self._x_std
        pred, _ = self._forward(Xn)
        return pred * self._y_std + self._y_mean
