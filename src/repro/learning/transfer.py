"""Transfer learning across tuning tasks.

AutoTVM accelerates new tasks with history from previously tuned tasks
[17], [18].  Feature spaces differ across operator templates, so history
transfers only between tasks with equal feature dimension; targets are
normalized per task (GFLOPS scales differ by orders of magnitude across
layers) and history samples get a discounted weight when fitting the
evaluation function of a new task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _TaskRecord:
    task_name: str
    features: np.ndarray
    targets: np.ndarray  # normalized to [0, 1] by the task's best


class TransferHistory:
    """Accumulates (features, normalized score) pairs across tasks."""

    def __init__(self, history_weight: float = 0.25, max_per_task: int = 512):
        if not 0.0 <= history_weight <= 1.0:
            raise ValueError("history_weight must be in [0, 1]")
        if max_per_task < 1:
            raise ValueError("max_per_task must be >= 1")
        self.history_weight = history_weight
        self.max_per_task = max_per_task
        self._records: List[_TaskRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def num_samples(self) -> int:
        return sum(len(r.targets) for r in self._records)

    def add_task(
        self, task_name: str, features: np.ndarray, scores: np.ndarray
    ) -> None:
        """Store one finished task's measured data.

        ``scores`` are raw GFLOPS; they are normalized by the task's
        best score so tasks of different magnitudes mix.  Only the
        ``max_per_task`` best samples are kept.
        """
        features = np.asarray(features, dtype=np.float64)
        scores = np.asarray(scores, dtype=np.float64)
        if features.ndim != 2 or scores.shape != (features.shape[0],):
            raise ValueError("features must be (n, d), scores (n,)")
        if len(scores) == 0:
            return
        best = float(scores.max())
        if best <= 0:
            return
        order = np.argsort(-scores, kind="stable")[: self.max_per_task]
        self._records.append(
            _TaskRecord(
                task_name=task_name,
                features=features[order].copy(),
                targets=scores[order] / best,
            )
        )

    def training_data(
        self,
        feature_dim: int,
        current_features: Optional[np.ndarray] = None,
        current_targets: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Assemble (X, y, weights) mixing history with current-task data.

        History rows (matching ``feature_dim``) get ``history_weight``;
        current rows get weight 1.  Returns empty arrays when nothing
        matches.
        """
        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        ws: List[np.ndarray] = []
        for record in self._records:
            if record.features.shape[1] != feature_dim:
                continue
            xs.append(record.features)
            ys.append(record.targets)
            ws.append(np.full(len(record.targets), self.history_weight))
        if current_features is not None and current_targets is not None:
            current_features = np.asarray(current_features, dtype=np.float64)
            current_targets = np.asarray(current_targets, dtype=np.float64)
            if current_features.shape[1] != feature_dim:
                raise ValueError("current feature dim mismatch")
            best = float(current_targets.max()) if len(current_targets) else 0.0
            norm = best if best > 0 else 1.0
            xs.append(current_features)
            ys.append(current_targets / norm)
            ws.append(np.ones(len(current_targets)))
        if not xs:
            return (
                np.empty((0, feature_dim)),
                np.empty(0),
                np.empty(0),
            )
        return np.vstack(xs), np.concatenate(ys), np.concatenate(ws)
