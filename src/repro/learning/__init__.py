"""Machine-learning substrate for the active-learning loop.

Implements, from scratch on numpy, the three ML components AutoTVM
integrates (Sec. I of the paper): an XGBoost-style gradient-boosted-tree
evaluation function (:mod:`repro.learning.gbt`), model-guided parallel
simulated annealing (:mod:`repro.learning.sa`), and transfer learning
from tuning history (:mod:`repro.learning.transfer`).
"""

from repro.learning.tree import (
    RegressionTree,
    BinnedRegressionTree,
    bin_features,
    apply_bins,
)
from repro.learning.gbt import GradientBoostedTrees
from repro.learning.mlp import MlpRegressor
from repro.learning.rank import RankGradientBoostedTrees
from repro.learning.metrics import rmse, rank_accuracy, top_k_recall
from repro.learning.sa import simulated_annealing_search
from repro.learning.transfer import TransferHistory

__all__ = [
    "RegressionTree",
    "BinnedRegressionTree",
    "bin_features",
    "apply_bins",
    "GradientBoostedTrees",
    "MlpRegressor",
    "RankGradientBoostedTrees",
    "rmse",
    "rank_accuracy",
    "top_k_recall",
    "simulated_annealing_search",
    "TransferHistory",
]
