"""CART regression trees (the weak learner under the boosted ensemble).

Exact greedy splitting on squared error with optional per-sample
weights, depth and leaf-size limits, and feature subsampling.  The
implementation is vectorized per node: candidate thresholds are scanned
with prefix sums, giving O(d · n log n) per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """A binary regression tree fit by exact greedy SSE minimization.

    After :meth:`fit` the node list is flattened into parallel NumPy
    arrays (feature/threshold/left/right/value), so :meth:`predict`
    routes all rows level by level with pure array ops instead of a
    per-node Python loop.  :meth:`predict_reference` keeps the original
    per-node traversal for equivalence tests and benchmarks.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        min_impurity_decrease: float = 1e-12,
        max_features: Optional[float] = None,
        seed: SeedLike = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise ValueError("max_features must be in (0, 1]")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self._rng = as_generator(seed)
        self._nodes: list[_TreeNode] = []
        # flat node arrays (filled by _finalize after fit)
        self._feature: Optional[np.ndarray] = None
        self._threshold: Optional[np.ndarray] = None
        self._left: Optional[np.ndarray] = None
        self._right: Optional[np.ndarray] = None
        self._value: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "RegressionTree":
        """Fit the tree; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D and match X rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            w = np.ones(X.shape[0])
        else:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != y.shape or np.any(w < 0) or w.sum() <= 0:
                raise ValueError("invalid sample weights")

        self._nodes = []
        self._build(X, y, w, np.arange(X.shape[0]), depth=0)
        self._finalize()
        return self

    def _finalize(self) -> None:
        """Flatten the node list into parallel arrays for fast predict."""
        nodes = self._nodes
        count = len(nodes)
        self._feature = np.fromiter(
            (n.feature for n in nodes), dtype=np.int64, count=count
        )
        self._threshold = np.fromiter(
            (n.threshold for n in nodes), dtype=np.float64, count=count
        )
        self._left = np.fromiter(
            (n.left for n in nodes), dtype=np.int64, count=count
        )
        self._right = np.fromiter(
            (n.right for n in nodes), dtype=np.int64, count=count
        )
        self._value = np.fromiter(
            (n.value for n in nodes), dtype=np.float64, count=count
        )

    def _new_node(self) -> int:
        self._nodes.append(_TreeNode())
        return len(self._nodes) - 1

    def _build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        idx: np.ndarray,
        depth: int,
    ) -> int:
        node_id = self._new_node()
        node = self._nodes[node_id]
        w_sub = w[idx]
        y_sub = y[idx]
        total_w = w_sub.sum()
        node.value = float(np.dot(w_sub, y_sub) / total_w)

        if depth >= self.max_depth or len(idx) < 2 * self.min_samples_leaf:
            return node_id
        split = self._best_split(X, y, w, idx)
        if split is None:
            return node_id

        feature, threshold = split
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, y, w, left_idx, depth + 1)
        node.right = self._build(X, y, w, right_idx, depth + 1)
        return node_id

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        idx: np.ndarray,
    ) -> Optional[tuple[int, float]]:
        n_features = X.shape[1]
        if self.max_features is not None:
            k = max(1, int(round(self.max_features * n_features)))
            features = self._rng.choice(n_features, size=k, replace=False)
        else:
            features = np.arange(n_features)

        y_sub = y[idx]
        w_sub = w[idx]
        total_w = w_sub.sum()
        total_wy = np.dot(w_sub, y_sub)
        parent_score = total_wy * total_wy / total_w

        best_gain = self.min_impurity_decrease
        best: Optional[tuple[int, float]] = None
        min_leaf = self.min_samples_leaf

        for feature in features:
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            # skip constant features
            if v_sorted[0] == v_sorted[-1]:
                continue
            wy = (w_sub * y_sub)[order]
            ww = w_sub[order]
            cum_wy = np.cumsum(wy)
            cum_w = np.cumsum(ww)
            # candidate split after position i (1-based prefix)
            # valid when the value actually changes and leaves are big enough
            diffs = v_sorted[1:] != v_sorted[:-1]
            positions = np.nonzero(diffs)[0]
            if min_leaf > 1:
                positions = positions[
                    (positions + 1 >= min_leaf)
                    & (len(idx) - positions - 1 >= min_leaf)
                ]
            if len(positions) == 0:
                continue
            left_wy = cum_wy[positions]
            left_w = cum_w[positions]
            right_wy = total_wy - left_wy
            right_w = total_w - left_w
            gains = (
                left_wy * left_wy / left_w
                + right_wy * right_wy / right_w
                - parent_score
            )
            arg = int(np.argmax(gains))
            if gains[arg] > best_gain:
                best_gain = float(gains[arg])
                pos = positions[arg]
                threshold = 0.5 * (v_sorted[pos] + v_sorted[pos + 1])
                best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for rows of ``X``.

        Depth-bounded vectorized traversal over the flat node arrays:
        each pass advances every not-yet-settled row one level, so the
        cost is O(depth * n) array ops with no per-node Python loop.
        Bit-identical to :meth:`predict_reference`.
        """
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        assert self._feature is not None
        active = np.zeros(X.shape[0], dtype=np.int64)  # current node per row
        rows = np.arange(X.shape[0])
        for _ in range(self.max_depth + 1):
            feats = self._feature[active]
            internal = feats >= 0
            if not internal.any():
                break
            sub = rows[internal]
            act = active[internal]
            go_left = X[sub, feats[internal]] <= self._threshold[act]
            active[sub] = np.where(
                go_left, self._left[act], self._right[act]
            )
        return self._value[active]

    def predict_reference(self, X: np.ndarray) -> np.ndarray:
        """Reference predict: the original per-node routing loop.

        Preserved verbatim for property tests and the hot-path
        benchmark suite; :meth:`predict` must match it element-wise.
        """
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        out = np.empty(X.shape[0])
        active = np.zeros(X.shape[0], dtype=np.int64)  # current node per row
        done = np.zeros(X.shape[0], dtype=bool)
        while not done.all():
            for node_id in np.unique(active[~done]):
                node = self._nodes[node_id]
                rows = np.nonzero((active == node_id) & ~done)[0]
                if node.is_leaf:
                    out[rows] = node.value
                    done[rows] = True
                else:
                    go_left = X[rows, node.feature] <= node.threshold
                    active[rows[go_left]] = node.left
                    active[rows[~go_left]] = node.right
        return out

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a stump leaf).

        Computed by an iterative frontier walk over the flat arrays, so
        arbitrarily deep trees cannot hit the Python recursion limit.
        """
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        assert self._feature is not None
        depth = 0
        frontier = np.zeros(1, dtype=np.int64)
        while True:
            internal = frontier[self._feature[frontier] >= 0]
            if internal.size == 0:
                return depth
            frontier = np.concatenate(
                (self._left[internal], self._right[internal])
            )
            depth += 1


class BinnedRegressionTree:
    """Histogram-based regression tree on pre-binned integer features.

    Works on feature *codes* in ``[0, n_bins)`` (see
    :func:`bin_features`) and grows **level-wise**: one flattened
    ``bincount`` per level accumulates the (node, feature, bin)
    weight/target histograms for every frontier node at once, and prefix
    sums yield all candidate splits' SSE gains simultaneously.  This is
    the LightGBM-style strategy that makes boosted ensembles fast enough
    for a per-iteration refit inside BAO.
    """

    def __init__(
        self,
        n_bins: int,
        max_depth: int = 5,
        min_samples_leaf: int = 2,
        min_impurity_decrease: float = 1e-12,
    ):
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.n_bins = n_bins
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        # flat node arrays (filled by fit)
        self._feature: Optional[np.ndarray] = None
        self._threshold: Optional[np.ndarray] = None
        self._left: Optional[np.ndarray] = None
        self._right: Optional[np.ndarray] = None
        self._value: Optional[np.ndarray] = None

    def fit(
        self,
        codes: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "BinnedRegressionTree":
        """Fit on integer feature codes; returns ``self``."""
        codes = np.asarray(codes)
        y = np.asarray(y, dtype=np.float64)
        if codes.ndim != 2 or y.shape != (codes.shape[0],):
            raise ValueError("codes must be (n, d) and y (n,)")
        n, d = codes.shape
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        if codes.min(initial=0) < 0 or codes.max(initial=0) >= self.n_bins:
            raise ValueError(f"codes must lie in [0, {self.n_bins})")
        w = (
            np.ones(n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if w.shape != y.shape:
            raise ValueError("sample_weight must match y")

        nb = self.n_bins
        codes = codes.astype(np.int64, copy=False)
        feat_offsets = np.arange(d, dtype=np.int64) * nb
        flat = codes + feat_offsets[None, :]
        wy = w * y

        # growable node arrays
        feature = [-1]
        threshold = [0.0]
        left = [-1]
        right = [-1]
        value = [0.0]

        node_of_row = np.zeros(n, dtype=np.int64)
        frontier = [0]

        for depth in range(self.max_depth + 1):
            if not frontier:
                break
            n_slots = len(frontier)
            slot_map = np.full(len(feature), -1, dtype=np.int64)
            slot_map[np.asarray(frontier)] = np.arange(n_slots)
            slot_of_row = slot_map[node_of_row]
            rows = np.nonzero(slot_of_row >= 0)[0]
            if len(rows) == 0:
                break
            slot_r = slot_of_row[rows]

            combined = slot_r[:, None] * (d * nb) + flat[rows]
            size = n_slots * d * nb
            rep_wy = np.repeat(wy[rows], d)
            rep_w = np.repeat(w[rows], d)
            cflat = combined.ravel()
            hist_wy = np.bincount(cflat, weights=rep_wy, minlength=size)
            hist_w = np.bincount(cflat, weights=rep_w, minlength=size)
            hist_n = np.bincount(cflat, minlength=size)
            hist_wy = hist_wy.reshape(n_slots, d, nb)
            hist_w = hist_w.reshape(n_slots, d, nb)
            hist_n = hist_n.reshape(n_slots, d, nb)

            total_wy = hist_wy[:, 0, :].sum(axis=1)
            total_w = hist_w[:, 0, :].sum(axis=1)
            total_n = hist_n[:, 0, :].sum(axis=1)

            # node values (weighted means) for every frontier node
            for s, node_id in enumerate(frontier):
                value[node_id] = float(total_wy[s] / total_w[s])

            if depth >= self.max_depth:
                break

            cum_wy = hist_wy.cumsum(axis=2)[:, :, :-1]
            cum_w = hist_w.cumsum(axis=2)[:, :, :-1]
            cum_n = hist_n.cumsum(axis=2)[:, :, :-1]
            right_wy = total_wy[:, None, None] - cum_wy
            right_w = total_w[:, None, None] - cum_w
            right_n = total_n[:, None, None] - cum_n

            valid = (
                (cum_n >= self.min_samples_leaf)
                & (right_n >= self.min_samples_leaf)
                & (cum_w > 0)
                & (right_w > 0)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = (
                    cum_wy * cum_wy / cum_w
                    + right_wy * right_wy / right_w
                    - (total_wy * total_wy / total_w)[:, None, None]
                )
            gains = np.where(valid, gains, -np.inf)
            flat_gains = gains.reshape(n_slots, d * (nb - 1))
            best_pos = np.argmax(flat_gains, axis=1)
            best_gain = flat_gains[np.arange(n_slots), best_pos]

            split_mask = np.isfinite(best_gain) & (
                best_gain > self.min_impurity_decrease
            )
            if not split_mask.any():
                break

            # register children for split slots
            slot_feature = np.full(n_slots, -1, dtype=np.int64)
            slot_threshold = np.zeros(n_slots)
            slot_left = np.full(n_slots, -1, dtype=np.int64)
            slot_right = np.full(n_slots, -1, dtype=np.int64)
            new_frontier = []
            for s, node_id in enumerate(frontier):
                if not split_mask[s]:
                    continue
                f, t = divmod(int(best_pos[s]), nb - 1)
                left_id = len(feature)
                right_id = left_id + 1
                feature.extend([-1, -1])
                threshold.extend([0.0, 0.0])
                left.extend([-1, -1])
                right.extend([-1, -1])
                value.extend([value[node_id], value[node_id]])
                feature[node_id] = f
                threshold[node_id] = float(t)
                left[node_id] = left_id
                right[node_id] = right_id
                slot_feature[s] = f
                slot_threshold[s] = t
                slot_left[s] = left_id
                slot_right[s] = right_id
                new_frontier.extend([left_id, right_id])

            # route rows of split slots to their children
            routed = split_mask[slot_r]
            r_rows = rows[routed]
            r_slots = slot_r[routed]
            go_left = (
                codes[r_rows, slot_feature[r_slots]]
                <= slot_threshold[r_slots]
            )
            node_of_row[r_rows] = np.where(
                go_left, slot_left[r_slots], slot_right[r_slots]
            )
            frontier = new_frontier

        self._feature = np.asarray(feature, dtype=np.int64)
        self._threshold = np.asarray(threshold)
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._value = np.asarray(value)
        return self

    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Predict for integer feature codes (same binning as fit)."""
        if self._feature is None:
            raise RuntimeError("tree is not fitted")
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise ValueError("codes must be 2-D")
        active = np.zeros(codes.shape[0], dtype=np.int64)
        rows = np.arange(codes.shape[0])
        for _ in range(self.max_depth + 1):
            feats = self._feature[active]
            internal = feats >= 0
            if not internal.any():
                break
            sub = rows[internal]
            act = active[internal]
            go_left = codes[sub, feats[internal]] <= self._threshold[act]
            active[sub] = np.where(
                go_left, self._left[act], self._right[act]
            )
        return self._value[active]

    @property
    def node_count(self) -> int:
        if self._feature is None:
            raise RuntimeError("tree is not fitted")
        return len(self._feature)


@dataclass
class StackedTrees:
    """Flat node arrays of several fitted trees padded into 2-D stacks.

    Row ``t`` holds tree ``t``'s parallel node arrays (padded with leaf
    sentinels), so :func:`predict_stacked` can route *all trees × all
    rows* level-synchronously in a handful of array ops instead of one
    Python-level traversal per tree.  Works for both
    :class:`RegressionTree` and :class:`BinnedRegressionTree` — they
    share the same flat layout.
    """

    feature: np.ndarray  # (n_trees, max_nodes) int64; -1 marks leaves/padding
    threshold: np.ndarray  # (n_trees, max_nodes) float64
    left: np.ndarray  # (n_trees, max_nodes) int64
    right: np.ndarray  # (n_trees, max_nodes) int64
    value: np.ndarray  # (n_trees, max_nodes) float64
    max_depth: int

    @property
    def n_trees(self) -> int:
        return self.feature.shape[0]


def stack_trees(trees) -> StackedTrees:
    """Pad fitted trees' flat node arrays into a :class:`StackedTrees`."""
    if not trees:
        raise ValueError("cannot stack zero trees")
    for tree in trees:
        if tree._feature is None:
            raise RuntimeError("all trees must be fitted before stacking")
    count = len(trees)
    width = max(tree._feature.size for tree in trees)
    feature = np.full((count, width), -1, dtype=np.int64)
    threshold = np.zeros((count, width))
    left = np.zeros((count, width), dtype=np.int64)
    right = np.zeros((count, width), dtype=np.int64)
    value = np.zeros((count, width))
    for t, tree in enumerate(trees):
        size = tree._feature.size
        feature[t, :size] = tree._feature
        threshold[t, :size] = tree._threshold
        left[t, :size] = tree._left
        right[t, :size] = tree._right
        value[t, :size] = tree._value
    depth = max(tree.max_depth for tree in trees)
    return StackedTrees(feature, threshold, left, right, value, depth)


def predict_stacked(stacked: StackedTrees, data: np.ndarray) -> np.ndarray:
    """Per-tree predictions for ``data``, shape ``(n_trees, n_rows)``.

    Routes every (tree, row) pair one level per pass over the stacked
    arrays; each output row is bit-identical to the corresponding
    tree's own :meth:`predict` (same comparisons, same leaf values).
    ``data`` is the tree family's native input: float features for
    :class:`RegressionTree`, integer codes for
    :class:`BinnedRegressionTree`.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be 2-D")
    n = data.shape[0]
    active = np.zeros((stacked.n_trees, n), dtype=np.int64)
    col = np.arange(n)[None, :]
    for _ in range(stacked.max_depth + 1):
        feats = np.take_along_axis(stacked.feature, active, axis=1)
        internal = feats >= 0
        if not internal.any():
            break
        # feats == -1 wraps to the last column, but those lanes are
        # masked out of the routing update below
        xv = data[col, feats]
        thr = np.take_along_axis(stacked.threshold, active, axis=1)
        go_left = xv <= thr
        nxt = np.where(
            go_left,
            np.take_along_axis(stacked.left, active, axis=1),
            np.take_along_axis(stacked.right, active, axis=1),
        )
        active = np.where(internal, nxt, active)
    return np.take_along_axis(stacked.value, active, axis=1)


def bin_features(
    X: np.ndarray, n_bins: int = 32
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Quantile-bin a float feature matrix into integer codes.

    Returns ``(codes, edges)`` where ``codes[i, f]`` is the bin of
    ``X[i, f]`` and ``edges[f]`` are the f-th feature's inner bin edges
    (usable with :func:`apply_bins` on new data).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    edges: list[np.ndarray] = []
    codes = np.empty(X.shape, dtype=np.int64)
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    for f in range(X.shape[1]):
        col = X[:, f]
        edge = np.unique(np.quantile(col, quantiles))
        edges.append(edge)
        codes[:, f] = np.searchsorted(edge, col, side="left")
    return codes, edges


def apply_bins(X: np.ndarray, edges: list[np.ndarray]) -> np.ndarray:
    """Bin new data with edges produced by :func:`bin_features`."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != len(edges):
        raise ValueError(f"X must be (n, {len(edges)})")
    codes = np.empty(X.shape, dtype=np.int64)
    for f, edge in enumerate(edges):
        codes[:, f] = np.searchsorted(edge, X[:, f], side="left")
    return codes
