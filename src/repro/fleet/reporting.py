"""Fleet-level reporting: device summaries, ordinal streams, aggregates.

Each device of a fleet run emits its own observability artifacts: the
:class:`~repro.obs.RunSummary` list of the tasks homed on it (written
as one ``cell-device-NN.summary.json`` per device so the existing
:func:`repro.obs.aggregate_summary_dir` flow folds them into the
fleet-level ``summary.json``), and its measurement-ordinal stream —
the concatenation of its homed tasks' ordinal ranges, which is
deterministic by construction because noise and fault schedules are
keyed by task-local ordinals.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.fleet.scheduler import FleetRunResult
from repro.obs import aggregate_summary_dir, write_summary_json
from repro.utils.io import atomic_write_text


def device_ordinal_spans(
    result: FleetRunResult,
    measurements: Mapping[str, int],
) -> Dict[int, List[Tuple[str, int, int]]]:
    """Per-device measurement-ordinal stream as ``(key, start, stop)``.

    ``measurements`` maps each task key to its measurement count; a
    device's stream concatenates its homed tasks in home (submission)
    order.  Pure in the deterministic sharding, so the spans are
    identical for every ``jobs`` value and steal schedule.
    """
    spans: Dict[int, List[Tuple[str, int, int]]] = {}
    for report in result.reports:
        cursor = 0
        rows: List[Tuple[str, int, int]] = []
        for key in report.homed:
            count = int(measurements.get(key, 0))
            rows.append((key, cursor, cursor + count))
            cursor += count
        spans[report.index] = rows
        report.measurements = cursor
    return spans


def fleet_report_dict(
    result: FleetRunResult,
    measurements: Optional[Mapping[str, int]] = None,
) -> Dict[str, Any]:
    """JSON-ready digest of one fleet run (the ``fleet.json`` artifact).

    Home assignments and ordinal spans are deterministic; ``executed``
    and steal counts describe the actual (jobs-dependent) schedule.
    """
    spans = (
        device_ordinal_spans(result, measurements)
        if measurements is not None
        else {}
    )
    total_measurements = sum(r.measurements for r in result.reports)
    by_class: Dict[str, Dict[str, Any]] = {}
    for report in result.reports:
        row = by_class.setdefault(
            report.device_class or report.name,
            {
                "devices": 0,
                "homed": 0,
                "executed": 0,
                "stolen_in": 0,
                "stolen_out": 0,
                "measurements": 0,
            },
        )
        row["devices"] += 1
        row["homed"] += len(report.homed)
        row["executed"] += len(report.executed)
        row["stolen_in"] += report.stolen_in
        row["stolen_out"] += report.stolen_out
        row["measurements"] += report.measurements
    for row in by_class.values():
        row["utilization"] = (
            round(row["measurements"] / total_measurements, 6)
            if total_measurements
            else 0.0
        )
    return {
        "devices": [
            {
                "index": report.index,
                "name": report.name,
                "device_class": report.device_class,
                "homed": list(report.homed),
                "executed": list(report.executed),
                "stolen_in": report.stolen_in,
                "stolen_out": report.stolen_out,
                "measurements": report.measurements,
                "ordinal_spans": [
                    list(span) for span in spans.get(report.index, [])
                ],
            }
            for report in result.reports
        ],
        "by_class": {key: by_class[key] for key in sorted(by_class)},
        "assignments": dict(sorted(result.assignments.items())),
        "steals": [
            {"key": s.key, "victim": s.victim, "thief": s.thief}
            for s in result.steals
        ],
        "tasks": len(result.results),
    }


def write_fleet_report(
    path: Union[str, Path],
    result: FleetRunResult,
    measurements: Optional[Mapping[str, int]] = None,
) -> None:
    """Atomically write :func:`fleet_report_dict` as sorted JSON."""
    atomic_write_text(
        str(path),
        json.dumps(
            fleet_report_dict(result, measurements),
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )


def write_device_summaries(
    summary_dir: Union[str, Path],
    result: FleetRunResult,
    summaries: Mapping[str, Any],
) -> Dict[str, Any]:
    """Write one summary file per device, then the fleet aggregate.

    ``summaries`` maps task keys to :class:`~repro.obs.RunSummary`
    instances (or their dicts); each device's file wraps its homed
    tasks' summaries in the ``{"tasks": [...]}`` cell shape the
    aggregator already understands.  Returns the fleet aggregate that
    :func:`repro.obs.aggregate_summary_dir` wrote to ``summary.json``.
    """
    summary_dir = Path(summary_dir)
    summary_dir.mkdir(parents=True, exist_ok=True)
    for report in result.reports:
        rows = []
        for key in report.homed:
            summary = summaries.get(key)
            if summary is None:
                continue
            rows.append(
                summary if isinstance(summary, dict) else summary.to_dict()
            )
        write_summary_json(
            str(summary_dir / f"cell-{report.index:02d}-device.summary.json"),
            {
                "device": report.name,
                "index": report.index,
                "tasks": rows,
            },
        )
    return aggregate_summary_dir(str(summary_dir))
