"""Fleet scheduling: shard tuning tasks across a simulated device pool.

The paper tunes on a single GTX 1080 Ti; this package supplies the
scaling step — a work-stealing scheduler (:class:`FleetScheduler`)
that shards the per-task tuning runs of a deployment compile (and
experiment-grid cells) across a pool of named devices
(:class:`Fleet` / :class:`FleetDevice`), while keeping every task's
records bit-identical to a serial single-device run.  See
``docs/EXECUTION.md`` ("Fleet scheduling") for the determinism
contract and the CLI quickstart.
"""

from repro.fleet.devices import (
    Fleet,
    FleetDevice,
    FleetSpec,
    parse_device,
    parse_fleet,
)
from repro.fleet.reporting import (
    device_ordinal_spans,
    fleet_report_dict,
    write_device_summaries,
    write_fleet_report,
)
from repro.fleet.scheduler import (
    DeviceReport,
    FleetError,
    FleetRunResult,
    FleetScheduler,
    FleetTask,
    StealRecord,
)

__all__ = [
    "DeviceReport",
    "Fleet",
    "FleetDevice",
    "FleetError",
    "FleetRunResult",
    "FleetScheduler",
    "FleetSpec",
    "FleetTask",
    "StealRecord",
    "device_ordinal_spans",
    "fleet_report_dict",
    "parse_device",
    "parse_fleet",
    "write_device_summaries",
    "write_fleet_report",
]
