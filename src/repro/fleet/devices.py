"""Simulated measurement fleet: named devices, queues' identities, faults.

A fleet models the measurement farm that distributed auto-tuners
assume (AutoTVM's RPC tracker, Ansor's measurement servers): a pool of
execution hosts that deploy tuning tasks concurrently.  Each
:class:`FleetDevice` pairs one :class:`~repro.hardware.device.GpuDevice`
preset (optionally re-fitted against observed timings via
:meth:`FleetDevice.calibrated`) with its own fault characteristics.

Determinism contract (see ``docs/EXECUTION.md``):

* Every task has a deterministic **home device** — position ``seq`` in
  the submission order homes on device ``seq % len(fleet)`` — and the
  home device, never the executing worker, supplies the task's cost
  model (the ``GpuDevice`` it is measured on), fault model, tuning-log
  identity, and checkpoint directory.  Work stealing moves
  *execution*, not identity: a task stolen by another worker is still
  measured on its home device's simulator.
* Measurement noise and fault schedules are pure functions of
  task-local ordinals (each task's measurer counts from 0), so a
  device's measurement-ordinal stream is the concatenation of its
  homed tasks' streams — independent of pool size, steal order, and
  interleaving.
* When every device inherits the fleet-level fault model (no
  per-device override), task records are additionally bit-identical to
  a serial single-device run for **any** pool size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from repro.hardware.device import (
    GTX_1080_TI,
    GpuDevice,
    device_preset,
    normalize_device_name,
)
from repro.hardware.faults import FaultModel


@dataclass(frozen=True)
class FleetDevice:
    """One execution slot of the fleet: a device plus its fault profile.

    ``fault_rate``/``fault_seed`` override the fleet-level fault model
    for tasks homed on this device (``None`` inherits the fleet
    default; an explicit ``0.0`` disables injection on this device).
    """

    index: int
    device: GpuDevice = GTX_1080_TI
    fault_rate: Optional[float] = None
    fault_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("device index must be non-negative")
        if self.fault_rate is not None and not 0.0 <= self.fault_rate < 1.0:
            raise ValueError("fault_rate must be in [0, 1)")

    @property
    def label(self) -> str:
        """Device class, e.g. ``gtx1080ti`` (reports, tlog identity)."""
        return normalize_device_name(self.device.name)

    @property
    def dirname(self) -> str:
        """Per-device checkpoint subdirectory name (stable, index-keyed)."""
        return f"device-{self.index:02d}"

    def fault_model(
        self, default: Optional[FaultModel] = None
    ) -> Optional[FaultModel]:
        """The fault model applied to tasks homed on this device.

        With no per-device override this is exactly the fleet default,
        which is what makes a uniform fleet bit-identical to a serial
        run; an override keeps the default's seed unless the device
        pins its own.
        """
        if self.fault_rate is None:
            return default
        if self.fault_rate == 0.0:
            return None
        seed = self.fault_seed
        if seed is None:
            seed = default.seed if default is not None else 0
        return FaultModel(rate=self.fault_rate, seed=seed)

    def calibrated(self, observations: Sequence) -> "FleetDevice":
        """Re-fit this slot's device model against observed timings.

        Wraps :func:`repro.hardware.calibration.calibrate_device`
        (peak throughput, bandwidth, cache factor) — how a fleet of
        real boards would anchor each simulator before tuning on it.
        """
        from repro.hardware.calibration import calibrate_device

        result = calibrate_device(self.device, observations)
        return replace(self, device=result.device)


@dataclass(frozen=True)
class Fleet:
    """An ordered, immutable pool of :class:`FleetDevice` slots."""

    devices: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a fleet needs at least one device")
        for pos, dev in enumerate(self.devices):
            if not isinstance(dev, FleetDevice):
                raise TypeError(f"fleet slot {pos} is not a FleetDevice")
            if dev.index != pos:
                raise ValueError(
                    f"fleet slot {pos} carries index {dev.index}; "
                    "indices must match positions"
                )

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def __getitem__(self, index: int) -> FleetDevice:
        return self.devices[index]

    def home_of(self, seq: int) -> FleetDevice:
        """Deterministic home device of submission position ``seq``."""
        if seq < 0:
            raise ValueError("seq must be non-negative")
        return self.devices[seq % len(self.devices)]

    @property
    def device_classes(self) -> List[str]:
        """Distinct device classes in slot order (first occurrence)."""
        seen: List[str] = []
        for dev in self.devices:
            if dev.label not in seen:
                seen.append(dev.label)
        return seen

    @property
    def is_uniform(self) -> bool:
        """True when every slot is the same device class."""
        return len(self.device_classes) == 1

    def describe(self) -> List[str]:
        """One short line per device (CLI report rows)."""
        out = []
        for dev in self.devices:
            line = f"{dev.dirname}  {dev.device.name}"
            if dev.fault_rate is not None:
                line += f"  fault_rate={dev.fault_rate}"
            if dev.fault_seed is not None:
                line += f"  fault_seed={dev.fault_seed}"
            out.append(line)
        return out

    @classmethod
    def build(
        cls,
        names: Sequence[Union[str, GpuDevice, FleetDevice]],
    ) -> "Fleet":
        """Assemble a fleet from handles, devices, or prepared slots."""
        slots: List[FleetDevice] = []
        for pos, item in enumerate(names):
            if isinstance(item, FleetDevice):
                slots.append(replace(item, index=pos))
            elif isinstance(item, GpuDevice):
                slots.append(FleetDevice(index=pos, device=item))
            else:
                slots.append(parse_device(str(item), pos))
        return cls(devices=tuple(slots))

    @classmethod
    def from_spec(cls, spec: "FleetSpec") -> "Fleet":
        """Coerce any accepted fleet spec into a :class:`Fleet`."""
        if isinstance(spec, Fleet):
            return spec
        if isinstance(spec, str):
            return parse_fleet(spec)
        if isinstance(spec, Sequence):
            return cls.build(spec)
        raise TypeError(
            f"cannot build a fleet from {type(spec).__name__!r}; expected "
            "a Fleet, a comma-separated device string, or a sequence"
        )


#: what fleet-aware entry points accept as their ``fleet=`` argument
FleetSpec = Union[str, Fleet, Sequence[Union[str, GpuDevice, FleetDevice]]]


def parse_device(token: str, index: int) -> FleetDevice:
    """Parse one fleet-spec token: ``handle`` or ``handle:fault_rate``."""
    token = token.strip()
    if not token:
        raise ValueError("empty device token in fleet spec")
    name, sep, rate_text = token.partition(":")
    fault_rate: Optional[float] = None
    if sep:
        try:
            fault_rate = float(rate_text)
        except ValueError as exc:
            raise ValueError(
                f"bad per-device fault rate {rate_text!r} in {token!r}"
            ) from exc
    return FleetDevice(
        index=index, device=device_preset(name), fault_rate=fault_rate
    )


def parse_fleet(spec: str) -> Fleet:
    """Parse ``gtx1080ti,gtx1080ti:0.1,titanv`` into a :class:`Fleet`.

    Tokens are preset handles (see
    :data:`repro.hardware.device.DEVICE_PRESETS`), each optionally
    suffixed ``:rate`` to give that device its own fault rate.
    """
    tokens = [t for t in (p.strip() for p in spec.split(",")) if t]
    if not tokens:
        raise ValueError(f"fleet spec {spec!r} names no devices")
    return Fleet(
        devices=tuple(parse_device(t, i) for i, t in enumerate(tokens))
    )
