"""Work-stealing scheduler over a simulated device pool.

:class:`FleetScheduler` shards a list of :class:`FleetTask` units
across per-device queues (round-robin by submission position — the
task's *home* device) and drains them with ``jobs`` worker threads.
A worker serves its own device's queue first; when that runs dry it
steals from the tail of the longest remaining queue (ties broken by
lowest device index), so a fast device helps a slow one finish — the
classic Cilk/TBB discipline, applied to tuning tasks instead of stack
frames.

Correctness never depends on the schedule: ``run_task`` must be a pure
function of the task (the integration layers guarantee this — noise
and fault streams are keyed by task-local measurement ordinals), so
the result set is bit-identical for every ``jobs`` value and steal
interleaving.  What *is* schedule-dependent (which worker executed
what, steal counts) is reported separately in :class:`DeviceReport`
and never feeds back into results.

A task that raises aborts the fleet: in-flight tasks finish, queued
ones stay unexecuted, and :class:`FleetError` carries both the failure
map and the partial :class:`FleetRunResult` so callers with durable
checkpoints (the deployment compiler, the experiment engine) can
resume the survivors.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.fleet.devices import Fleet, FleetDevice, FleetSpec
from repro.utils.log import get_logger

logger = get_logger("fleet.scheduler")


@dataclass(frozen=True)
class FleetTask:
    """One schedulable unit: a stable key, its position, and a payload."""

    key: str
    seq: int
    payload: Any = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("task key must be non-empty")
        if self.seq < 0:
            raise ValueError("task seq must be non-negative")


@dataclass(frozen=True)
class StealRecord:
    """One successful steal: ``thief`` ran a task homed on ``victim``."""

    key: str
    victim: int
    thief: int


@dataclass
class DeviceReport:
    """Per-device accounting of one fleet run.

    ``homed`` is deterministic (pure sharding); ``executed`` and the
    steal counters describe the actual schedule and are deterministic
    only for ``jobs=1``.  ``measurements`` is filled by integration
    layers with the length of the device's measurement-ordinal stream
    (the summed ordinals of its homed tasks).
    """

    index: int
    name: str
    #: normalized device class (``gtx1080ti``, ...) — records produced
    #: by tasks homed here are only valid for this class
    device_class: str = ""
    homed: List[str] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    stolen_in: int = 0
    stolen_out: int = 0
    measurements: int = 0


@dataclass
class FleetRunResult:
    """Everything one :meth:`FleetScheduler.run` produced."""

    results: Dict[str, Any]
    reports: List[DeviceReport]
    steals: List[StealRecord]

    @property
    def assignments(self) -> Dict[str, int]:
        """Deterministic ``task key -> home device index`` map."""
        return {
            key: report.index
            for report in self.reports
            for key in report.homed
        }


class FleetError(RuntimeError):
    """A fleet run aborted; carries partial results for resumption."""

    def __init__(
        self,
        failures: Dict[str, BaseException],
        partial: FleetRunResult,
    ):
        keys = ", ".join(sorted(failures))
        super().__init__(
            f"{len(failures)} fleet task(s) failed ({keys}); "
            f"{len(partial.results)} completed before the abort"
        )
        self.failures = failures
        self.partial = partial


class FleetScheduler:
    """Shard tasks across a device pool; steal work to keep it busy.

    ``run_task(task, device)`` executes one task on an *executing*
    device (the thief's, under stealing); it must derive every seeded
    decision from the task itself, never from ``device``, for the
    determinism contract to hold.  ``jobs`` is the worker-thread count
    (default: one per device); ``jobs=1`` drains the whole pool on the
    caller's thread with a fully deterministic steal schedule.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        run_task: Callable[[FleetTask, FleetDevice], Any],
        jobs: Optional[int] = None,
    ):
        self.fleet = Fleet.from_spec(fleet)
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else len(self.fleet)
        self.run_task = run_task
        self._lock = threading.Lock()
        self._queues: List[Deque[FleetTask]] = []
        self._results: Dict[str, Any] = {}
        self._failures: Dict[str, BaseException] = {}
        self._reports: List[DeviceReport] = []
        self._steals: List[StealRecord] = []
        self._abort = False

    # ------------------------------------------------------------------

    def shard(
        self, tasks: Sequence[FleetTask]
    ) -> List[List[FleetTask]]:
        """Deterministic round-robin home assignment (pure, reusable)."""
        shards: List[List[FleetTask]] = [[] for _ in self.fleet]
        for task in tasks:
            shards[self.fleet.home_of(task.seq).index].append(task)
        return shards

    def _claim(self, home: int) -> Optional[Tuple[FleetTask, int]]:
        """Pop the next task for a worker homed on device ``home``.

        Caller holds the lock.  Own queue drains FIFO from the head;
        steals come LIFO from the tail of the longest other queue —
        stolen tasks are the ones their home device would have reached
        last.
        """
        own = self._queues[home]
        if own:
            return own.popleft(), home
        victim = -1
        longest = 0
        for j, queue in enumerate(self._queues):
            if len(queue) > longest:
                victim, longest = j, len(queue)
        if victim < 0:
            return None
        return self._queues[victim].pop(), victim

    def _worker(self, worker_id: int) -> None:
        home = worker_id % len(self.fleet)
        device = self.fleet[home]
        while True:
            with self._lock:
                if self._abort:
                    return
                claimed = self._claim(home)
                if claimed is None:
                    return
                task, owner = claimed
                if owner != home:
                    self._steals.append(
                        StealRecord(key=task.key, victim=owner, thief=home)
                    )
                    self._reports[home].stolen_in += 1
                    self._reports[owner].stolen_out += 1
            try:
                value = self.run_task(task, device)
            except Exception as exc:  # noqa: BLE001 - reported, not hidden
                with self._lock:
                    self._failures[task.key] = exc
                    self._abort = True
                logger.exception(
                    "fleet: task %s failed on %s", task.key, device.dirname
                )
                return
            with self._lock:
                self._results[task.key] = value
                self._reports[home].executed.append(task.key)

    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[FleetTask]) -> FleetRunResult:
        """Execute every task; raises :class:`FleetError` on failure.

        Results are keyed by task key, so callers reassemble submission
        order regardless of the schedule.
        """
        tasks = list(tasks)
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("fleet task keys must be unique")
        self._results = {}
        self._failures = {}
        self._steals = []
        self._abort = False
        self._reports = [
            DeviceReport(
                index=dev.index,
                name=dev.device.name,
                device_class=dev.label,
            )
            for dev in self.fleet
        ]
        shards = self.shard(tasks)
        self._queues = [deque(shard) for shard in shards]
        for report, shard in zip(self._reports, shards):
            report.homed = [t.key for t in shard]

        workers = min(self.jobs, max(len(tasks), 1))
        logger.info(
            "fleet: %d task(s) on %d device(s), %d worker(s)",
            len(tasks), len(self.fleet), workers,
        )
        if workers <= 1:
            self._worker(0)
        else:
            threads = [
                threading.Thread(
                    target=self._worker,
                    name=f"fleet-worker-{i}",
                    args=(i,),
                    daemon=True,
                )
                for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        result = FleetRunResult(
            results=self._results,
            reports=self._reports,
            steals=self._steals,
        )
        if self._failures:
            raise FleetError(self._failures, result)
        return result
