"""Adaptive candidate sampling: k-center pruning in feature space.

Model-based tuners routinely propose batches whose members are
near-duplicates of each other (or of configurations already measured):
the surrogate ranks a whole basin highly and the plan piles up inside
it.  Chameleon (PAPERS.md) shows that clustering a proposed batch and
measuring only representatives cuts the measurement bill with almost no
loss in best-found performance.

:func:`k_center_prune` implements the greedy k-center (farthest-point)
rule over config *feature* vectors — the metric in which kernel
performance is locally smooth, so two configs close in feature space
are redundant measurements.  Already-measured features act as anchors:
a candidate near a measured point is as redundant as a candidate near
another candidate.  Fully deterministic (no RNG; ties break to the
lowest row index), which keeps the pruned arms inside the repo's
bit-identity contracts.
"""

from __future__ import annotations

import numpy as np


def min_sq_dists(points: np.ndarray, refs: np.ndarray) -> np.ndarray:
    """Per-row min squared Euclidean distance from ``points`` to ``refs``.

    Uses the ``|a-b|^2 = |a|^2 + |b|^2 - 2ab`` expansion (one matmul,
    no ``(n, m, d)`` broadcast), clipped at zero against rounding.
    """
    points = np.asarray(points, dtype=np.float64)
    refs = np.asarray(refs, dtype=np.float64)
    pp = np.einsum("ij,ij->i", points, points)
    rr = np.einsum("ij,ij->i", refs, refs)
    d2 = pp[:, None] + rr[None, :] - 2.0 * (points @ refs.T)
    return np.maximum(d2.min(axis=1), 0.0)


def k_center_prune(
    features: np.ndarray,
    keep: int,
    anchors: np.ndarray = None,
) -> np.ndarray:
    """Pick ``keep`` mutually-distant rows of ``features`` (greedy k-center).

    Row 0 is always kept — callers put their top-ranked candidate
    first, and pruning must never drop the acquisition argmax.  Each
    subsequent pick maximizes the min distance to everything selected
    so far *plus* the ``anchors`` (typically the measured feature
    matrix), so candidates that merely re-probe measured territory are
    the first to go.

    Returns the selected row positions in selection order; sort them to
    preserve the caller's ranking order.  With ``keep >= len(features)``
    every row survives.
    """
    features = np.asarray(features, dtype=np.float64)
    n = len(features)
    if keep <= 0:
        raise ValueError("keep must be positive")
    if keep >= n:
        return np.arange(n, dtype=np.int64)
    mind = min_sq_dists(features, features[:1])
    if anchors is not None and len(anchors):
        mind = np.minimum(mind, min_sq_dists(features, anchors))
    mind[0] = -1.0
    selected = [0]
    for _ in range(keep - 1):
        pick = int(np.argmax(mind))
        selected.append(pick)
        mind = np.minimum(mind, min_sq_dists(features, features[pick : pick + 1]))
        mind[pick] = -1.0
    return np.asarray(selected, dtype=np.int64)
