"""CUDA schedule templates: workload -> configuration space.

Each template mirrors the corresponding AutoTVM TOPI CUDA template
(direct conv2d, depthwise conv2d, dense) in knob structure:

* ``tile_f`` / ``tile_y`` / ``tile_x`` — 4-way splits of the output
  channel / height / width axes into ``(block, vthread, thread, inner)``
  factors.  Threads per block is the product of the three ``thread``
  factors; grid size is the product of the ``block`` factors.
* ``tile_rc`` / ``tile_ry`` / ``tile_rx`` — 2-way splits of the
  reduction axes controlling the shared-memory staging depth.
* ``auto_unroll_max_step`` and ``unroll_explicit`` — unrolling pragmas.

With these knobs, a MobileNet-v1 conv node's space holds tens of
millions of points, matching the "more than 50 million configuration
points" per node reported in Sec. V of the paper.
"""

from __future__ import annotations

from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
    Workload,
)
from repro.space.knobs import BoolKnob, OtherKnob, SplitKnob
from repro.space.space import ConfigSpace


class TemplateError(ValueError):
    """Raised when no schedule template exists for a workload."""


#: candidate values for the unrolling pragma (as in TOPI's CUDA conv2d)
UNROLL_STEPS = (0, 512, 1500)

#: Winograd F(2x2, 3x3): 2x2 output tiles from 4x4 input tiles
WINOGRAD_TILE = 2
WINOGRAD_ALPHA = 4


def winograd_applicable(workload: Workload) -> bool:
    """True when the F(2x2, 3x3) Winograd template can schedule ``workload``.

    Matches TVM's eligibility: unit-stride, ungrouped 3x3 convolutions.
    """
    return (
        isinstance(workload, Conv2DWorkload)
        and workload.kernel_h == 3
        and workload.kernel_w == 3
        and workload.stride_h == 1
        and workload.stride_w == 1
        and workload.groups == 1
    )


def available_templates(workload: Workload) -> tuple:
    """Schedule templates implemented for ``workload`` ('direct' first)."""
    if winograd_applicable(workload):
        return ("direct", "winograd")
    return ("direct",)


def _conv2d_space(workload: Conv2DWorkload) -> ConfigSpace:
    space = ConfigSpace(f"conv2d_{workload.out_channels}x{workload.out_height}")
    space.add_knob(SplitKnob("tile_f", workload.out_channels, 4))
    space.add_knob(SplitKnob("tile_y", workload.out_height, 4))
    space.add_knob(SplitKnob("tile_x", workload.out_width, 4))
    space.add_knob(SplitKnob("tile_rc", workload.in_channels // workload.groups, 2))
    space.add_knob(SplitKnob("tile_ry", workload.kernel_h, 2))
    space.add_knob(SplitKnob("tile_rx", workload.kernel_w, 2))
    space.add_knob(OtherKnob("auto_unroll_max_step", UNROLL_STEPS))
    space.add_knob(BoolKnob("unroll_explicit"))
    return space


def _depthwise_space(workload: DepthwiseConv2DWorkload) -> ConfigSpace:
    space = ConfigSpace(
        f"depthwise_{workload.out_channels}x{workload.out_height}"
    )
    space.add_knob(SplitKnob("tile_f", workload.out_channels, 4))
    space.add_knob(SplitKnob("tile_y", workload.out_height, 4))
    space.add_knob(SplitKnob("tile_x", workload.out_width, 4))
    space.add_knob(OtherKnob("auto_unroll_max_step", UNROLL_STEPS))
    space.add_knob(BoolKnob("unroll_explicit"))
    return space


def _conv2d_winograd_space(workload: Conv2DWorkload) -> ConfigSpace:
    """Winograd F(2x2, 3x3) template.

    After the input/kernel transforms, the core computation is a batch
    of ``alpha^2 = 16`` GEMMs of shape ``(K, C) x (C, P)`` where ``P``
    is the number of 2x2 output tiles.  The knobs tile the GEMM: output
    channels ``K``, tile count ``P``, and the reduction over ``C``.
    """
    from repro.utils.mathx import ceil_div

    p_tiles = (
        workload.batch
        * ceil_div(workload.out_height, WINOGRAD_TILE)
        * ceil_div(workload.out_width, WINOGRAD_TILE)
    )
    space = ConfigSpace(
        f"conv2d_winograd_{workload.out_channels}x{workload.out_height}"
    )
    space.add_knob(SplitKnob("tile_k", workload.out_channels, 4))
    space.add_knob(SplitKnob("tile_p", p_tiles, 4))
    space.add_knob(SplitKnob("tile_rc", workload.in_channels, 2))
    space.add_knob(OtherKnob("auto_unroll_max_step", UNROLL_STEPS))
    space.add_knob(BoolKnob("unroll_explicit"))
    return space


def _dense_space(workload: DenseWorkload) -> ConfigSpace:
    space = ConfigSpace(f"dense_{workload.out_features}")
    space.add_knob(SplitKnob("tile_x", workload.out_features, 4))
    space.add_knob(SplitKnob("tile_k", workload.in_features, 2))
    space.add_knob(OtherKnob("auto_unroll_max_step", UNROLL_STEPS))
    space.add_knob(BoolKnob("unroll_explicit"))
    return space


def build_space(workload: Workload, template: str = "direct") -> ConfigSpace:
    """Build the CUDA schedule configuration space for ``workload``.

    ``template`` selects the schedule family: every workload supports
    ``"direct"``; unit-stride 3x3 convolutions also support
    ``"winograd"`` (see :func:`available_templates`).

    >>> from repro.nn.workloads import DenseWorkload
    >>> space = build_space(DenseWorkload(1, 512, 1000))
    >>> len(space) > 1000
    True
    """
    if template not in ("direct", "winograd"):
        raise TemplateError(f"unknown template {template!r}")
    if template == "winograd":
        if not winograd_applicable(workload):
            raise TemplateError(
                f"winograd template requires a unit-stride 3x3 conv2d, "
                f"got {workload}"
            )
        return _conv2d_winograd_space(workload)  # type: ignore[arg-type]
    if isinstance(workload, Conv2DWorkload):
        return _conv2d_space(workload)
    if isinstance(workload, DepthwiseConv2DWorkload):
        return _depthwise_space(workload)
    if isinstance(workload, DenseWorkload):
        return _dense_space(workload)
    raise TemplateError(f"no schedule template for workload kind {workload!r}")
