"""The indexable configuration space.

A :class:`ConfigSpace` is an ordered product of knobs.  Configurations
are addressed by a single flat integer index (mixed-radix over the
per-knob candidate counts), exactly like AutoTVM — spaces routinely hold
tens of millions of points and are never materialized.

The space also owns the *feature encoding*: each config maps to a fixed-
width numeric vector (concatenated knob embeddings) used by the TED
initializer, the cost models, and the BAO neighborhood metric.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.space.knobs import Knob
from repro.utils.rng import SeedLike, as_generator


class ConfigEntity:
    """One point of a :class:`ConfigSpace`: a flat index plus views.

    Entities are cheap handles; values and features are computed from
    the space on demand and cached.
    """

    __slots__ = ("space", "index", "_knob_indices", "_values")

    def __init__(self, space: "ConfigSpace", index: int):
        self.space = space
        self.index = int(index)
        self._knob_indices: Optional[Tuple[int, ...]] = None
        self._values: Optional[Dict[str, object]] = None

    @property
    def knob_indices(self) -> Tuple[int, ...]:
        """Per-knob candidate indices (mixed-radix digits of ``index``)."""
        if self._knob_indices is None:
            self._knob_indices = self.space.decode(self.index)
        return self._knob_indices

    @property
    def values(self) -> Dict[str, object]:
        """Mapping of knob name to the selected candidate value."""
        if self._values is None:
            self._values = {
                knob.name: knob.value(i)
                for knob, i in zip(self.space.knobs, self.knob_indices)
            }
        return self._values

    def __getitem__(self, knob_name: str):
        return self.values[knob_name]

    @property
    def features(self) -> np.ndarray:
        """Feature embedding of this config (length ``space.feature_dim``)."""
        return self.space.features_of(self.index)

    def __eq__(self, other: object) -> bool:
        """Equal when the flat index matches and the spaces have equal
        *content* (same knob definitions) — two ConfigSpace instances
        built from the same workload/template compare equal points even
        across processes."""
        if not isinstance(other, ConfigEntity):
            return NotImplemented
        if other.index != self.index:
            return False
        if other.space is self.space:
            return True
        return other.space.content_hash() == self.space.content_hash()

    def __hash__(self) -> int:
        # content-based, stable across processes (was: id(self.space))
        return hash((self.space.content_hash(), self.index))

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.values.items())
        return f"Config[{self.index}]({parts})"


class ConfigSpace:
    """Ordered product of knobs with flat-index addressing."""

    def __init__(self, name: str = "space"):
        self.name = name
        self.knobs: List[Knob] = []
        self._knob_by_name: Dict[str, Knob] = {}
        self._radix: List[int] = []
        self._feature_tables: List[np.ndarray] = []
        self._content_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # construction

    def add_knob(self, knob: Knob) -> Knob:
        """Append a knob (names must be unique)."""
        if knob.name in self._knob_by_name:
            raise ValueError(f"duplicate knob name {knob.name!r}")
        if len(knob) == 0:
            raise ValueError(f"knob {knob.name!r} has no candidates")
        self.knobs.append(knob)
        self._knob_by_name[knob.name] = knob
        self._radix.append(len(knob))
        table = np.stack([knob.features(i) for i in range(len(knob))])
        self._feature_tables.append(table)
        self._content_hash = None
        return knob

    def signature_dict(self) -> dict:
        """Canonical description of the knob definitions (order matters).

        Deliberately excludes :attr:`name` — the space name encodes the
        workload, which the tuning-log signature tracks separately.
        """
        return {"knobs": [knob.signature() for knob in self.knobs]}

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the knob definitions.

        Two spaces built from the same workload/template hash equal in
        any process; the digest keys cross-run artifacts (the tuning-log
        database) and the content-based :class:`ConfigEntity` hash.
        Cached; invalidated by :meth:`add_knob`.
        """
        if self._content_hash is None:
            payload = json.dumps(
                self.signature_dict(), sort_keys=True, separators=(",", ":")
            )
            self._content_hash = hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest()
        return self._content_hash

    def knob(self, name: str) -> Knob:
        """Look a knob up by name."""
        if name not in self._knob_by_name:
            raise KeyError(f"no knob named {name!r} in space {self.name!r}")
        return self._knob_by_name[name]

    # ------------------------------------------------------------------
    # addressing

    def __len__(self) -> int:
        size = 1
        for r in self._radix:
            size *= r
        return size

    @property
    def knob_sizes(self) -> Tuple[int, ...]:
        return tuple(self._radix)

    def decode(self, index: int) -> Tuple[int, ...]:
        """Flat index -> per-knob candidate indices."""
        index = int(index)
        if not 0 <= index < len(self):
            raise IndexError(
                f"config index {index} out of range [0, {len(self)})"
            )
        digits = []
        for r in self._radix:
            digits.append(index % r)
            index //= r
        return tuple(digits)

    def encode(self, knob_indices: Sequence[int]) -> int:
        """Per-knob candidate indices -> flat index."""
        if len(knob_indices) != len(self._radix):
            raise ValueError(
                f"expected {len(self._radix)} knob indices, "
                f"got {len(knob_indices)}"
            )
        index = 0
        for digit, r in zip(reversed(knob_indices), reversed(self._radix)):
            digit = int(digit)
            if not 0 <= digit < r:
                raise IndexError(f"knob index {digit} out of range [0, {r})")
            index = index * r + digit
        return index

    def get(self, index: int) -> ConfigEntity:
        """The :class:`ConfigEntity` at flat index ``index``."""
        return ConfigEntity(self, index)

    def __iter__(self) -> Iterable[ConfigEntity]:
        if len(self) > 10_000_000:
            raise RuntimeError(
                f"refusing to iterate a space of size {len(self)}; sample it"
            )
        return (self.get(i) for i in range(len(self)))

    # ------------------------------------------------------------------
    # features

    @property
    def feature_dim(self) -> int:
        return sum(knob.feature_dim for knob in self.knobs)

    def features_of(self, index: int) -> np.ndarray:
        """Feature vector of the config at ``index``."""
        digits = self.decode(index)
        parts = [
            knob.features(digit) for knob, digit in zip(self.knobs, digits)
        ]
        return np.concatenate(parts)

    def decode_batch(self, indices: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`decode`: ``(n,)`` indices -> ``(n, n_knobs)``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("indices must be a 1-D array")
        if len(indices) and (
            indices.min() < 0 or int(indices.max()) >= len(self)
        ):
            raise IndexError("config index out of range")
        out = np.empty((len(indices), len(self._radix)), dtype=np.int64)
        rest = indices.copy()
        for k, r in enumerate(self._radix):
            out[:, k] = rest % r
            rest //= r
        return out

    def encode_batch(self, digit_matrix: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encode`: ``(n, n_knobs)`` -> ``(n,)`` indices."""
        digits = np.asarray(digit_matrix, dtype=np.int64)
        if digits.ndim != 2 or digits.shape[1] != len(self._radix):
            raise ValueError(f"expected (n, {len(self._radix)}) digits")
        radix = np.asarray(self._radix, dtype=np.int64)
        if len(digits) and (
            np.any(digits < 0) or np.any(digits >= radix[None, :])
        ):
            raise IndexError("knob index out of range")
        out = np.zeros(len(digits), dtype=np.int64)
        for k in range(len(self._radix) - 1, -1, -1):
            out = out * self._radix[k] + digits[:, k]
        return out

    def feature_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """Stacked feature vectors, shape ``(len(indices), feature_dim)``."""
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return np.empty((0, self.feature_dim))
        return self.features_from_digits(self.decode_batch(indices))

    def features_from_digits(self, digit_matrix: np.ndarray) -> np.ndarray:
        """Feature matrix straight from per-knob indices (no decode)."""
        digits = np.asarray(digit_matrix, dtype=np.int64)
        if digits.ndim != 2 or digits.shape[1] != len(self.knobs):
            raise ValueError(f"expected (n, {len(self.knobs)}) digits")
        parts = [
            table[digits[:, k]] for k, table in enumerate(self._feature_tables)
        ]
        return np.concatenate(parts, axis=1)

    def knob_index_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """Per-knob candidate indices as a float matrix (for L2 radii)."""
        if len(indices) == 0:
            return np.empty((0, len(self.knobs)))
        return self.decode_batch(indices).astype(np.float64)

    # ------------------------------------------------------------------
    # sampling

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Sample ``n`` distinct config indices uniformly at random.

        For spaces smaller than ``n`` the whole space is returned.  For
        large spaces sampling uses draw-and-dedupe, which is effectively
        collision-free at the paper's scales (n << |space|).
        """
        rng = as_generator(seed)
        size = len(self)
        if n >= size:
            return np.arange(size, dtype=np.int64)
        if size <= 4 * n:
            return rng.choice(size, size=n, replace=False).astype(np.int64)
        chosen: Dict[int, None] = {}
        while len(chosen) < n:
            draw = rng.integers(0, size, size=n - len(chosen))
            for idx in draw:
                chosen.setdefault(int(idx), None)
        return np.fromiter(chosen.keys(), dtype=np.int64, count=n)

    def random_walk(self, index: int, seed: SeedLike = None) -> int:
        """One SA mutation: re-draw a single random knob of ``index``."""
        rng = as_generator(seed)
        digits = list(self.decode(index))
        mutable = [k for k, r in enumerate(self._radix) if r > 1]
        if not mutable:
            return index
        k = mutable[int(rng.integers(0, len(mutable)))]
        old = digits[k]
        while digits[k] == old:
            digits[k] = int(rng.integers(0, self._radix[k]))
        return self.encode(digits)

    def __repr__(self) -> str:
        knobs = ", ".join(f"{k.name}({len(k)})" for k in self.knobs)
        return f"ConfigSpace({self.name!r}, size={len(self)}, knobs=[{knobs}])"


class FeatureCache:
    """Incrementally grown feature matrix for a measured config set.

    The tuning loop's measured set only ever *appends*; rebuilding its
    feature matrix from scratch on every BAO step (a ``np.stack`` over a
    Python list, plus per-config ``features_of`` calls) is O(n·d) work
    per access.  This cache keeps the rows in one preallocated buffer
    with amortized-doubling growth: appends are a single batched
    ``feature_matrix`` call, and :attr:`matrix` is a zero-copy
    read-only view.

    Row values are bit-identical to ``space.features_of`` (both read
    from the same per-knob feature tables), so swapping the cache in
    cannot perturb model fits or golden traces.
    """

    def __init__(self, space: ConfigSpace, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.space = space
        self._buf = np.empty((capacity, space.feature_dim))
        self._count = 0
        self._indices: List[int] = []

    def __len__(self) -> int:
        return self._count

    @property
    def indices(self) -> List[int]:
        """Config indices of the cached rows, in append order."""
        return list(self._indices)

    def _grow_to(self, needed: int) -> None:
        capacity = len(self._buf)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        buf = np.empty((capacity, self._buf.shape[1]))
        buf[: self._count] = self._buf[: self._count]
        self._buf = buf

    def extend(self, indices: Sequence[int]) -> None:
        """Append the feature rows of ``indices`` (one batched decode)."""
        indices = [int(i) for i in indices]
        if not indices:
            return
        self._grow_to(self._count + len(indices))
        rows = self.space.feature_matrix(indices)
        self._buf[self._count: self._count + len(indices)] = rows
        self._count += len(indices)
        self._indices.extend(indices)

    def append(self, index: int) -> None:
        """Append one config's feature row."""
        self.extend([index])

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(len(self), feature_dim)`` view of the cached rows."""
        view = self._buf[: self._count]
        view.flags.writeable = False
        return view
