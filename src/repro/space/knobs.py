"""Tuning knobs: the per-dimension candidate lists of a config space.

Knob types mirror AutoTVM's ``define_split`` / ``define_knob`` /
``define_reorder`` / ``define_annotate``:

* :class:`SplitKnob` — split a loop of extent ``n`` into ``k`` nested
  loops; candidates are all ordered factorizations of ``n``.
* :class:`OtherKnob` — an explicit list of numeric candidates (e.g. the
  ``auto_unroll_max_step`` values ``[0, 512, 1500]``).
* :class:`BoolKnob` — a two-valued flag (e.g. ``unroll_explicit``).
* :class:`ReorderKnob` — a capped list of loop-order permutations.

Every knob exposes ``features(i)``: a fixed-width numeric embedding of
its ``i``-th candidate used for distance computations (TED, BAO
neighborhoods) and as cost-model input.

Knobs also expose ``signature()``: a canonical, JSON-serializable
description of the knob *definition* (not any chosen value).  Signatures
feed the content hash of a :class:`~repro.space.space.ConfigSpace`,
which in turn keys the cross-run tuning-log database — so they must be
stable across processes, Python versions, and insertion order of
unrelated knobs.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.mathx import all_factorizations


class Knob:
    """Base class: a named, ordered list of candidate values."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("knob name must be non-empty")
        self.name = name

    def __len__(self) -> int:
        raise NotImplementedError

    def value(self, index: int):
        """The candidate value at position ``index``."""
        raise NotImplementedError

    @property
    def feature_dim(self) -> int:
        """Width of the feature embedding for this knob."""
        raise NotImplementedError

    def features(self, index: int) -> np.ndarray:
        """Feature embedding of candidate ``index`` (length feature_dim)."""
        raise NotImplementedError

    def signature(self) -> dict:
        """Canonical JSON-serializable description of this knob."""
        raise NotImplementedError

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < len(self):
            raise IndexError(
                f"knob {self.name!r}: index {index} out of range [0, {len(self)})"
            )
        return index

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {len(self)} candidates)"


class SplitKnob(Knob):
    """Split a loop of extent ``extent`` into ``num_outputs`` factors.

    Candidates are all ordered factorizations; features are the log2 of
    each factor, so nearby feature vectors correspond to similar tilings.
    """

    def __init__(self, name: str, extent: int, num_outputs: int):
        super().__init__(name)
        if extent <= 0:
            raise ValueError(f"split {name!r}: extent must be positive")
        if num_outputs < 2:
            raise ValueError(f"split {name!r}: need at least 2 outputs")
        self.extent = int(extent)
        self.num_outputs = int(num_outputs)
        self._candidates: Tuple[Tuple[int, ...], ...] = all_factorizations(
            self.extent, self.num_outputs
        )
        self._features = np.log2(
            np.asarray(self._candidates, dtype=np.float64)
        )

    def __len__(self) -> int:
        return len(self._candidates)

    def value(self, index: int) -> Tuple[int, ...]:
        return self._candidates[self._check_index(index)]

    @property
    def feature_dim(self) -> int:
        return self.num_outputs

    def features(self, index: int) -> np.ndarray:
        return self._features[self._check_index(index)]

    def signature(self) -> dict:
        return {
            "type": "split",
            "name": self.name,
            "extent": self.extent,
            "num_outputs": self.num_outputs,
        }


class OtherKnob(Knob):
    """An explicit list of numeric candidate values."""

    def __init__(self, name: str, candidates: Sequence[float]):
        super().__init__(name)
        if not candidates:
            raise ValueError(f"knob {name!r}: empty candidate list")
        self._candidates = list(candidates)
        self._features = np.array(
            [[math.log2(1.0 + abs(v))] for v in self._candidates],
            dtype=np.float64,
        )

    def __len__(self) -> int:
        return len(self._candidates)

    def value(self, index: int):
        return self._candidates[self._check_index(index)]

    @property
    def feature_dim(self) -> int:
        return 1

    def features(self, index: int) -> np.ndarray:
        return self._features[self._check_index(index)]

    def signature(self) -> dict:
        return {
            "type": "other",
            "name": self.name,
            "candidates": list(self._candidates),
        }


class BoolKnob(OtherKnob):
    """A two-valued flag knob (candidates ``[0, 1]``)."""

    def __init__(self, name: str):
        super().__init__(name, [0, 1])


class ReorderKnob(Knob):
    """Loop-order permutations of ``axes`` (capped at ``max_candidates``).

    Features embed each permutation as the per-axis position, normalized
    to [0, 1], so similar orders are close in feature space.
    """

    def __init__(
        self,
        name: str,
        axes: Sequence[str],
        max_candidates: int = 24,
    ):
        super().__init__(name)
        axes = list(axes)
        if len(axes) < 2:
            raise ValueError(f"reorder {name!r}: need at least 2 axes")
        if len(set(axes)) != len(axes):
            raise ValueError(f"reorder {name!r}: duplicate axes")
        self.axes = axes
        perms = list(itertools.permutations(range(len(axes))))
        self._perms: List[Tuple[int, ...]] = perms[:max_candidates]
        denom = float(len(axes) - 1)
        feats = np.empty((len(self._perms), len(axes)), dtype=np.float64)
        for i, perm in enumerate(self._perms):
            position = np.empty(len(axes))
            for pos, axis in enumerate(perm):
                position[axis] = pos
            feats[i] = position / denom
        self._features = feats

    def __len__(self) -> int:
        return len(self._perms)

    def value(self, index: int) -> Tuple[str, ...]:
        perm = self._perms[self._check_index(index)]
        return tuple(self.axes[i] for i in perm)

    @property
    def feature_dim(self) -> int:
        return len(self.axes)

    def features(self, index: int) -> np.ndarray:
        return self._features[self._check_index(index)]

    def signature(self) -> dict:
        return {
            "type": "reorder",
            "name": self.name,
            "axes": list(self.axes),
            "num_candidates": len(self._perms),
        }
