"""Neighborhood queries over a config space.

BAO (Alg. 4) restricts each optimization step to ``C_t``, the
neighborhood of the incumbent with radius ``R`` — "the Euclidean
distance between points" (Sec. V-A).  Two metrics are supported:

* ``metric="feature"`` (default) — Euclidean distance between config
  *feature vectors* (log-scale tile factors etc.).  This is the metric
  in which kernel performance is locally smooth, which is precisely the
  assumption BAO's neighborhood search relies on (Sec. III-B).
* ``metric="index"`` — Euclidean distance between per-knob candidate
  indices.  Kept for ablation: lexicographic candidate order is only
  weakly performance-local, and the ablation benchmark quantifies how
  much the metric choice matters.

Spaces are far too large to filter exhaustively, so neighborhoods are
*sampled*: all single-knob ±1 lattice steps are always included, and
random multi-knob redraws fill the rest, rejection-tested against the
radius.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.space.space import ConfigSpace
from repro.utils.rng import SeedLike, as_generator


def neighbors_within(
    space: ConfigSpace, center: int, radius: float
) -> List[int]:
    """Exhaustively enumerate lattice neighbors within ``radius``.

    Uses the *index* metric and a breadth-first walk over knob-index
    space, so its cost grows with the ball volume — intended for small
    radii and unit tests.  The center itself is excluded.
    """
    if radius <= 0:
        return []
    center_digits = np.array(space.decode(center), dtype=np.int64)
    sizes = space.knob_sizes
    r2 = radius * radius

    found = set()
    frontier = [tuple(center_digits)]
    visited = {tuple(center_digits)}
    while frontier:
        new_frontier = []
        for digits in frontier:
            arr = np.array(digits, dtype=np.int64)
            for k in range(len(sizes)):
                for step in (-1, 1):
                    cand = arr.copy()
                    cand[k] += step
                    if not 0 <= cand[k] < sizes[k]:
                        continue
                    key = tuple(cand)
                    if key in visited:
                        continue
                    visited.add(key)
                    dist2 = float(np.sum((cand - center_digits) ** 2))
                    if dist2 <= r2:
                        found.add(space.encode(cand))
                        new_frontier.append(key)
        frontier = new_frontier
    return sorted(found)


def axis_steps(
    space: ConfigSpace, center: int, step: int
) -> np.ndarray:
    """All single-knob moves of ``±step`` from ``center``, clamped.

    The coordinate-descent exploit arm (Droplet-style line search)
    probes each knob axis independently: for every knob the candidate
    digit is ``center ± step`` clamped into ``[0, size)``, so a step
    that overshoots a boundary still probes the boundary value itself.
    Moves that collapse back onto the center digit (already at a
    boundary) are dropped, as are duplicate configs produced by two
    clamped moves landing on the same point.

    Deterministic order: knob 0 ``-step``, knob 0 ``+step``, knob 1
    ``-step``, ... — no RNG involved.  The center is never returned.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    center_digits = np.asarray(space.decode(center), dtype=np.int64)
    sizes = np.asarray(space.knob_sizes, dtype=np.int64)
    n_knobs = len(sizes)

    deltas = np.zeros((2 * n_knobs, n_knobs), dtype=np.int64)
    rows = np.arange(n_knobs)
    deltas[2 * rows, rows] = -step
    deltas[2 * rows + 1, rows] = step
    candidates = np.clip(
        center_digits[None, :] + deltas, 0, (sizes - 1)[None, :]
    )
    moved = np.any(candidates != center_digits[None, :], axis=1)
    if not moved.any():
        return np.empty(0, dtype=np.int64)
    chosen: dict[int, None] = {}
    for idx in space.encode_batch(candidates[moved]):
        chosen.setdefault(int(idx), None)
    return np.fromiter(chosen, dtype=np.int64, count=len(chosen))


def sample_neighborhood(
    space: ConfigSpace,
    center: int,
    radius: float,
    max_points: int,
    seed: SeedLike = None,
    metric: str = "feature",
) -> np.ndarray:
    """Sample up to ``max_points`` distinct configs within ``radius``.

    Deterministic given ``seed``.  The single-step lattice neighbors
    are always included (they anchor the local search even when the
    radius rejects most random proposals); random redraws of one to
    three knobs fill the remainder, filtered by the chosen metric.  The
    center is never returned.
    """
    if metric not in ("feature", "index"):
        raise ValueError("metric must be 'feature' or 'index'")
    if radius <= 0 or max_points <= 0:
        return np.empty(0, dtype=np.int64)
    rng = as_generator(seed)
    center_digits = np.asarray(space.decode(center), dtype=np.int64)
    sizes = np.asarray(space.knob_sizes, dtype=np.int64)
    n_knobs = len(sizes)
    r2 = radius * radius
    center_feat = space.features_of(center)

    chosen: dict[int, None] = {}

    # deterministic core: all valid +-1 single-knob lattice steps
    steps = np.concatenate(
        [np.eye(n_knobs, dtype=np.int64), -np.eye(n_knobs, dtype=np.int64)]
    )
    lattice = center_digits[None, :] + steps
    in_range = np.all((lattice >= 0) & (lattice < sizes[None, :]), axis=1)
    for idx in space.encode_batch(lattice[in_range]):
        chosen.setdefault(int(idx), None)
        if len(chosen) >= max_points:
            return np.fromiter(chosen, dtype=np.int64, count=len(chosen))

    # random fill: redraw 1-3 knobs, rejection-test against the ball
    attempts = 0
    max_attempts = 200 * max_points
    while len(chosen) < max_points and attempts < max_attempts:
        batch = max(256, 2 * (max_points - len(chosen)))
        attempts += batch
        # choose which knobs to redraw: ~2 knobs per proposal on average
        mutate = rng.random((batch, n_knobs)) < (2.0 / n_knobs)
        none_selected = ~mutate.any(axis=1)
        if none_selected.any():
            forced = rng.integers(0, n_knobs, size=int(none_selected.sum()))
            mutate[np.nonzero(none_selected)[0], forced] = True
        redraws = rng.integers(0, sizes[None, :], size=(batch, n_knobs))
        candidates = np.where(mutate, redraws, center_digits[None, :])
        changed = np.any(candidates != center_digits[None, :], axis=1)

        if metric == "feature":
            feats = space.features_from_digits(candidates)
            delta = feats - center_feat[None, :]
            norms = np.einsum("ij,ij->i", delta, delta)
        else:
            offs = (candidates - center_digits[None, :]).astype(np.float64)
            norms = np.einsum("ij,ij->i", offs, offs)
        valid = changed & (norms <= r2)
        if not valid.any():
            continue
        for idx in space.encode_batch(candidates[valid]):
            chosen.setdefault(int(idx), None)
            if len(chosen) >= max_points:
                break
    return np.fromiter(chosen, dtype=np.int64, count=len(chosen))
