"""Schedule configuration spaces (the AutoTVM ``ConfigSpace`` stand-in).

A deployment configuration (Definition 1 in the paper) is a point in the
Cartesian product of per-knob candidate lists.  This package provides
the knob types (:mod:`repro.space.knobs`), the indexable product space
with feature encoding and neighborhoods (:mod:`repro.space.space`), and
the CUDA schedule templates that generate a space from a workload
(:mod:`repro.space.templates`).
"""

from repro.space.knobs import Knob, SplitKnob, OtherKnob, BoolKnob, ReorderKnob
from repro.space.space import ConfigSpace, ConfigEntity, FeatureCache
from repro.space.templates import build_space, TemplateError
from repro.space.neighborhood import (
    axis_steps,
    neighbors_within,
    sample_neighborhood,
)
from repro.space.sampling import k_center_prune, min_sq_dists

__all__ = [
    "Knob",
    "SplitKnob",
    "OtherKnob",
    "BoolKnob",
    "ReorderKnob",
    "ConfigSpace",
    "ConfigEntity",
    "FeatureCache",
    "build_space",
    "TemplateError",
    "sample_neighborhood",
    "neighbors_within",
    "axis_steps",
    "k_center_prune",
    "min_sq_dists",
]
