"""Crash-safe file writes.

Checkpoints, caches, and record logs must survive a crash *during* the
write: a torn write may lose the new state, but it must never destroy
the previous good file.  The standard recipe — write to a temporary
file in the target directory, flush, ``fsync``, then ``os.replace``
onto the target — gives that guarantee on POSIX filesystems (rename is
atomic within a filesystem), and every persistent artifact in this
repository goes through it.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def atomic_write_bytes(
    path: PathLike, data: bytes, fsync: bool = True
) -> str:
    """Write ``data`` to ``path`` atomically (write-tmp-fsync-rename).

    A crash at any point leaves either the previous file contents or
    the complete new contents at ``path`` — never a partial write.
    Returns the final path as a string.
    """
    target = os.path.abspath(os.fspath(path))
    directory = os.path.dirname(target)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    if fsync:
        _fsync_directory(directory)
    return target


def atomic_write_text(
    path: PathLike, text: str, fsync: bool = True, encoding: str = "utf-8"
) -> str:
    """Atomically write a text file (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_pickle_dump(
    path: PathLike, obj: object, fsync: bool = True
) -> str:
    """Atomically pickle ``obj`` to ``path``."""
    return atomic_write_bytes(
        path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), fsync=fsync
    )


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry so the rename itself is durable.

    Best-effort: some platforms/filesystems refuse to open directories
    (Windows); losing the rename durability there degrades to the
    pre-fsync behaviour rather than failing the write.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(dir_fd)
