"""Shared utilities: seeded randomness, logging, records, math helpers.

These are infrastructure pieces used by every other subpackage.  They
deliberately contain no domain knowledge about DNNs, schedules, or the
search algorithms.
"""

from repro.utils.rng import RngPool, derive_seed, as_generator
from repro.utils.log import get_logger
from repro.utils.mathx import (
    factor_pairs,
    factorize,
    all_factorizations,
    round_up,
    ceil_div,
    is_power_of_two,
    next_power_of_two,
    clamp,
    pairwise_sq_dists,
)

__all__ = [
    "RngPool",
    "derive_seed",
    "as_generator",
    "get_logger",
    "factor_pairs",
    "factorize",
    "all_factorizations",
    "round_up",
    "ceil_div",
    "is_power_of_two",
    "next_power_of_two",
    "clamp",
    "pairwise_sq_dists",
]
