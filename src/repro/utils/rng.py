"""Deterministic random-number management.

Every stochastic component in the library takes an explicit seed or an
explicit :class:`numpy.random.Generator`.  This module provides the two
primitives that make a multi-component experiment reproducible:

* :func:`derive_seed` — derive a child seed from a parent seed and a
  string label, so that independent components (tuner, noise model,
  bootstrap resampler, ...) consume independent streams and adding a new
  consumer never perturbs existing ones.
* :class:`RngPool` — a named pool of generators derived from one root
  seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_MASK_63 = (1 << 63) - 1


def derive_seed(root: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from ``root`` and ``labels``.

    The derivation is a SHA-256 hash of the root seed and the string
    representation of each label, so it is stable across processes and
    Python versions (unlike ``hash()``).

    >>> derive_seed(0, "noise") == derive_seed(0, "noise")
    True
    >>> derive_seed(0, "noise") != derive_seed(0, "model")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & _MASK_63


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngPool:
    """A pool of independent, named random generators.

    Each distinct name yields its own generator whose seed is derived
    from the pool's root seed.  Requesting the same name twice returns
    the same generator object, so consumers observe one continuous
    stream per name.

    >>> pool = RngPool(42)
    >>> a = pool.get("sa").integers(0, 100, 3)
    >>> b = RngPool(42).get("sa").integers(0, 100, 3)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, root_seed: Optional[int] = None):
        if root_seed is None:
            root_seed = int(np.random.default_rng().integers(0, _MASK_63))
        self.root_seed = int(root_seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def seed_for(self, name: str) -> int:
        """Return the derived seed for stream ``name`` without creating it."""
        return derive_seed(self.root_seed, name)

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for stream ``name``."""
        if name not in self._generators:
            self._generators[name] = np.random.default_rng(self.seed_for(name))
        return self._generators[name]

    def child(self, name: str) -> "RngPool":
        """Return a new pool rooted at the derived seed for ``name``."""
        return RngPool(self.seed_for(name))

    def __repr__(self) -> str:
        return f"RngPool(root_seed={self.root_seed})"
