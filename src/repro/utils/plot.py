"""Dependency-free ASCII/Unicode plotting for terminal reports.

Used by the examples and the experiment report generator to render
convergence curves (Fig. 4 style) and per-task bar groups (Fig. 5
style) without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Down-sample ``values`` into a unicode block sparkline."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("no values to plot")
    if len(values) > width:
        idx = np.linspace(0, len(values) - 1, width).astype(int)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    return "".join(
        _BLOCKS[int((v - lo) / span * (len(_BLOCKS) - 1))] for v in values
    )


def hbar_chart(
    data: Dict[str, float],
    width: int = 50,
    unit: str = "",
    baseline: Optional[str] = None,
) -> str:
    """Horizontal bar chart, one labelled row per entry.

    When ``baseline`` names a key, each row also shows the percentage
    relative to that entry (the Fig. 5(b) presentation).
    """
    if not data:
        raise ValueError("no data to plot")
    max_value = max(data.values())
    if max_value <= 0:
        raise ValueError("values must contain a positive entry")
    label_width = max(len(k) for k in data)
    base = data.get(baseline) if baseline is not None else None
    lines: List[str] = []
    for key, value in data.items():
        bar = "█" * max(1, int(round(width * value / max_value)))
        line = f"{key.rjust(label_width)} |{bar} {value:.1f}{unit}"
        if base:
            line += f" ({100.0 * value / base:.1f}%)"
        lines.append(line)
    return "\n".join(lines)


def curve_plot(
    curves: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    ylabel: str = "",
) -> str:
    """Multi-series line plot on a character canvas (Fig. 4 style).

    Series are drawn with distinct markers in legend order; later
    series overwrite earlier ones where they collide.
    """
    if not curves:
        raise ValueError("no curves to plot")
    markers = "*o+x#@%&"
    all_values = np.concatenate(
        [np.asarray(v, dtype=np.float64) for v in curves.values()]
    )
    if len(all_values) == 0:
        raise ValueError("curves are empty")
    lo, hi = float(all_values.min()), float(all_values.max())
    span = (hi - lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for series_idx, values in enumerate(curves.values()):
        values = np.asarray(values, dtype=np.float64)
        marker = markers[series_idx % len(markers)]
        cols = np.linspace(0, width - 1, min(len(values), width)).astype(int)
        idx = np.linspace(0, len(values) - 1, len(cols)).astype(int)
        for col, i in zip(cols, idx):
            row = height - 1 - int((values[i] - lo) / span * (height - 1))
            canvas[row][col] = marker

    lines = []
    for r, row in enumerate(canvas):
        y_value = hi - span * r / (height - 1) if height > 1 else hi
        lines.append(f"{y_value:>10.1f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(curves)
    )
    lines.append(" " * 12 + legend)
    if ylabel:
        lines.insert(0, f"{ylabel}")
    return "\n".join(lines)
