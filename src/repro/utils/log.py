"""Library-wide logging setup.

The library logs under the ``repro`` namespace and never configures the
root logger; applications decide where output goes.  ``get_logger``
attaches a single NullHandler-protected stream formatter the first time
it is called so that examples and the experiment harness produce
readable progress lines out of the box.
"""

from __future__ import annotations

import logging
from typing import Optional

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_configured = False


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger in the ``repro`` hierarchy.

    ``get_logger("core.bao")`` returns the ``repro.core.bao`` logger.
    The first call installs a NullHandler on the package root so that
    importing the library never prints anything unless the application
    opts in (e.g. via :func:`enable_console_logging`).
    """
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        root.addHandler(logging.NullHandler())
        _configured = True
    if not name or name == "repro":
        return root
    if name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` logger (idempotent)."""
    root = get_logger()
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            root.setLevel(level)
            return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    root.setLevel(level)
