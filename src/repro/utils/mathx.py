"""Small math helpers shared across the schedule-space and hardware models.

Most of these deal with integer factorizations, which is how tile-size
knobs are generated (an axis of extent ``n`` is split into ``k`` parts
whose product is ``n``), mirroring AutoTVM's ``SplitEntity`` machinery.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division: smallest ``q`` with ``q * b >= a``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def round_up(a: int, multiple: int) -> int:
    """Round ``a`` up to the nearest multiple of ``multiple``."""
    return ceil_div(a, multiple) * multiple


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into the closed interval ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    return max(lo, min(hi, x))


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n`` must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()


@lru_cache(maxsize=4096)
def factorize(n: int) -> Tuple[int, ...]:
    """Return the sorted tuple of all positive divisors of ``n``.

    >>> factorize(12)
    (1, 2, 3, 4, 6, 12)
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


def factor_pairs(n: int) -> List[Tuple[int, int]]:
    """All ordered pairs ``(a, b)`` with ``a * b == n``.

    >>> factor_pairs(4)
    [(1, 4), (2, 2), (4, 1)]
    """
    return [(d, n // d) for d in factorize(n)]


@lru_cache(maxsize=4096)
def all_factorizations(n: int, parts: int) -> Tuple[Tuple[int, ...], ...]:
    """All ordered ``parts``-tuples of positive ints whose product is ``n``.

    This enumerates every way to split a loop of extent ``n`` into
    ``parts`` nested loops, which is exactly the candidate set of an
    AutoTVM split knob.

    >>> all_factorizations(4, 2)
    ((1, 4), (2, 2), (4, 1))
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if parts == 1:
        return ((n,),)
    result: List[Tuple[int, ...]] = []
    for d in factorize(n):
        for rest in all_factorizations(n // d, parts - 1):
            result.append((d,) + rest)
    return tuple(result)


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``.

    Returns an ``(len(a), len(b))`` matrix.  Uses the expanded quadratic
    form for speed and clips tiny negative values caused by floating-
    point cancellation.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("inputs must be 2-D arrays of row vectors")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    sq = aa + bb - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return sq
