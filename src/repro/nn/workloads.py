"""Tunable-operator workload descriptions.

A *workload* identifies a tensor computation up to everything that
matters for scheduling: operator kind, tensor shapes, strides, padding,
grouping.  Two layers with equal workloads share one tuning task —
exactly how AutoTVM deduplicates the per-node searches (this is why
MobileNet-v1's 28 layers collapse to 19 tunable tasks in the paper).

Workloads are frozen dataclasses so they can key dictionaries and sets.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict


@dataclass(frozen=True)
class Workload:
    """Base class for all workloads."""

    @property
    def kind(self) -> str:
        """Short operator-class tag, e.g. ``"conv2d"``."""
        raise NotImplementedError

    @property
    def flops(self) -> int:
        """Number of floating-point operations (multiply-add counts as 2)."""
        raise NotImplementedError

    @property
    def input_bytes(self) -> int:
        """Bytes of input activations + weights read once (fp32)."""
        raise NotImplementedError

    @property
    def output_bytes(self) -> int:
        """Bytes of the output tensor (fp32)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """Serializable representation (kind + all fields)."""
        data = asdict(self)
        data["kind"] = self.kind
        return data

    def __str__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in asdict(self).items())
        return f"{self.kind}({fields})"


@dataclass(frozen=True)
class Conv2DWorkload(Workload):
    """Direct 2-D convolution, NCHW layout.

    ``groups`` covers grouped convolution; ``groups == in_channels``
    should instead use :class:`DepthwiseConv2DWorkload`, which gets its
    own schedule template (as in TVM).
    """

    batch: int
    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel_h: int
    kernel_w: int
    stride_h: int = 1
    stride_w: int = 1
    pad_h: int = 0
    pad_w: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        for name in (
            "batch",
            "in_channels",
            "out_channels",
            "height",
            "width",
            "kernel_h",
            "kernel_w",
            "stride_h",
            "stride_w",
            "groups",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.pad_h < 0 or self.pad_w < 0:
            raise ValueError("padding must be non-negative")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError("channels must be divisible by groups")

    @property
    def kind(self) -> str:
        return "conv2d"

    @property
    def out_height(self) -> int:
        return (self.height + 2 * self.pad_h - self.kernel_h) // self.stride_h + 1

    @property
    def out_width(self) -> int:
        return (self.width + 2 * self.pad_w - self.kernel_w) // self.stride_w + 1

    @property
    def flops(self) -> int:
        per_output = (
            2 * (self.in_channels // self.groups) * self.kernel_h * self.kernel_w
        )
        outputs = self.batch * self.out_channels * self.out_height * self.out_width
        return per_output * outputs

    @property
    def weight_count(self) -> int:
        return (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.kernel_h
            * self.kernel_w
        )

    @property
    def input_bytes(self) -> int:
        activations = self.batch * self.in_channels * self.height * self.width
        return 4 * (activations + self.weight_count)

    @property
    def output_bytes(self) -> int:
        return 4 * self.batch * self.out_channels * self.out_height * self.out_width


@dataclass(frozen=True)
class DepthwiseConv2DWorkload(Workload):
    """Depthwise 2-D convolution (one filter per channel), NCHW layout."""

    batch: int
    channels: int
    height: int
    width: int
    kernel_h: int
    kernel_w: int
    stride_h: int = 1
    stride_w: int = 1
    pad_h: int = 0
    pad_w: int = 0
    channel_multiplier: int = 1

    def __post_init__(self) -> None:
        for name in (
            "batch",
            "channels",
            "height",
            "width",
            "kernel_h",
            "kernel_w",
            "stride_h",
            "stride_w",
            "channel_multiplier",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.pad_h < 0 or self.pad_w < 0:
            raise ValueError("padding must be non-negative")

    @property
    def kind(self) -> str:
        return "depthwise_conv2d"

    @property
    def out_channels(self) -> int:
        return self.channels * self.channel_multiplier

    @property
    def out_height(self) -> int:
        return (self.height + 2 * self.pad_h - self.kernel_h) // self.stride_h + 1

    @property
    def out_width(self) -> int:
        return (self.width + 2 * self.pad_w - self.kernel_w) // self.stride_w + 1

    @property
    def flops(self) -> int:
        per_output = 2 * self.kernel_h * self.kernel_w
        outputs = self.batch * self.out_channels * self.out_height * self.out_width
        return per_output * outputs

    @property
    def weight_count(self) -> int:
        return self.out_channels * self.kernel_h * self.kernel_w

    @property
    def input_bytes(self) -> int:
        activations = self.batch * self.channels * self.height * self.width
        return 4 * (activations + self.weight_count)

    @property
    def output_bytes(self) -> int:
        return 4 * self.batch * self.out_channels * self.out_height * self.out_width


@dataclass(frozen=True)
class DenseWorkload(Workload):
    """Fully-connected layer: ``(batch, in) x (out, in)^T -> (batch, out)``."""

    batch: int
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        for name in ("batch", "in_features", "out_features"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def kind(self) -> str:
        return "dense"

    @property
    def flops(self) -> int:
        return 2 * self.batch * self.in_features * self.out_features

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    @property
    def input_bytes(self) -> int:
        return 4 * (self.batch * self.in_features + self.weight_count)

    @property
    def output_bytes(self) -> int:
        return 4 * self.batch * self.out_features


def arithmetic_intensity(workload: Workload) -> float:
    """FLOPs per byte of unavoidable DRAM traffic for ``workload``.

    A coarse roofline coordinate used by the hardware model and useful
    for sanity checks: pointwise convs have low intensity, big spatial
    convs have high intensity.
    """
    bytes_moved = workload.input_bytes + workload.output_bytes
    return workload.flops / float(bytes_moved)
