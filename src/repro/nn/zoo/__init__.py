"""Model zoo: the five networks of the paper's evaluation (Sec. V).

Each builder returns a shape-inferred :class:`~repro.nn.graph.Graph`
with batch size 1 and 224x224 RGB input (227x227 for AlexNet, as in the
original network), matching the TVM tutorial models the paper tunes.
"""

from typing import Callable, Dict, List

from repro.nn.graph import Graph
from repro.nn.zoo.alexnet import build_alexnet
from repro.nn.zoo.vgg import build_vgg16, build_vgg19
from repro.nn.zoo.resnet import build_resnet18, build_resnet34
from repro.nn.zoo.mobilenet import build_mobilenet_v1, build_mobilenet_v2
from repro.nn.zoo.squeezenet import build_squeezenet_v1_1

MODEL_BUILDERS: Dict[str, Callable[..., Graph]] = {
    "alexnet": build_alexnet,
    "vgg-16": build_vgg16,
    "vgg-19": build_vgg19,
    "resnet-18": build_resnet18,
    "resnet-34": build_resnet34,
    "mobilenet-v1": build_mobilenet_v1,
    "mobilenet-v2": build_mobilenet_v2,
    "squeezenet-v1.1": build_squeezenet_v1_1,
}

#: canonical evaluation order used throughout the paper's tables
PAPER_MODELS: List[str] = [
    "alexnet",
    "resnet-18",
    "vgg-16",
    "mobilenet-v1",
    "squeezenet-v1.1",
]

#: models beyond the paper's evaluation, for library users
EXTENSION_MODELS: List[str] = ["vgg-19", "resnet-34", "mobilenet-v2"]


def build_model(name: str, batch: int = 1) -> Graph:
    """Build a zoo model by its canonical name.

    >>> g = build_model("mobilenet-v1")
    >>> g.name
    'mobilenet-v1'
    """
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        )
    return MODEL_BUILDERS[key](batch=batch)


__all__ = [
    "MODEL_BUILDERS",
    "PAPER_MODELS",
    "EXTENSION_MODELS",
    "build_model",
    "build_alexnet",
    "build_vgg16",
    "build_vgg19",
    "build_resnet18",
    "build_resnet34",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_squeezenet_v1_1",
]
