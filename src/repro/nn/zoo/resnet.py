"""ResNet-18 (He et al., CVPR 2016) — basic-block variant."""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder


def _basic_block(
    b: GraphBuilder,
    name: str,
    in_node: int,
    channels: int,
    stride: int,
    downsample: bool,
) -> int:
    """Add one two-conv residual basic block; returns the output node id."""
    b.conv2d(
        f"{name}_conv1",
        channels,
        kernel=(3, 3),
        stride=(stride, stride),
        padding=(1, 1),
        source=in_node,
    )
    b.batch_norm(f"{name}_bn1")
    b.relu(f"{name}_relu1")
    b.conv2d(f"{name}_conv2", channels, kernel=(3, 3), padding=(1, 1))
    b.batch_norm(f"{name}_bn2")
    main = b.cursor

    if downsample:
        b.conv2d(
            f"{name}_downsample",
            channels,
            kernel=(1, 1),
            stride=(stride, stride),
            source=in_node,
        )
        b.batch_norm(f"{name}_downsample_bn")
        shortcut = b.cursor
    else:
        shortcut = in_node

    b.add(f"{name}_add", main, shortcut)
    return b.relu(f"{name}_relu2")


def _build_basic_resnet(
    name: str, blocks_per_stage, batch: int, num_classes: int
) -> Graph:
    """Shared builder for basic-block ResNets (18/34 layer variants)."""
    b = GraphBuilder(name)
    b.input((batch, 3, 224, 224))

    b.conv2d("conv1", 64, kernel=(7, 7), stride=(2, 2), padding=(3, 3))
    b.batch_norm("bn1")
    b.relu("relu1")
    b.pool2d("pool1", kernel=(3, 3), stride=(2, 2), padding=(1, 1))

    node = b.cursor
    plan = [(1, 64, 1), (2, 128, 2), (3, 256, 2), (4, 512, 2)]
    for (stage, channels, first_stride), n_blocks in zip(
        plan, blocks_per_stage
    ):
        for block in range(1, n_blocks + 1):
            stride = first_stride if block == 1 else 1
            node = _basic_block(
                b,
                f"layer{stage}_block{block}",
                node,
                channels,
                stride=stride,
                downsample=(block == 1 and first_stride != 1),
            )

    b.global_avg_pool("gap", source=node)
    b.flatten("flatten")
    b.dense("fc", num_classes)
    b.softmax("prob")

    graph = b.graph
    graph.infer_shapes()
    return graph


def build_resnet18(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build ResNet-18 with 224x224 input (basic blocks, [2,2,2,2])."""
    return _build_basic_resnet("resnet-18", (2, 2, 2, 2), batch, num_classes)


def build_resnet34(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build ResNet-34 with 224x224 input (basic blocks, [3,4,6,3]).

    An extension model beyond the paper's evaluation zoo.
    """
    return _build_basic_resnet("resnet-34", (3, 4, 6, 3), batch, num_classes)
