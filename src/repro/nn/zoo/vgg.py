"""VGG-16 (Simonyan & Zisserman, ICLR 2015), configuration D."""

from __future__ import annotations

from typing import List, Tuple

from repro.nn.graph import Graph, GraphBuilder

# (stage, number of convs, output channels) for configuration D
_VGG16_STAGES: List[Tuple[int, int, int]] = [
    (1, 2, 64),
    (2, 2, 128),
    (3, 3, 256),
    (4, 3, 512),
    (5, 3, 512),
]

# configuration E adds one conv to each of the last three stages
_VGG19_STAGES: List[Tuple[int, int, int]] = [
    (1, 2, 64),
    (2, 2, 128),
    (3, 4, 256),
    (4, 4, 512),
    (5, 4, 512),
]


def build_vgg16(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build VGG-16 with 224x224 input (13 conv layers, 3 dense layers)."""
    return _build_vgg("vgg-16", _VGG16_STAGES, batch, num_classes)


def build_vgg19(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build VGG-19 (configuration E) — an extension model."""
    return _build_vgg("vgg-19", _VGG19_STAGES, batch, num_classes)


def _build_vgg(
    name: str,
    stages: List[Tuple[int, int, int]],
    batch: int,
    num_classes: int,
) -> Graph:
    b = GraphBuilder(name)
    b.input((batch, 3, 224, 224))

    for stage, n_convs, channels in stages:
        for i in range(1, n_convs + 1):
            b.conv2d(
                f"conv{stage}_{i}", channels, kernel=(3, 3), padding=(1, 1)
            )
            b.relu(f"relu{stage}_{i}")
        b.pool2d(f"pool{stage}", kernel=(2, 2), stride=(2, 2))

    b.flatten("flatten")
    b.dense("fc6", 4096)
    b.relu("relu6")
    b.dropout("drop6")
    b.dense("fc7", 4096)
    b.relu("relu7")
    b.dropout("drop7")
    b.dense("fc8", num_classes)
    b.softmax("prob")

    graph = b.graph
    graph.infer_shapes()
    return graph
