"""MobileNet-v1 (Howard et al., 2017), width multiplier 1.0.

The 28-layer network collapses to 19 unique conv/depthwise tuning tasks
after workload deduplication — the task count of Fig. 5 in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.nn.graph import Graph, GraphBuilder

# (depthwise stride, pointwise output channels) for the 13 separable blocks
_BLOCKS: List[Tuple[int, int]] = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
]


# (expansion, out_channels, repeats, first stride) for MobileNet-v2
_V2_BLOCKS: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def build_mobilenet_v2(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build MobileNet-v2 (Sandler et al., 2018) with 224x224 input.

    An *extension* model beyond the paper's zoo: its inverted-residual
    blocks exercise the fusion pass's shortcut handling on depthwise
    anchors.  Activations are modeled as ReLU (the IR has no ReLU6
    distinction; schedule spaces are unaffected).
    """
    b = GraphBuilder("mobilenet-v2")
    b.input((batch, 3, 224, 224))

    b.conv2d("conv1", 32, kernel=(3, 3), stride=(2, 2), padding=(1, 1))
    b.batch_norm("conv1_bn")
    b.relu("conv1_relu")

    in_channels = 32
    block_id = 0
    for expansion, out_channels, repeats, first_stride in _V2_BLOCKS:
        for r in range(repeats):
            block_id += 1
            stride = first_stride if r == 0 else 1
            name = f"block{block_id}"
            entry = b.cursor
            hidden = in_channels * expansion
            if expansion != 1:
                b.conv2d(f"{name}_expand", hidden, kernel=(1, 1))
                b.batch_norm(f"{name}_expand_bn")
                b.relu(f"{name}_expand_relu")
            b.depthwise_conv2d(
                f"{name}_dw",
                kernel=(3, 3),
                stride=(stride, stride),
                padding=(1, 1),
            )
            b.batch_norm(f"{name}_dw_bn")
            b.relu(f"{name}_dw_relu")
            b.conv2d(f"{name}_project", out_channels, kernel=(1, 1))
            b.batch_norm(f"{name}_project_bn")
            if stride == 1 and in_channels == out_channels:
                b.add(f"{name}_residual", b.cursor, entry)
            in_channels = out_channels

    b.conv2d("conv_last", 1280, kernel=(1, 1))
    b.batch_norm("conv_last_bn")
    b.relu("conv_last_relu")
    b.global_avg_pool("gap")
    b.flatten("flatten")
    b.dense("fc", num_classes)
    b.softmax("prob")

    graph = b.graph
    graph.infer_shapes()
    return graph


def build_mobilenet_v1(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build MobileNet-v1 with 224x224 input."""
    b = GraphBuilder("mobilenet-v1")
    b.input((batch, 3, 224, 224))

    b.conv2d("conv1", 32, kernel=(3, 3), stride=(2, 2), padding=(1, 1))
    b.batch_norm("conv1_bn")
    b.relu("conv1_relu")

    for i, (stride, out_channels) in enumerate(_BLOCKS, start=1):
        b.depthwise_conv2d(
            f"block{i}_dw",
            kernel=(3, 3),
            stride=(stride, stride),
            padding=(1, 1),
        )
        b.batch_norm(f"block{i}_dw_bn")
        b.relu(f"block{i}_dw_relu")
        b.conv2d(f"block{i}_pw", out_channels, kernel=(1, 1))
        b.batch_norm(f"block{i}_pw_bn")
        b.relu(f"block{i}_pw_relu")

    b.global_avg_pool("gap")
    b.flatten("flatten")
    b.dense("fc", num_classes)
    b.softmax("prob")

    graph = b.graph
    graph.infer_shapes()
    return graph
