"""AlexNet (Krizhevsky et al., NeurIPS 2012) — single-tower variant."""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder


def build_alexnet(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build AlexNet with 227x227 input (5 conv layers, 3 dense layers)."""
    b = GraphBuilder("alexnet")
    b.input((batch, 3, 227, 227))

    b.conv2d("conv1", 96, kernel=(11, 11), stride=(4, 4))
    b.relu("relu1")
    b.lrn("lrn1")
    b.pool2d("pool1", kernel=(3, 3), stride=(2, 2))

    b.conv2d("conv2", 256, kernel=(5, 5), padding=(2, 2))
    b.relu("relu2")
    b.lrn("lrn2")
    b.pool2d("pool2", kernel=(3, 3), stride=(2, 2))

    b.conv2d("conv3", 384, kernel=(3, 3), padding=(1, 1))
    b.relu("relu3")
    b.conv2d("conv4", 384, kernel=(3, 3), padding=(1, 1))
    b.relu("relu4")
    b.conv2d("conv5", 256, kernel=(3, 3), padding=(1, 1))
    b.relu("relu5")
    b.pool2d("pool5", kernel=(3, 3), stride=(2, 2))

    b.flatten("flatten")
    b.dense("fc6", 4096)
    b.relu("relu6")
    b.dropout("drop6")
    b.dense("fc7", 4096)
    b.relu("relu7")
    b.dropout("drop7")
    b.dense("fc8", num_classes)
    b.softmax("prob")

    graph = b.graph
    graph.infer_shapes()
    return graph
