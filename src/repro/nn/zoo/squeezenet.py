"""SqueezeNet v1.1 (Iandola et al., 2016)."""

from __future__ import annotations

from repro.nn.graph import Graph, GraphBuilder


def _fire(
    b: GraphBuilder,
    name: str,
    in_node: int,
    squeeze: int,
    expand: int,
) -> int:
    """Add one fire module; returns the concat output node id."""
    b.conv2d(f"{name}_squeeze1x1", squeeze, kernel=(1, 1), source=in_node)
    b.relu(f"{name}_squeeze_relu")
    squeezed = b.cursor

    b.conv2d(f"{name}_expand1x1", expand, kernel=(1, 1), source=squeezed)
    left = b.relu(f"{name}_expand1x1_relu")

    b.conv2d(
        f"{name}_expand3x3", expand, kernel=(3, 3), padding=(1, 1), source=squeezed
    )
    right = b.relu(f"{name}_expand3x3_relu")

    return b.concat(f"{name}_concat", [left, right])


def build_squeezenet_v1_1(batch: int = 1, num_classes: int = 1000) -> Graph:
    """Build SqueezeNet v1.1 with 224x224 input (8 fire modules)."""
    b = GraphBuilder("squeezenet-v1.1")
    b.input((batch, 3, 224, 224))

    b.conv2d("conv1", 64, kernel=(3, 3), stride=(2, 2))
    b.relu("relu1")
    b.pool2d("pool1", kernel=(3, 3), stride=(2, 2), ceil_mode=True)

    node = b.cursor
    node = _fire(b, "fire2", node, squeeze=16, expand=64)
    node = _fire(b, "fire3", node, squeeze=16, expand=64)
    b.pool2d("pool3", kernel=(3, 3), stride=(2, 2), ceil_mode=True, source=node)

    node = b.cursor
    node = _fire(b, "fire4", node, squeeze=32, expand=128)
    node = _fire(b, "fire5", node, squeeze=32, expand=128)
    b.pool2d("pool5", kernel=(3, 3), stride=(2, 2), ceil_mode=True, source=node)

    node = b.cursor
    node = _fire(b, "fire6", node, squeeze=48, expand=192)
    node = _fire(b, "fire7", node, squeeze=48, expand=192)
    node = _fire(b, "fire8", node, squeeze=64, expand=256)
    node = _fire(b, "fire9", node, squeeze=64, expand=256)

    b.dropout("drop9", source=node)
    b.conv2d("conv10", num_classes, kernel=(1, 1))
    b.relu("relu10")
    b.global_avg_pool("gap")
    b.flatten("flatten")
    b.softmax("prob")

    graph = b.graph
    graph.infer_shapes()
    return graph
