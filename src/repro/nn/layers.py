"""Layer specifications with shape inference.

Layers are *descriptions*, not executable kernels: the library optimizes
schedules, it does not run inference.  Each layer knows how to infer its
output shape from input shapes, how many FLOPs and parameters it costs,
and — for the tunable anchors (conv / depthwise conv / dense) — which
:class:`~repro.nn.workloads.Workload` it maps to.

Shapes are ``(N, C, H, W)`` tuples for feature maps and ``(N, F)`` for
flattened features, matching TVM's NCHW convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
    Workload,
)

Shape = Tuple[int, ...]


class ShapeError(ValueError):
    """Raised when a layer receives inputs with incompatible shapes."""


def _expect_rank(shape: Shape, rank: int, layer: str) -> None:
    if len(shape) != rank:
        raise ShapeError(f"{layer} expects rank-{rank} input, got shape {shape}")


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications."""

    name: str

    #: how many inputs the layer consumes; ``None`` means variadic.
    ARITY: Optional[int] = field(default=1, init=False, repr=False)

    @property
    def op(self) -> str:
        """Operator-class tag, e.g. ``"conv2d"`` or ``"relu"``."""
        raise NotImplementedError

    @property
    def is_anchor(self) -> bool:
        """True for compute-heavy ops that anchor a fused group."""
        return False

    @property
    def is_injective(self) -> bool:
        """True for elementwise/injective ops that can fuse into an anchor."""
        return False

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Output shape given input shapes; raises :class:`ShapeError`."""
        raise NotImplementedError

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        """Floating-point operations for one forward pass (default 0)."""
        return 0

    def param_count(self) -> int:
        """Number of learnable parameters (default 0)."""
        return 0

    def workload(self, input_shapes: Sequence[Shape]) -> Optional[Workload]:
        """The tunable workload this layer maps to, if it is an anchor."""
        return None

    def _check_arity(self, input_shapes: Sequence[Shape]) -> None:
        if self.ARITY is not None and len(input_shapes) != self.ARITY:
            raise ShapeError(
                f"{self.op} '{self.name}' expects {self.ARITY} input(s), "
                f"got {len(input_shapes)}"
            )


@dataclass(frozen=True)
class Input(LayerSpec):
    """Graph input placeholder carrying a fixed shape."""

    shape: Shape = (1, 3, 224, 224)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ARITY", 0)

    @property
    def op(self) -> str:
        return "input"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        return tuple(self.shape)


@dataclass(frozen=True)
class Conv2D(LayerSpec):
    """2-D convolution over NCHW input (grouped supported via ``groups``)."""

    out_channels: int = 64
    kernel: Tuple[int, int] = (3, 3)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    groups: int = 1
    bias: bool = True
    _in_channels: Optional[int] = field(default=None, compare=False)

    @property
    def op(self) -> str:
        return "conv2d"

    @property
    def is_anchor(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        _expect_rank(shape, 4, self.op)
        n, c, h, w = shape
        if c % self.groups != 0:
            raise ShapeError(
                f"conv2d '{self.name}': {c} channels not divisible by "
                f"groups={self.groups}"
            )
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        oh = (h + 2 * ph - kh) // sh + 1
        ow = (w + 2 * pw - kw) // sw + 1
        if oh <= 0 or ow <= 0:
            raise ShapeError(
                f"conv2d '{self.name}': kernel {self.kernel} does not fit "
                f"input {shape} with padding {self.padding}"
            )
        object.__setattr__(self, "_in_channels", c)
        return (n, self.out_channels, oh, ow)

    def workload(self, input_shapes: Sequence[Shape]) -> Conv2DWorkload:
        (shape,) = input_shapes
        n, c, h, w = shape
        return Conv2DWorkload(
            batch=n,
            in_channels=c,
            out_channels=self.out_channels,
            height=h,
            width=w,
            kernel_h=self.kernel[0],
            kernel_w=self.kernel[1],
            stride_h=self.stride[0],
            stride_w=self.stride[1],
            pad_h=self.padding[0],
            pad_w=self.padding[1],
            groups=self.groups,
        )

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        return self.workload(input_shapes).flops

    def param_count(self) -> int:
        if self._in_channels is None:
            raise ShapeError(
                f"conv2d '{self.name}': call infer_shape before param_count"
            )
        kh, kw = self.kernel
        weights = self.out_channels * (self._in_channels // self.groups) * kh * kw
        return weights + (self.out_channels if self.bias else 0)


@dataclass(frozen=True)
class DepthwiseConv2D(LayerSpec):
    """Depthwise 2-D convolution (one filter per input channel)."""

    kernel: Tuple[int, int] = (3, 3)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (1, 1)
    channel_multiplier: int = 1
    bias: bool = True
    _in_channels: Optional[int] = field(default=None, compare=False)

    @property
    def op(self) -> str:
        return "depthwise_conv2d"

    @property
    def is_anchor(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        _expect_rank(shape, 4, self.op)
        n, c, h, w = shape
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        oh = (h + 2 * ph - kh) // sh + 1
        ow = (w + 2 * pw - kw) // sw + 1
        if oh <= 0 or ow <= 0:
            raise ShapeError(
                f"depthwise_conv2d '{self.name}': kernel {self.kernel} does "
                f"not fit input {shape}"
            )
        object.__setattr__(self, "_in_channels", c)
        return (n, c * self.channel_multiplier, oh, ow)

    def workload(self, input_shapes: Sequence[Shape]) -> DepthwiseConv2DWorkload:
        (shape,) = input_shapes
        n, c, h, w = shape
        return DepthwiseConv2DWorkload(
            batch=n,
            channels=c,
            height=h,
            width=w,
            kernel_h=self.kernel[0],
            kernel_w=self.kernel[1],
            stride_h=self.stride[0],
            stride_w=self.stride[1],
            pad_h=self.padding[0],
            pad_w=self.padding[1],
            channel_multiplier=self.channel_multiplier,
        )

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        return self.workload(input_shapes).flops

    def param_count(self) -> int:
        if self._in_channels is None:
            raise ShapeError(
                f"depthwise_conv2d '{self.name}': call infer_shape first"
            )
        kh, kw = self.kernel
        out_c = self._in_channels * self.channel_multiplier
        return out_c * kh * kw + (out_c if self.bias else 0)


@dataclass(frozen=True)
class Dense(LayerSpec):
    """Fully-connected layer on rank-2 input ``(N, F)``."""

    out_features: int = 1000
    bias: bool = True
    _in_features: Optional[int] = field(default=None, compare=False)

    @property
    def op(self) -> str:
        return "dense"

    @property
    def is_anchor(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        _expect_rank(shape, 2, self.op)
        n, f = shape
        object.__setattr__(self, "_in_features", f)
        return (n, self.out_features)

    def workload(self, input_shapes: Sequence[Shape]) -> DenseWorkload:
        (shape,) = input_shapes
        n, f = shape
        return DenseWorkload(batch=n, in_features=f, out_features=self.out_features)

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        return self.workload(input_shapes).flops

    def param_count(self) -> int:
        if self._in_features is None:
            raise ShapeError(f"dense '{self.name}': call infer_shape first")
        return self._in_features * self.out_features + (
            self.out_features if self.bias else 0
        )


@dataclass(frozen=True)
class Pool2D(LayerSpec):
    """Max or average pooling over NCHW input."""

    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)
    padding: Tuple[int, int] = (0, 0)
    mode: str = "max"
    ceil_mode: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise ValueError(f"pool mode must be 'max' or 'avg', got {self.mode!r}")

    @property
    def op(self) -> str:
        return f"{self.mode}_pool2d"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        _expect_rank(shape, 4, self.op)
        n, c, h, w = shape
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        if self.ceil_mode:
            oh = -(-(h + 2 * ph - kh) // sh) + 1
            ow = -(-(w + 2 * pw - kw) // sw) + 1
        else:
            oh = (h + 2 * ph - kh) // sh + 1
            ow = (w + 2 * pw - kw) // sw + 1
        if oh <= 0 or ow <= 0:
            raise ShapeError(f"{self.op} '{self.name}': window does not fit {shape}")
        return (n, c, oh, ow)

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        n, c, oh, ow = self.infer_shape(input_shapes)
        return n * c * oh * ow * self.kernel[0] * self.kernel[1]


@dataclass(frozen=True)
class GlobalAvgPool(LayerSpec):
    """Global average pooling: ``(N, C, H, W) -> (N, C, 1, 1)``."""

    @property
    def op(self) -> str:
        return "global_avg_pool"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        _expect_rank(shape, 4, self.op)
        n, c, _, _ = shape
        return (n, c, 1, 1)

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        n, c, h, w = input_shapes[0]
        return n * c * h * w


@dataclass(frozen=True)
class BatchNorm(LayerSpec):
    """Inference-mode batch normalization (fusable, injective)."""

    _channels: Optional[int] = field(default=None, compare=False)

    @property
    def op(self) -> str:
        return "batch_norm"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        _expect_rank(shape, 4, self.op)
        object.__setattr__(self, "_channels", shape[1])
        return shape

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        n, c, h, w = input_shapes[0]
        return 2 * n * c * h * w

    def param_count(self) -> int:
        if self._channels is None:
            raise ShapeError(f"batch_norm '{self.name}': call infer_shape first")
        return 2 * self._channels


@dataclass(frozen=True)
class ReLU(LayerSpec):
    """Rectified linear activation (fusable, injective)."""

    @property
    def op(self) -> str:
        return "relu"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        return input_shapes[0]

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        total = 1
        for dim in input_shapes[0]:
            total *= dim
        return total


@dataclass(frozen=True)
class LRN(LayerSpec):
    """Local response normalization (AlexNet-era; injective for fusion)."""

    size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75

    @property
    def op(self) -> str:
        return "lrn"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        _expect_rank(input_shapes[0], 4, self.op)
        return input_shapes[0]

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        n, c, h, w = input_shapes[0]
        return n * c * h * w * (2 * self.size + 3)


@dataclass(frozen=True)
class Dropout(LayerSpec):
    """Dropout — identity at inference time (injective)."""

    rate: float = 0.5

    @property
    def op(self) -> str:
        return "dropout"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        return input_shapes[0]


@dataclass(frozen=True)
class Softmax(LayerSpec):
    """Softmax over the last axis (injective for fusion purposes)."""

    @property
    def op(self) -> str:
        return "softmax"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        return input_shapes[0]

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        total = 1
        for dim in input_shapes[0]:
            total *= dim
        return 3 * total


@dataclass(frozen=True)
class Flatten(LayerSpec):
    """Flatten all but the batch dimension: ``(N, ...) -> (N, F)``."""

    @property
    def op(self) -> str:
        return "flatten"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        (shape,) = input_shapes
        if len(shape) < 2:
            raise ShapeError(f"flatten '{self.name}': need rank >= 2, got {shape}")
        features = 1
        for dim in shape[1:]:
            features *= dim
        return (shape[0], features)


@dataclass(frozen=True)
class Concat(LayerSpec):
    """Concatenate along the channel axis (multi-branch join)."""

    axis: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "ARITY", None)

    @property
    def op(self) -> str:
        return "concat"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ShapeError(f"concat '{self.name}': need >= 2 inputs")
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if len(shape) != len(first):
                raise ShapeError(f"concat '{self.name}': rank mismatch")
            for i, (a, b) in enumerate(zip(first, shape)):
                if i != self.axis and a != b:
                    raise ShapeError(
                        f"concat '{self.name}': shapes {first} and {shape} "
                        f"differ outside axis {self.axis}"
                    )
        out = list(first)
        out[self.axis] = sum(shape[self.axis] for shape in input_shapes)
        return tuple(out)


@dataclass(frozen=True)
class Add(LayerSpec):
    """Elementwise addition (residual shortcut join; injective)."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "ARITY", 2)

    @property
    def op(self) -> str:
        return "add"

    @property
    def is_injective(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_arity(input_shapes)
        a, b = input_shapes
        if a != b:
            raise ShapeError(f"add '{self.name}': shape mismatch {a} vs {b}")
        return a

    def flops(self, input_shapes: Sequence[Shape]) -> int:
        total = 1
        for dim in input_shapes[0]:
            total *= dim
        return total
