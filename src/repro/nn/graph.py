"""Computational-graph IR.

A :class:`Graph` is a DAG of :class:`Node` objects, each wrapping a
:class:`~repro.nn.layers.LayerSpec`.  The graph owns topological
ordering, whole-graph shape inference, and aggregate statistics (FLOPs,
parameters).  :class:`GraphBuilder` provides the fluent API the model
zoo uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.nn.layers import Input, LayerSpec, Shape, ShapeError


@dataclass
class Node:
    """One graph node: a layer plus the ids of its input nodes."""

    node_id: int
    layer: LayerSpec
    inputs: Tuple[int, ...]
    output_shape: Optional[Shape] = field(default=None)

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def op(self) -> str:
        return self.layer.op

    def __repr__(self) -> str:
        return (
            f"Node(id={self.node_id}, op={self.op!r}, name={self.name!r}, "
            f"inputs={list(self.inputs)}, shape={self.output_shape})"
        )


class Graph:
    """A directed acyclic computational graph.

    Nodes are appended in construction order; input edges must point to
    already-existing nodes, which guarantees acyclicity and makes the
    insertion order a valid topological order.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._nodes: List[Node] = []
        self._names: Dict[str, int] = {}
        self._shapes_ready = False

    # ------------------------------------------------------------------
    # construction

    def add(self, layer: LayerSpec, inputs: Sequence[int] = ()) -> int:
        """Append a node for ``layer`` fed by node ids ``inputs``.

        Returns the new node's id.  Raises :class:`ValueError` on a
        duplicate layer name or a dangling input reference.
        """
        if layer.name in self._names:
            raise ValueError(f"duplicate layer name {layer.name!r} in {self.name!r}")
        for src in inputs:
            if not 0 <= src < len(self._nodes):
                raise ValueError(
                    f"layer {layer.name!r} references unknown node id {src}"
                )
        node_id = len(self._nodes)
        self._nodes.append(Node(node_id, layer, tuple(inputs)))
        self._names[layer.name] = node_id
        self._shapes_ready = False
        return node_id

    # ------------------------------------------------------------------
    # access

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def node_by_name(self, name: str) -> Node:
        """Look a node up by its layer name."""
        if name not in self._names:
            raise KeyError(f"no node named {name!r} in graph {self.name!r}")
        return self._nodes[self._names[name]]

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    def topological_order(self) -> List[Node]:
        """Nodes in a valid topological order (== insertion order)."""
        return list(self._nodes)

    def consumers(self, node_id: int) -> List[int]:
        """Ids of nodes that read the output of ``node_id``."""
        return [n.node_id for n in self._nodes if node_id in n.inputs]

    def output_nodes(self) -> List[Node]:
        """Nodes whose outputs nothing consumes (graph outputs)."""
        consumed = {src for node in self._nodes for src in node.inputs}
        return [n for n in self._nodes if n.node_id not in consumed]

    # ------------------------------------------------------------------
    # analysis

    def infer_shapes(self) -> None:
        """Run shape inference over the whole graph (idempotent)."""
        if self._shapes_ready:
            return
        for node in self._nodes:
            input_shapes = []
            for src in node.inputs:
                shape = self._nodes[src].output_shape
                if shape is None:
                    raise ShapeError(
                        f"node {node.name!r} reads {self._nodes[src].name!r} "
                        "whose shape is unknown"
                    )
                input_shapes.append(shape)
            node.output_shape = node.layer.infer_shape(input_shapes)
        self._shapes_ready = True

    def input_shapes_of(self, node: Node) -> List[Shape]:
        """Inferred shapes of ``node``'s inputs (shape inference implied)."""
        self.infer_shapes()
        shapes = []
        for src in node.inputs:
            shape = self._nodes[src].output_shape
            assert shape is not None
            shapes.append(shape)
        return shapes

    def total_flops(self) -> int:
        """Sum of per-layer FLOPs over the whole graph."""
        self.infer_shapes()
        return sum(
            node.layer.flops(self.input_shapes_of(node)) for node in self._nodes
        )

    def total_params(self) -> int:
        """Total learnable-parameter count."""
        self.infer_shapes()
        return sum(node.layer.param_count() for node in self._nodes)

    def summary(self) -> str:
        """Human-readable multi-line summary table of the graph."""
        self.infer_shapes()
        lines = [f"Graph {self.name!r}: {len(self)} nodes"]
        header = f"{'id':>4}  {'op':<18} {'name':<24} {'shape':<20} {'inputs'}"
        lines.append(header)
        lines.append("-" * len(header))
        for node in self._nodes:
            lines.append(
                f"{node.node_id:>4}  {node.op:<18} {node.name:<24} "
                f"{str(node.output_shape):<20} {list(node.inputs)}"
            )
        lines.append(
            f"total: {self.total_flops() / 1e9:.3f} GFLOPs, "
            f"{self.total_params() / 1e6:.3f} M params"
        )
        return "\n".join(lines)


class GraphBuilder:
    """Fluent helper for building sequential-with-branches graphs.

    The builder tracks a *cursor* (the most recently added node), so
    straight-line sections read naturally, while explicit node ids
    support branches and joins:

    >>> b = GraphBuilder("tiny")
    >>> _ = b.input((1, 3, 8, 8))
    >>> _ = b.conv2d("c1", 8, kernel=(3, 3), padding=(1, 1))
    >>> _ = b.relu("r1")
    >>> g = b.graph
    >>> g.infer_shapes()
    """

    def __init__(self, name: str = "graph"):
        self.graph = Graph(name)
        self._cursor: Optional[int] = None

    @property
    def cursor(self) -> int:
        """Id of the most recently added node."""
        if self._cursor is None:
            raise ValueError("graph is empty; add an input first")
        return self._cursor

    def _push(self, layer: LayerSpec, inputs: Sequence[int]) -> int:
        self._cursor = self.graph.add(layer, inputs)
        return self._cursor

    def _resolve(self, source: Optional[int]) -> Tuple[int, ...]:
        return (self.cursor if source is None else source,)

    # -- layer helpers (all return the new node id) --------------------

    def input(self, shape: Shape, name: str = "input") -> int:
        from repro.nn.layers import Input

        return self._push(Input(name=name, shape=tuple(shape)), ())

    def conv2d(
        self,
        name: str,
        out_channels: int,
        kernel: Tuple[int, int] = (3, 3),
        stride: Tuple[int, int] = (1, 1),
        padding: Tuple[int, int] = (0, 0),
        groups: int = 1,
        source: Optional[int] = None,
    ) -> int:
        from repro.nn.layers import Conv2D

        layer = Conv2D(
            name=name,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
        )
        return self._push(layer, self._resolve(source))

    def depthwise_conv2d(
        self,
        name: str,
        kernel: Tuple[int, int] = (3, 3),
        stride: Tuple[int, int] = (1, 1),
        padding: Tuple[int, int] = (1, 1),
        source: Optional[int] = None,
    ) -> int:
        from repro.nn.layers import DepthwiseConv2D

        layer = DepthwiseConv2D(
            name=name, kernel=kernel, stride=stride, padding=padding
        )
        return self._push(layer, self._resolve(source))

    def dense(self, name: str, out_features: int, source: Optional[int] = None) -> int:
        from repro.nn.layers import Dense

        return self._push(
            Dense(name=name, out_features=out_features), self._resolve(source)
        )

    def pool2d(
        self,
        name: str,
        kernel: Tuple[int, int] = (2, 2),
        stride: Tuple[int, int] = (2, 2),
        padding: Tuple[int, int] = (0, 0),
        mode: str = "max",
        ceil_mode: bool = False,
        source: Optional[int] = None,
    ) -> int:
        from repro.nn.layers import Pool2D

        layer = Pool2D(
            name=name,
            kernel=kernel,
            stride=stride,
            padding=padding,
            mode=mode,
            ceil_mode=ceil_mode,
        )
        return self._push(layer, self._resolve(source))

    def global_avg_pool(self, name: str, source: Optional[int] = None) -> int:
        from repro.nn.layers import GlobalAvgPool

        return self._push(GlobalAvgPool(name=name), self._resolve(source))

    def batch_norm(self, name: str, source: Optional[int] = None) -> int:
        from repro.nn.layers import BatchNorm

        return self._push(BatchNorm(name=name), self._resolve(source))

    def relu(self, name: str, source: Optional[int] = None) -> int:
        from repro.nn.layers import ReLU

        return self._push(ReLU(name=name), self._resolve(source))

    def lrn(self, name: str, source: Optional[int] = None) -> int:
        from repro.nn.layers import LRN

        return self._push(LRN(name=name), self._resolve(source))

    def dropout(self, name: str, rate: float = 0.5, source: Optional[int] = None) -> int:
        from repro.nn.layers import Dropout

        return self._push(Dropout(name=name, rate=rate), self._resolve(source))

    def softmax(self, name: str, source: Optional[int] = None) -> int:
        from repro.nn.layers import Softmax

        return self._push(Softmax(name=name), self._resolve(source))

    def flatten(self, name: str, source: Optional[int] = None) -> int:
        from repro.nn.layers import Flatten

        return self._push(Flatten(name=name), self._resolve(source))

    def concat(self, name: str, sources: Sequence[int], axis: int = 1) -> int:
        from repro.nn.layers import Concat

        return self._push(Concat(name=name, axis=axis), tuple(sources))

    def add(self, name: str, lhs: int, rhs: int) -> int:
        from repro.nn.layers import Add

        return self._push(Add(name=name), (lhs, rhs))
