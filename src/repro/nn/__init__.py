"""DNN computational-graph substrate.

This package is the stand-in for the TVM frontend the paper builds on:
layer specifications with shape inference (:mod:`repro.nn.layers`), a
computational-graph IR (:mod:`repro.nn.graph`), the graph-level operator
fusion pass (:mod:`repro.nn.fusion`), and the five-model zoo used in the
paper's evaluation (:mod:`repro.nn.zoo`).
"""

from repro.nn.layers import (
    LayerSpec,
    Input,
    Conv2D,
    DepthwiseConv2D,
    Dense,
    Pool2D,
    GlobalAvgPool,
    BatchNorm,
    ReLU,
    LRN,
    Dropout,
    Softmax,
    Flatten,
    Concat,
    Add,
)
from repro.nn.graph import Graph, Node, GraphBuilder
from repro.nn.fusion import fuse_graph, FusedOp
from repro.nn.workloads import (
    Workload,
    Conv2DWorkload,
    DepthwiseConv2DWorkload,
    DenseWorkload,
)
from repro.nn import zoo

__all__ = [
    "LayerSpec",
    "Input",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "Pool2D",
    "GlobalAvgPool",
    "BatchNorm",
    "ReLU",
    "LRN",
    "Dropout",
    "Softmax",
    "Flatten",
    "Concat",
    "Add",
    "Graph",
    "Node",
    "GraphBuilder",
    "fuse_graph",
    "FusedOp",
    "Workload",
    "Conv2DWorkload",
    "DepthwiseConv2DWorkload",
    "DenseWorkload",
    "zoo",
]
