"""Graph-level operator fusion.

This reproduces the high-level computation-graph optimization stage of
Fig. 1 in the paper (and TVM's fuse-ops pass at its standard opt level):
injective operators (batch-norm, ReLU, bias-add, residual add, dropout,
...) are folded into the preceding compute-heavy *anchor* operator
(conv2d / depthwise conv2d / dense), producing one fused kernel per
anchor.  Each fused kernel whose anchor is tunable becomes one
node-wise optimization task.

The fusion rule is the classic greedy one:

* every anchor node opens a new fused group;
* an injective node joins the group of its producer when that producer
  (a) already belongs to a group with an anchor and (b) is consumed by
  this node alone — otherwise the intermediate tensor must materialize
  and fusion is illegal;
* for two-input injective joins (residual ``add``) the node may join the
  group of either producer under the same sole-consumer condition;
* everything else (pooling, concat, input) forms a standalone
  non-tunable group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.nn.graph import Graph, Node
from repro.nn.workloads import Workload


@dataclass
class FusedOp:
    """One fused kernel: an ordered group of graph nodes.

    ``workload`` is set when the group contains a tunable anchor; fused
    groups with equal workloads share a tuning task downstream.
    """

    name: str
    node_ids: Tuple[int, ...]
    anchor_id: Optional[int]
    workload: Optional[Workload]
    ops: Tuple[str, ...]
    flops: int = 0

    @property
    def is_tunable(self) -> bool:
        return self.workload is not None

    def __repr__(self) -> str:
        tag = "tunable" if self.is_tunable else "fixed"
        return f"FusedOp({self.name!r}, ops={'+'.join(self.ops)}, {tag})"


def fuse_graph(graph: Graph) -> List[FusedOp]:
    """Fuse ``graph`` into a list of :class:`FusedOp` groups.

    Groups are returned in topological order of their first node.  The
    union of all groups' ``node_ids`` is exactly the set of graph nodes
    (each node belongs to exactly one group).
    """
    graph.infer_shapes()
    consumer_count: Dict[int, int] = {node.node_id: 0 for node in graph}
    for node in graph:
        for src in node.inputs:
            consumer_count[src] += 1

    group_of: Dict[int, int] = {}
    groups: List[List[int]] = []
    anchor_of_group: List[Optional[int]] = []

    def open_group(node: Node, anchored: bool) -> None:
        group_of[node.node_id] = len(groups)
        groups.append([node.node_id])
        anchor_of_group.append(node.node_id if anchored else None)

    for node in graph.topological_order():
        layer = node.layer
        if layer.is_anchor:
            open_group(node, anchored=True)
            continue
        if layer.is_injective and node.inputs:
            joined = False
            for src in node.inputs:
                src_group = group_of[src]
                if anchor_of_group[src_group] is None:
                    continue
                if consumer_count[src] != 1:
                    continue
                # The producer must be the tail of its group: fusing past
                # an interior node would reorder computation.
                if groups[src_group][-1] != src:
                    continue
                groups[src_group].append(node.node_id)
                group_of[node.node_id] = src_group
                joined = True
                break
            if joined:
                continue
        open_group(node, anchored=False)

    fused: List[FusedOp] = []
    for group_ids, anchor_id in zip(groups, anchor_of_group):
        nodes = [graph[i] for i in group_ids]
        workload = None
        if anchor_id is not None:
            anchor = graph[anchor_id]
            workload = anchor.layer.workload(graph.input_shapes_of(anchor))
        flops = sum(
            n.layer.flops(graph.input_shapes_of(n)) for n in nodes
        )
        fused.append(
            FusedOp(
                name=nodes[0].name,
                node_ids=tuple(group_ids),
                anchor_id=anchor_id,
                workload=workload,
                ops=tuple(n.op for n in nodes),
                flops=flops,
            )
        )
    return fused


def tunable_workloads(graph: Graph) -> List[Workload]:
    """Deduplicated tunable workloads of ``graph``, in first-seen order.

    This is the per-model tuning-task list: equal workloads collapse to
    one task, matching how AutoTVM extracts tasks (e.g. MobileNet-v1's
    28 anchor layers collapse to the 19 tasks of the paper's Fig. 5).
    """
    seen: Dict[Workload, None] = {}
    for op in fuse_graph(graph):
        if op.workload is not None and op.workload not in seen:
            seen[op.workload] = None
    return list(seen.keys())
