"""GPU device descriptions.

A :class:`GpuDevice` captures the architectural parameters the cost
model needs: compute throughput, memory bandwidth, and the per-SM
resource limits that determine occupancy.  The default device is the
Nvidia GeForce GTX 1080 Ti used in the paper's evaluation; further
presets demonstrate portability of the framework across targets.

:data:`DEVICE_PRESETS` names every preset with a short, normalized
handle (``gtx1080ti``, ``titanv``, ...) so CLI flags and fleet specs
can refer to devices without importing this module; resolve handles
with :func:`device_preset`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuDevice:
    """Architectural description of a CUDA-like accelerator.

    CPU-class targets reuse the same schema: ``num_sms`` maps to
    physical cores, ``warp_size`` to the SIMD width, and the shared
    memory pools to the per-core cache hierarchy.
    """

    name: str
    #: number of streaming multiprocessors
    num_sms: int
    #: peak single-precision throughput in GFLOP/s
    peak_gflops: float
    #: effective DRAM bandwidth in GB/s
    mem_bandwidth_gbs: float
    #: maximum resident threads per SM
    max_threads_per_sm: int = 2048
    #: maximum threads per block
    max_threads_per_block: int = 1024
    #: maximum resident blocks per SM
    max_blocks_per_sm: int = 32
    #: shared memory per SM, bytes
    shared_mem_per_sm: int = 96 * 1024
    #: shared memory limit per block, bytes
    shared_mem_per_block: int = 48 * 1024
    #: 32-bit registers per SM
    registers_per_sm: int = 65536
    #: maximum registers per thread before spilling
    max_registers_per_thread: int = 255
    #: threads per warp
    warp_size: int = 32
    #: fixed kernel launch overhead, seconds
    launch_overhead_s: float = 4.0e-6
    #: L2-cache effectiveness factor applied to redundant global reads
    cache_factor: float = 0.55

    def __post_init__(self) -> None:
        numeric_fields = (
            "num_sms",
            "peak_gflops",
            "mem_bandwidth_gbs",
            "max_threads_per_sm",
            "max_threads_per_block",
            "max_blocks_per_sm",
            "shared_mem_per_sm",
            "shared_mem_per_block",
            "registers_per_sm",
            "max_registers_per_thread",
            "warp_size",
            "launch_overhead_s",
        )
        for field_name in numeric_fields:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if not 0.0 < self.cache_factor <= 1.0:
            raise ValueError("cache_factor must be in (0, 1]")

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_flops(self) -> float:
        """Peak throughput in FLOP/s."""
        return self.peak_gflops * 1e9

    @property
    def mem_bandwidth(self) -> float:
        """Bandwidth in bytes/s."""
        return self.mem_bandwidth_gbs * 1e9


#: the paper's evaluation platform (Sec. V)
GTX_1080_TI = GpuDevice(
    name="GeForce GTX 1080 Ti",
    num_sms=28,
    peak_gflops=11340.0,
    mem_bandwidth_gbs=484.0,
)

#: a datacenter-class target, for portability experiments
TESLA_V100 = GpuDevice(
    name="Tesla V100",
    num_sms=80,
    peak_gflops=14130.0,
    mem_bandwidth_gbs=900.0,
)

#: an embedded-class target: two Pascal SMs behind a narrow LPDDR4
#: interface, a small L2 (hence the weak cache factor), and a slow
#: kernel-launch path — favours fat blocks that amortize the launch
JETSON_TX2 = GpuDevice(
    name="Jetson TX2",
    num_sms=2,
    peak_gflops=665.0,
    mem_bandwidth_gbs=59.7,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    shared_mem_per_sm=64 * 1024,
    launch_overhead_s=1.5e-5,
    cache_factor=0.7,
)

#: a Volta workstation target: 80 SMs, HBM2, a 4.5 MB L2 that absorbs
#: most redundant traffic, and Volta's configurable 96 KB smem carve-out
TITAN_V = GpuDevice(
    name="Titan V",
    num_sms=80,
    peak_gflops=14900.0,
    mem_bandwidth_gbs=652.8,
    shared_mem_per_block=96 * 1024,
    launch_overhead_s=3.2e-6,
    cache_factor=0.45,
)

#: a CPU-class target for heterogeneous-fleet experiments: 16 cores
#: ("SMs") of AVX-512 lanes ("warps" of 8), shallow thread residency,
#: big per-core caches, and a near-free dispatch path — optimal
#: schedules here use few, small blocks, unlike any GPU preset
XEON_GOLD_6130 = GpuDevice(
    name="Xeon Gold 6130",
    num_sms=16,
    peak_gflops=1740.8,
    mem_bandwidth_gbs=85.0,
    max_threads_per_sm=256,
    max_threads_per_block=256,
    max_blocks_per_sm=8,
    shared_mem_per_sm=1024 * 1024,
    shared_mem_per_block=512 * 1024,
    warp_size=8,
    launch_overhead_s=2.0e-7,
    cache_factor=0.25,
)


def normalize_device_name(name: str) -> str:
    """Lower-case alphanumeric handle of a device name.

    The handle is the canonical *device class*: fleet labels, tuning-log
    signatures, and checkpoint directory names all key on it.
    """
    return re.sub(r"[^a-z0-9]+", "", name.lower())


#: deprecated alias — use :func:`normalize_device_name`
_normalize_device_name = normalize_device_name


#: preset handle -> device; keys are normalized (:func:`device_preset`
#: also accepts raw marketing names like "GeForce GTX 1080 Ti")
DEVICE_PRESETS: Dict[str, GpuDevice] = {
    "gtx1080ti": GTX_1080_TI,
    "teslav100": TESLA_V100,
    "v100": TESLA_V100,
    "jetsontx2": JETSON_TX2,
    "tx2": JETSON_TX2,
    "titanv": TITAN_V,
    "xeongold6130": XEON_GOLD_6130,
    "cpu": XEON_GOLD_6130,
}


def device_preset(name: str) -> GpuDevice:
    """Resolve a device handle or full name against the preset table."""
    key = normalize_device_name(name)
    if key in DEVICE_PRESETS:
        return DEVICE_PRESETS[key]
    for device in DEVICE_PRESETS.values():
        if normalize_device_name(device.name) == key:
            return device
    raise ValueError(
        f"unknown device {name!r}; known presets: "
        f"{sorted(set(DEVICE_PRESETS))}"
    )
