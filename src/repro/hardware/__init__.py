"""Simulated GPU hardware: the stand-in for the paper's GTX 1080 Ti.

The search algorithms need an expensive, noisy, partially-infeasible
black box; this package provides one with the *mechanics* of a real
CUDA GPU: resource limits and occupancy (:mod:`repro.hardware.resources`),
an analytical roofline-style kernel cost model
(:mod:`repro.hardware.cost_model`), task-specific rugged terrain and
heteroscedastic measurement noise (:mod:`repro.hardware.noise`), and an
AutoTVM-style measurement harness (:mod:`repro.hardware.measure`).
"""

from repro.hardware.device import (
    DEVICE_PRESETS,
    GTX_1080_TI,
    JETSON_TX2,
    TESLA_V100,
    TITAN_V,
    XEON_GOLD_6130,
    GpuDevice,
    device_preset,
    normalize_device_name,
)
from repro.hardware.cost_model import AnalyticalGpuModel, KernelProfile
from repro.hardware.measure import (
    Measurer,
    MeasureResult,
    MeasureErrorKind,
    SimulatedTask,
)
from repro.hardware.executor import (
    CachingExecutor,
    FaultInjectingExecutor,
    MeasureCache,
    MeasureExecutor,
    ParallelExecutor,
    SerialExecutor,
    build_executor,
)
from repro.hardware.faults import (
    FaultKind,
    FaultModel,
    FaultOutcome,
    RetryPolicy,
)

__all__ = [
    "GpuDevice",
    "GTX_1080_TI",
    "TESLA_V100",
    "JETSON_TX2",
    "TITAN_V",
    "XEON_GOLD_6130",
    "DEVICE_PRESETS",
    "device_preset",
    "normalize_device_name",
    "AnalyticalGpuModel",
    "KernelProfile",
    "Measurer",
    "MeasureResult",
    "MeasureErrorKind",
    "SimulatedTask",
    "MeasureExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "CachingExecutor",
    "FaultInjectingExecutor",
    "MeasureCache",
    "build_executor",
    "FaultKind",
    "FaultModel",
    "FaultOutcome",
    "RetryPolicy",
]
