"""Measurement harness: the tuner-facing interface to the (simulated) GPU.

:class:`SimulatedTask` binds one tunable workload to its configuration
space, a device, and a task-specific terrain — it *is* the black-box
optimization problem of Problem 1 in the paper.  :class:`Measurer`
deploys configurations on the simulated hardware, returning GFLOPS with
measurement noise, or an errored result for infeasible configurations
(exactly the contract AutoTVM's ``measure_batch`` provides).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.cost_model import AnalyticalGpuModel, KernelProfile
from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.hardware.noise import MeasurementNoise, TaskTerrain
from repro.hardware.resources import ResourceError
from repro.nn.workloads import Workload
from repro.space.space import ConfigSpace
from repro.space.templates import build_space
from repro.utils.rng import derive_seed


class MeasureErrorKind(enum.Enum):
    """Outcome categories of one on-chip measurement.

    The first three come from the simulated device itself; the last two
    are injected by :class:`repro.hardware.faults.FaultModel` when a
    transient fault exhausts its retry budget (AutoTVM's
    ``MeasureErrorNo`` categories for flaky real hardware).
    """

    NO_ERROR = 0
    RESOURCE_ERROR = 1
    TIMEOUT = 2
    BUILD_ERROR = 3
    DEVICE_LOST = 4


@dataclass(frozen=True)
class MeasureResult:
    """Result of deploying one configuration on hardware."""

    config_index: int
    gflops: float
    mean_time_s: float
    error_kind: MeasureErrorKind
    error_msg: str = ""
    profile: Optional[KernelProfile] = None

    @property
    def ok(self) -> bool:
        return self.error_kind is MeasureErrorKind.NO_ERROR


class SimulatedTask:
    """One node-wise tuning task: workload + config space + environment.

    The ground-truth value of a configuration is
    ``cost_model_gflops * terrain_factor``; repeated measurements jitter
    around it with the profile's noise sigma.  The terrain seed derives
    deterministically from ``(workload, seed)``, so a task is a pure
    function of its constructor arguments and :attr:`fingerprint`
    identifies the environment across processes (the measurement-cache
    key prefix).
    """

    def __init__(
        self,
        workload: Workload,
        device: GpuDevice = GTX_1080_TI,
        seed: int = 0,
        space: Optional[ConfigSpace] = None,
        terrain_amplitude: float = 0.15,
        template: str = "direct",
    ):
        self.workload = workload
        self.device = device
        self.seed = int(seed)
        self.template = template
        self.space = (
            space if space is not None else build_space(workload, template)
        )
        self.model = AnalyticalGpuModel(device)
        terrain_seed = derive_seed(
            self.seed, "terrain", workload, device.name, template
        )
        self.terrain = TaskTerrain(
            self.space.feature_dim,
            seed=terrain_seed,
            amplitude=terrain_amplitude,
        )

    @property
    def name(self) -> str:
        return f"{self.workload.kind}@{self.space.name}"

    @property
    def fingerprint(self) -> str:
        """Stable identity of this environment across processes.

        Two tasks share a fingerprint exactly when they present the same
        optimization problem: same workload, device, template, space and
        environment seed.  Used as the measurement-cache key prefix.
        """
        return (
            f"{self.workload!r}|{self.device.name}|{self.template}"
            f"|{self.space.name}|seed={self.seed}"
            f"|amp={self.terrain.amplitude}"
        )

    # ------------------------------------------------------------------
    # ground truth (used by the measurer, oracles, and tests)

    def profile_of(self, config_index: int) -> KernelProfile:
        """Noise-free cost-model profile (may raise ResourceError)."""
        entity = self.space.get(config_index)
        return self.model.profile(
            self.workload, entity.values, template=self.template
        )

    def true_gflops(self, config_index: int) -> float:
        """Noise-free ground-truth GFLOPS including terrain (0 if invalid)."""
        try:
            profile = self.profile_of(config_index)
        except ResourceError:
            return 0.0
        factor = self.terrain.factor(self.space.features_of(config_index))
        return profile.gflops * factor

    def true_time_s(self, config_index: int) -> float:
        """Noise-free ground-truth kernel time (inf if invalid)."""
        gflops = self.true_gflops(config_index)
        if gflops <= 0.0:
            return float("inf")
        return self.workload.flops / (gflops * 1e9)

    def noise_sigma(self, config_index: int) -> float:
        """Relative measurement-noise std-dev of a config (0 if invalid)."""
        try:
            return self.profile_of(config_index).noise_sigma_rel
        except ResourceError:
            return 0.0

    def __repr__(self) -> str:
        return (
            f"SimulatedTask({self.workload}, device={self.device.name!r}, "
            f"|space|={len(self.space)})"
        )


class Measurer:
    """Deploys configurations on the simulated device.

    Mirrors AutoTVM's measurement options: ``repeats`` timed runs are
    averaged per configuration, kernels slower than ``timeout_s`` abort
    as timeouts, and infeasible launches return
    :attr:`MeasureErrorKind.RESOURCE_ERROR` with 0 GFLOPS.

    The measurer counts every deployed configuration in
    :attr:`num_measurements` — the x-axis of the paper's Fig. 4 and
    Fig. 5(a).

    Measurement noise is a pure function of
    ``(measurer seed, measurement ordinal, config index)``: the ordinal
    is the position of the measurement in the run's global sequence, so
    a batch split across worker processes reproduces the serial noise
    exactly (the determinism contract of
    :class:`repro.hardware.executor.ParallelExecutor`).
    """

    def __init__(
        self,
        task: SimulatedTask,
        seed: int = 0,
        repeats: int = 3,
        timeout_s: float = 0.5,
    ):
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        self.task = task
        self.repeats = repeats
        self.timeout_s = timeout_s
        self._noise_seed = derive_seed(seed, "measure", task.name)
        self._noise = MeasurementNoise(seed=self._noise_seed)
        self.num_measurements = 0

    def measure_one(self, config_index: int) -> MeasureResult:
        """Deploy one configuration and time it (advances the ordinal)."""
        ordinal = self.num_measurements
        self.num_measurements += 1
        return self.measure_at(ordinal, config_index)

    def measure_at(self, ordinal: int, config_index: int) -> MeasureResult:
        """Deploy one configuration at an explicit sequence position.

        Pure with respect to measurer state: the same ``(ordinal,
        config_index)`` always yields the same result, which is what
        lets executors evaluate a batch out of order or in parallel and
        still match the serial measurement stream bit for bit.
        """
        task = self.task
        try:
            profile = task.profile_of(config_index)
        except ResourceError as exc:
            return MeasureResult(
                config_index=config_index,
                gflops=0.0,
                mean_time_s=float("inf"),
                error_kind=MeasureErrorKind.RESOURCE_ERROR,
                error_msg=str(exc),
            )

        factor = task.terrain.factor(task.space.features_of(config_index))
        true_time = profile.time_s / max(factor, 1e-9)
        if true_time > self.timeout_s:
            return MeasureResult(
                config_index=config_index,
                gflops=0.0,
                mean_time_s=float("inf"),
                error_kind=MeasureErrorKind.TIMEOUT,
                error_msg=f"kernel exceeded {self.timeout_s:.3f}s timeout",
                profile=profile,
            )

        rng = np.random.default_rng(
            derive_seed(self._noise_seed, "jitter", ordinal, config_index)
        )
        jitter = self._noise.sample_time_factors(
            profile.noise_sigma_rel, n=self.repeats, rng=rng
        )
        mean_time = float(true_time * jitter.mean())
        gflops = task.workload.flops / mean_time / 1e9
        return MeasureResult(
            config_index=config_index,
            gflops=gflops,
            mean_time_s=mean_time,
            error_kind=MeasureErrorKind.NO_ERROR,
            profile=profile,
        )

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy a batch of configurations (in order)."""
        return [self.measure_one(int(idx)) for idx in config_indices]
