"""Task terrain and measurement noise.

Two stochastic layers sit between the deterministic cost model and what
a tuner observes:

* :class:`TaskTerrain` — a *fixed*, task-specific multiplicative field
  over feature space.  Real kernels have performance texture that no
  analytical model captures (instruction scheduling, cache alignment,
  DRAM page effects); the terrain reproduces it as a smooth sum of
  random plane waves, so the landscape is rugged globally yet locally
  smooth — exactly the regime BAO's neighborhood assumption ("the value
  space is local smooth", Sec. III-B) targets.  The terrain is part of
  the ground truth: repeated measurements of one config share it.

* measurement noise — per-run heteroscedastic timing jitter whose
  relative magnitude is the cost model's ``noise_sigma_rel``.  Low-
  occupancy and memory-bound kernels time less repeatably, which is how
  choosing robust configurations reduces end-to-end latency variance
  (the Table I effect).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class TaskTerrain:
    """Smooth random multiplicative performance field over feature space.

    ``factor(features)`` lies in ``[1 - amplitude, 1]``; ``1`` is the
    analytical optimum.  The field is a normalized sum of ``num_waves``
    sinusoidal plane waves with random directions, frequencies and
    phases drawn from ``seed``.
    """

    def __init__(
        self,
        feature_dim: int,
        seed: SeedLike = None,
        num_waves: int = 8,
        amplitude: float = 0.15,
    ):
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        rng = as_generator(seed)
        self.feature_dim = feature_dim
        self.amplitude = amplitude
        directions = rng.normal(size=(num_waves, feature_dim))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        directions /= np.maximum(norms, 1e-12)
        frequencies = rng.uniform(0.25, 1.4, size=(num_waves, 1))
        self._waves = directions * frequencies
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=num_waves)
        self._weights = rng.uniform(0.5, 1.0, size=num_waves)
        self._weights /= self._weights.sum()

    def factor(self, features: np.ndarray) -> float:
        """Terrain multiplier at one feature vector."""
        return float(self.factor_batch(np.asarray(features)[None, :])[0])

    def factor_batch(self, features: np.ndarray) -> np.ndarray:
        """Terrain multipliers for a ``(n, feature_dim)`` matrix."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ValueError(
                f"expected (n, {self.feature_dim}) features, "
                f"got shape {features.shape}"
            )
        phase = features @ self._waves.T + self._phases
        s = np.sin(phase) @ self._weights  # in [-1, 1]
        return 1.0 - self.amplitude * 0.5 * (1.0 + s)


class MeasurementNoise:
    """Per-run multiplicative timing jitter.

    A measured time is ``true_time * (1 + eps)`` with
    ``eps ~ N(0, sigma_rel)`` truncated at ``-0.9`` so times stay
    positive.  ``sigma_rel`` comes from the kernel profile and is larger
    for fragile configurations.
    """

    def __init__(self, seed: SeedLike = None):
        self._rng = as_generator(seed)

    def sample_time_factors(
        self, sigma_rel: float, n: int = 1, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw ``n`` multiplicative time factors (> 0)."""
        if sigma_rel < 0:
            raise ValueError("sigma_rel must be non-negative")
        generator = rng if rng is not None else self._rng
        eps = generator.normal(0.0, sigma_rel, size=n)
        return 1.0 + np.maximum(eps, -0.9)
