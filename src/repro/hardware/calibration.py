"""Calibrating the analytical model against observed kernel timings.

When porting the simulator to a new GPU (or validating it against a
real one), three device parameters dominate the fit: effective peak
throughput, effective memory bandwidth, and the L2 ``cache_factor``.
:func:`calibrate_device` estimates them from a set of observed
(workload, configuration, measured-time) triples by minimizing relative
squared timing error with scipy, starting from a datasheet prior.

This is how a user with a real measurement backend would anchor the
simulator: collect a few hundred timings, calibrate, then explore
schedules offline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np
from scipy import optimize

from repro.hardware.cost_model import AnalyticalGpuModel
from repro.hardware.device import GpuDevice
from repro.hardware.resources import ResourceError
from repro.nn.workloads import Workload


@dataclass(frozen=True)
class Observation:
    """One measured kernel: workload + config values + time in seconds."""

    workload: Workload
    values: Mapping[str, object]
    time_s: float
    template: str = "direct"

    def __post_init__(self) -> None:
        if self.time_s <= 0:
            raise ValueError("measured time must be positive")


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted device and fit-quality diagnostics."""

    device: GpuDevice
    #: geometric-mean ratio |predicted/observed| before fitting
    error_before: float
    #: the same after fitting
    error_after: float
    n_observations: int

    @property
    def improved(self) -> bool:
        return self.error_after <= self.error_before


def _mean_log_ratio(
    device: GpuDevice, observations: Sequence[Observation]
) -> float:
    """Mean squared log(predicted/observed) over feasible observations."""
    model = AnalyticalGpuModel(device)
    errors: List[float] = []
    for obs in observations:
        try:
            profile = model.profile(obs.workload, obs.values,
                                    template=obs.template)
        except ResourceError:
            continue
        errors.append(np.log(profile.time_s / obs.time_s) ** 2)
    if not errors:
        raise ValueError("no observation is feasible under the device model")
    return float(np.mean(errors))


def calibrate_device(
    base_device: GpuDevice,
    observations: Sequence[Observation],
    max_iterations: int = 60,
) -> CalibrationResult:
    """Fit (peak_gflops, mem_bandwidth_gbs, cache_factor) to observations.

    The datasheet values in ``base_device`` serve as the starting point;
    parameters are searched in log-space (bounded to 0.25x..4x of the
    prior; cache_factor in [0.05, 1]) with Nelder-Mead.
    """
    if len(observations) < 3:
        raise ValueError("need at least 3 observations to calibrate")

    def rebuild(theta: np.ndarray) -> GpuDevice:
        peak, bandwidth, cache = theta
        return dataclasses.replace(
            base_device,
            peak_gflops=float(np.clip(
                np.exp(peak), base_device.peak_gflops / 4,
                base_device.peak_gflops * 4,
            )),
            mem_bandwidth_gbs=float(np.clip(
                np.exp(bandwidth), base_device.mem_bandwidth_gbs / 4,
                base_device.mem_bandwidth_gbs * 4,
            )),
            cache_factor=float(np.clip(cache, 0.05, 1.0)),
        )

    def objective(theta: np.ndarray) -> float:
        try:
            return _mean_log_ratio(rebuild(theta), observations)
        except ValueError:
            return 1e6

    x0 = np.array([
        np.log(base_device.peak_gflops),
        np.log(base_device.mem_bandwidth_gbs),
        base_device.cache_factor,
    ])
    error_before = _mean_log_ratio(base_device, observations)
    result = optimize.minimize(
        objective,
        x0,
        method="Nelder-Mead",
        options={"maxiter": max_iterations, "xatol": 1e-3, "fatol": 1e-5},
    )
    fitted = rebuild(result.x)
    error_after = _mean_log_ratio(fitted, observations)
    if error_after > error_before:
        # optimizer wandered off: keep the prior
        fitted = base_device
        error_after = error_before
    return CalibrationResult(
        device=fitted,
        error_before=float(np.sqrt(error_before)),
        error_after=float(np.sqrt(error_after)),
        n_observations=len(observations),
    )
