"""Deterministic fault injection for the measurement loop.

Real-hardware auto-tuning is dominated by partial failures: compilation
errors, device timeouts, boards dropping off the RPC tracker.  AutoTVM
copes by tagging every measurement with a ``MeasureErrorNo`` and moving
on; this module reproduces that failure surface on the simulator so the
tuning loop's fault handling can be exercised — and, critically, keeps
it *deterministic*.

Faults follow the same discipline as measurement noise
(:class:`repro.hardware.noise.MeasurementNoise`): whether the ``k``-th
measurement of a run faults, how many consecutive attempts fault, and
which :class:`FaultKind` each attempt raises are all a pure function of
``(fault seed, measurement ordinal)``.  Two consequences fall out for
free:

* a parallel run injects exactly the faults a serial run injects (the
  ordinal, not the worker, decides), and
* a crashed-and-resumed run replays the *remaining* fault schedule
  bit-for-bit, because resuming restores the ordinal counter.

:class:`RetryPolicy` bounds how many times a faulted measurement is
re-attempted and how long to back off between attempts.  Retries
re-deploy the same measurement slot; the simulated device is pure, so a
measurement that eventually succeeds returns the same result it would
have returned without the fault — again mirroring real hardware, where
the retry re-runs the same kernel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.rng import derive_seed

#: hard cap on modeled consecutive faults per ordinal, so a ``rate``
#: close to 1.0 cannot spin the schedule generator forever
MAX_CONSECUTIVE_FAULTS = 64


class FaultKind(enum.Enum):
    """Transient failure modes of one measurement attempt.

    Mirrors the categories of AutoTVM's ``MeasureErrorNo``: a build
    that fails (``COMPILE_DEVICE``), a kernel that never comes back
    (``RUN_TIMEOUT``), and a board vanishing from the tracker.
    """

    BUILD_ERROR = "build_error"
    TIMEOUT = "timeout"
    DEVICE_LOST = "device_lost"


@dataclass(frozen=True)
class FaultModel:
    """Seeded transient-fault schedule, pure in the measurement ordinal.

    Each attempt at measurement ordinal ``k`` faults independently with
    probability ``rate``; :meth:`faults_at` returns the full run of
    consecutive faulty attempts for that ordinal (empty = first attempt
    succeeds).  ``kinds`` weights which failure mode each faulty
    attempt raises.
    """

    rate: float = 0.05
    seed: int = 0
    kinds: Tuple[FaultKind, ...] = (
        FaultKind.BUILD_ERROR,
        FaultKind.TIMEOUT,
        FaultKind.DEVICE_LOST,
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("fault rate must be in [0, 1)")
        if not self.kinds:
            raise ValueError("fault model needs at least one FaultKind")

    def faults_at(self, ordinal: int) -> Tuple[FaultKind, ...]:
        """The consecutive faulty attempts at measurement ``ordinal``.

        Pure: the same ``(seed, ordinal)`` always yields the same
        schedule, independent of call order, process, or prior faults.
        """
        if self.rate == 0.0:
            return ()
        rng = np.random.default_rng(
            derive_seed(self.seed, "fault", int(ordinal))
        )
        plan = []
        while (
            len(plan) < MAX_CONSECUTIVE_FAULTS
            and float(rng.random()) < self.rate
        ):
            plan.append(self.kinds[int(rng.integers(len(self.kinds)))])
        return tuple(plan)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a faulted measurement, and how fast.

    ``backoff_s`` is the delay before the first retry; each further
    retry multiplies it by ``multiplier``, capped at ``max_backoff_s``.
    The default ``backoff_s=0`` keeps simulated runs instant while the
    executor still *accounts* the backoff it would have spent (exposed
    for tests and telemetry).
    """

    max_retries: int = 3
    backoff_s: float = 0.0
    multiplier: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_backoff_s < 0:
            raise ValueError("max_backoff_s must be non-negative")

    def backoff_for(self, retry: int) -> float:
        """Delay in seconds before retry number ``retry`` (0-based)."""
        if retry < 0:
            raise ValueError("retry must be non-negative")
        return min(
            self.backoff_s * (self.multiplier ** retry), self.max_backoff_s
        )

    def total_backoff(self, retries: int) -> float:
        """Summed delay across the first ``retries`` retries."""
        return sum(self.backoff_for(i) for i in range(retries))


@dataclass(frozen=True)
class FaultOutcome:
    """What fault injection did to one measurement.

    Produced by
    :class:`repro.hardware.executor.FaultInjectingExecutor` for every
    measurement whose first attempt faulted; the tuning loop converts
    these into structured events.
    """

    ordinal: int
    config_index: int
    #: faulty attempts before the final outcome, in order
    faults: Tuple[FaultKind, ...] = field(default=())
    #: True when retries ran out and the measurement was recorded as an
    #: error; False when a retry eventually succeeded
    exhausted: bool = False
    #: backoff the retry policy spent (or accounted) on this measurement
    backoff_s: float = 0.0

    @property
    def attempts(self) -> int:
        """Total attempts made, including the final one."""
        return len(self.faults) if self.exhausted else len(self.faults) + 1
