"""Measurement execution: pluggable backends behind one batch contract.

The tuning loop proposes batches of configurations; *how* a batch gets
deployed is this module's concern.  :class:`MeasureExecutor` is the
interface (AutoTVM's ``measure_batch`` contract), with three
implementations:

* :class:`SerialExecutor` — deploys the batch in order in-process
  (the historical behaviour, and the default).
* :class:`ParallelExecutor` — fans the batch out over a process pool.
  The analytical cost model is pure CPU work, so chunks parallelize
  cleanly; because measurement noise is a pure function of the
  measurement ordinal (see :class:`repro.hardware.measure.Measurer`),
  a parallel run reproduces the serial measurement stream bit for bit.
* :class:`CachingExecutor` — a decorator that memoizes
  ``(task fingerprint, config index) -> MeasureResult`` in memory and
  optionally on disk, so repeated trials/arms never re-simulate a
  configuration they have already deployed.

Executors are cheap to construct around an existing
:class:`~repro.hardware.measure.Measurer`; tuners accept an executor
*spec* (a name, an instance, or a ``measurer -> executor`` factory) via
their ``executor=`` argument — see :func:`build_executor`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.hardware.faults import (
    FaultKind,
    FaultModel,
    FaultOutcome,
    RetryPolicy,
)
from repro.hardware.measure import (
    MeasureErrorKind,
    Measurer,
    MeasureResult,
)
from repro.obs.hooks import (
    measure_hooks_active,
    notify_cache,
    notify_measure,
)
from repro.utils.io import atomic_write_bytes
from repro.utils.log import get_logger

logger = get_logger("hardware.executor")

#: what tuners accept as their ``executor=`` argument
ExecutorSpec = Union[
    None, str, "MeasureExecutor", Callable[[Measurer], "MeasureExecutor"]
]


class MeasureExecutor:
    """Interface between a search policy and the measurement hardware.

    Implementations own ordinal assignment: the ``k``-th configuration
    ever submitted through an executor is measured at ordinal ``k``,
    whatever backend performs the work.  That single rule is what makes
    every backend produce identical results for identical submission
    sequences.
    """

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy a batch of configurations, preserving order."""
        raise NotImplementedError

    @property
    def measurer(self) -> Measurer:
        """The underlying measurer (noise seed, task, repeat count)."""
        raise NotImplementedError

    @property
    def num_measurements(self) -> int:
        """Configurations deployed through this executor so far."""
        raise NotImplementedError

    def sync_ordinal(self, ordinal: int) -> None:
        """Reset the ordinal counter (checkpoint-resume support).

        After restoring tuner state from a checkpoint, the executor
        must hand out ordinals continuing from the restored measurement
        count so the noise and fault streams pick up exactly where the
        crashed run left off.  Decorator executors forward the call.
        """
        raise NotImplementedError

    def drain_fault_outcomes(self) -> List["FaultOutcome"]:
        """Fault-injection outcomes accumulated since the last drain.

        Non-injecting executors report none; decorators forward to the
        wrapped executor so the tuning loop can call this on whatever
        executor composition it was handed.
        """
        return []

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "MeasureExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(MeasureExecutor):
    """Deploys each batch in order, in-process — the default backend."""

    def __init__(self, measurer: Measurer):
        self._measurer = measurer

    @property
    def measurer(self) -> Measurer:
        return self._measurer

    @property
    def num_measurements(self) -> int:
        return self._measurer.num_measurements

    def sync_ordinal(self, ordinal: int) -> None:
        """Continue ordinal assignment from ``ordinal``."""
        self._measurer.num_measurements = int(ordinal)

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy the batch sequentially via the wrapped measurer."""
        if not measure_hooks_active():
            return self._measurer.measure_batch(config_indices)
        start = time.perf_counter()
        results = self._measurer.measure_batch(config_indices)
        notify_measure("serial", len(results), time.perf_counter() - start)
        return results


# ----------------------------------------------------------------------
# parallel execution

_WORKER_MEASURER: Optional[Measurer] = None


def _init_worker(measurer_blob: bytes) -> None:
    """Process-pool initializer: unpickle the measurer once per worker."""
    global _WORKER_MEASURER
    _WORKER_MEASURER = pickle.loads(measurer_blob)


def _measure_chunk(
    payload: Tuple[int, Tuple[int, ...]],
) -> List[MeasureResult]:
    """Measure one chunk of a batch at its assigned ordinals."""
    start, indices = payload
    measurer = _WORKER_MEASURER
    if measurer is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker measurer not initialized")
    return [
        measurer.measure_at(start + offset, int(idx))
        for offset, idx in enumerate(indices)
    ]


class ParallelExecutor(MeasureExecutor):
    """Fans each batch out over a process pool of ``jobs`` workers.

    Ordinals are assigned in batch order *before* dispatch and results
    are reassembled in submission order, so the output is byte-identical
    to :class:`SerialExecutor` regardless of worker scheduling.  Small
    batches (fewer than ``min_parallel`` configs) are measured inline to
    avoid paying IPC overhead for no win.
    """

    def __init__(
        self,
        measurer: Measurer,
        jobs: Optional[int] = None,
        chunk_size: int = 16,
        min_parallel: int = 8,
    ):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._measurer = measurer
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self._count = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def measurer(self) -> Measurer:
        return self._measurer

    @property
    def num_measurements(self) -> int:
        return self._count

    def sync_ordinal(self, ordinal: int) -> None:
        """Continue ordinal assignment from ``ordinal``."""
        self._count = int(ordinal)
        self._measurer.num_measurements = int(ordinal)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(pickle.dumps(self._measurer),),
            )
        return self._pool

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy the batch across workers (results in submission order)."""
        timed = measure_hooks_active()
        t0 = time.perf_counter() if timed else 0.0
        results = self._measure_batch_inner(config_indices)
        if timed:
            notify_measure(
                "parallel", len(results), time.perf_counter() - t0
            )
        return results

    def _measure_batch_inner(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        indices = [int(i) for i in config_indices]
        start = self._count
        self._count += len(indices)
        # keep the wrapped measurer's public counter in step, so code
        # inspecting tuner.measurer.num_measurements sees the truth
        self._measurer.num_measurements = self._count
        if not indices:
            return []
        if self.jobs == 1 or len(indices) < self.min_parallel:
            return [
                self._measurer.measure_at(start + off, idx)
                for off, idx in enumerate(indices)
            ]
        chunks = [
            (start + off, tuple(indices[off: off + self.chunk_size]))
            for off in range(0, len(indices), self.chunk_size)
        ]
        pool = self._ensure_pool()
        results: List[MeasureResult] = []
        for chunk_results in pool.map(_measure_chunk, chunks):
            results.extend(chunk_results)
        return results

    def close(self) -> None:
        """Shut the worker pool down (a later batch restarts it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


# ----------------------------------------------------------------------
# caching

CacheKey = Tuple[str, int]


class MeasureCache:
    """Shared ``(task fingerprint, config index) -> MeasureResult`` store.

    One cache may back many executors across tasks, trials and arms —
    the fingerprint keeps environments apart while letting identical
    configurations share one simulation.  ``path`` enables a disk
    round-trip: existing entries load eagerly, :meth:`save` writes the
    store back atomically.
    """

    def __init__(self, path: Optional[str] = None):
        self._data: Dict[CacheKey, MeasureResult] = {}
        self.path = path
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._data

    def get(self, key: CacheKey) -> Optional[MeasureResult]:
        """Return the cached result for ``key`` (None on a miss)."""
        return self._data.get(key)

    def put(self, key: CacheKey, result: MeasureResult) -> None:
        """Store one measurement under ``key``."""
        self._data[key] = result

    def load(self, path: str) -> int:
        """Merge entries from ``path`` into the store; returns count read."""
        with open(path, "rb") as handle:
            entries: Dict[CacheKey, MeasureResult] = pickle.load(handle)
        self._data.update(entries)
        logger.info("measure cache: loaded %d entries from %s", len(entries), path)
        return len(entries)

    def save(self, path: Optional[str] = None) -> str:
        """Write the store to disk atomically (write-tmp-fsync-rename)."""
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("no path given and cache has no default path")
        return atomic_write_bytes(target, pickle.dumps(self._data))


class CachingExecutor(MeasureExecutor):
    """Decorator executor that memoizes measurements through a cache.

    Hits return the stored :class:`MeasureResult` unchanged (same noise
    draw as the first deployment); only misses reach the wrapped
    executor, in their original relative order.  :attr:`hits` and
    :attr:`misses` expose effectiveness.
    """

    def __init__(
        self,
        inner: MeasureExecutor,
        cache: Optional[MeasureCache] = None,
        path: Optional[str] = None,
    ):
        self.inner = inner
        self.cache = cache if cache is not None else MeasureCache(path=path)
        self._fingerprint = inner.measurer.task.fingerprint
        self.hits = 0
        self.misses = 0

    @property
    def measurer(self) -> Measurer:
        return self.inner.measurer

    @property
    def num_measurements(self) -> int:
        return self.inner.num_measurements

    def sync_ordinal(self, ordinal: int) -> None:
        """Forward the checkpoint-resume ordinal to the wrapped executor."""
        self.inner.sync_ordinal(ordinal)

    def drain_fault_outcomes(self) -> List[FaultOutcome]:
        """Forward to the wrapped executor."""
        return self.inner.drain_fault_outcomes()

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Serve hits from the cache; deploy only the misses."""
        indices = [int(i) for i in config_indices]
        out: List[Optional[MeasureResult]] = [None] * len(indices)
        miss_positions: List[int] = []
        batch_hits = 0
        for pos, idx in enumerate(indices):
            cached = self.cache.get((self._fingerprint, idx))
            if cached is not None:
                out[pos] = cached
                batch_hits += 1
            else:
                miss_positions.append(pos)
        self.hits += batch_hits
        if miss_positions:
            self.misses += len(miss_positions)
            fresh = self.inner.measure_batch(
                [indices[pos] for pos in miss_positions]
            )
            for pos, result in zip(miss_positions, fresh):
                self.cache.put((self._fingerprint, indices[pos]), result)
                out[pos] = result
        if indices:
            notify_cache(batch_hits, len(miss_positions))
        return [r for r in out if r is not None]

    def close(self) -> None:
        """Persist the cache (when it has a path) and close the inner."""
        if self.cache.path is not None:
            self.cache.save()
        self.inner.close()


# ----------------------------------------------------------------------
# fault injection

#: how an injected FaultKind is reported when retries run out
_FAULT_ERROR_KINDS = {
    FaultKind.BUILD_ERROR: MeasureErrorKind.BUILD_ERROR,
    FaultKind.TIMEOUT: MeasureErrorKind.TIMEOUT,
    FaultKind.DEVICE_LOST: MeasureErrorKind.DEVICE_LOST,
}


class FaultInjectingExecutor(MeasureExecutor):
    """Decorator executor that subjects measurements to transient faults.

    Wraps any executor composition (it should sit outermost).  Each
    submitted configuration consumes one fault ordinal; the wrapped
    :class:`~repro.hardware.faults.FaultModel` decides — purely from
    that ordinal — how many consecutive attempts fault and with which
    :class:`~repro.hardware.faults.FaultKind`.  Faults within the
    :class:`~repro.hardware.faults.RetryPolicy` budget are retried
    (with backoff) and the measurement succeeds with its original
    result; when the budget runs out the configuration is *gracefully
    degraded* to a ``MeasureErrorKind`` error record (0 GFLOPS) instead
    of crashing the tuning loop, exactly as AutoTVM records
    ``MeasureErrorNo`` failures.

    Because the fault schedule is pure in the ordinal, a run with fault
    injection is just as deterministic as one without: parallel equals
    serial, and crash-plus-resume equals uninterrupted.
    """

    def __init__(
        self,
        inner: MeasureExecutor,
        faults: FaultModel,
        retry: RetryPolicy = RetryPolicy(),
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.faults = faults
        self.retry = retry
        self._sleep = sleep
        self._count = 0
        self._outcomes: List[FaultOutcome] = []
        #: lifetime telemetry
        self.retries = 0
        self.failures = 0
        self.total_backoff_s = 0.0

    @property
    def measurer(self) -> Measurer:
        return self.inner.measurer

    @property
    def num_measurements(self) -> int:
        return self._count

    def sync_ordinal(self, ordinal: int) -> None:
        """Continue both the fault and the inner ordinal streams."""
        self._count = int(ordinal)
        self.inner.sync_ordinal(ordinal)

    def drain_fault_outcomes(self) -> List[FaultOutcome]:
        """Outcomes since the last drain (the tuner turns these into events)."""
        out = self._outcomes
        self._outcomes = []
        return out

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy the batch, injecting faults per measurement ordinal."""
        indices = [int(i) for i in config_indices]
        start = self._count
        self._count += len(indices)
        results = self.inner.measure_batch(indices)
        out: List[MeasureResult] = []
        for offset, result in enumerate(results):
            out.append(self._apply_faults(start + offset, result))
        return out

    def _apply_faults(
        self, ordinal: int, result: MeasureResult
    ) -> MeasureResult:
        plan = self.faults.faults_at(ordinal)
        if not plan:
            return result
        retries_used = min(len(plan), self.retry.max_retries)
        exhausted = len(plan) > self.retry.max_retries
        backoff = self.retry.total_backoff(retries_used)
        if backoff > 0:
            self._sleep(backoff)
        self.retries += retries_used
        self.total_backoff_s += backoff
        experienced = plan[: retries_used + (1 if exhausted else 0)]
        self._outcomes.append(
            FaultOutcome(
                ordinal=ordinal,
                config_index=result.config_index,
                faults=experienced,
                exhausted=exhausted,
                backoff_s=backoff,
            )
        )
        if not exhausted:
            # a retry re-deployed the same slot; the device is pure, so
            # the surviving attempt returns the original result
            return result
        self.failures += 1
        final = experienced[-1]
        logger.info(
            "measurement %d (config %d) failed after %d attempts: %s",
            ordinal,
            result.config_index,
            len(experienced),
            final.value,
        )
        return MeasureResult(
            config_index=result.config_index,
            gflops=0.0,
            mean_time_s=float("inf"),
            error_kind=_FAULT_ERROR_KINDS[final],
            error_msg=(
                f"injected {final.value} persisted through "
                f"{len(experienced)} attempts "
                f"(max_retries={self.retry.max_retries})"
            ),
        )

    def close(self) -> None:
        """Close the wrapped executor."""
        self.inner.close()


# ----------------------------------------------------------------------
# spec resolution

EXECUTOR_KINDS = ("serial", "parallel")


def build_executor(
    measurer: Measurer,
    spec: ExecutorSpec = None,
    jobs: Optional[int] = None,
    cache: Optional[MeasureCache] = None,
    faults: Optional[FaultModel] = None,
    retry: Optional[RetryPolicy] = None,
) -> MeasureExecutor:
    """Resolve an executor spec against a measurer.

    ``spec`` may be ``None``/``"serial"``, ``"parallel"``, an existing
    :class:`MeasureExecutor` (returned as-is), or a factory callable
    ``measurer -> MeasureExecutor``.  ``cache`` wraps the result in a
    :class:`CachingExecutor`; ``faults`` wraps it (outermost) in a
    :class:`FaultInjectingExecutor` with ``retry`` (default policy when
    omitted).
    """
    if isinstance(spec, MeasureExecutor):
        executor = spec
    elif callable(spec):
        executor = spec(measurer)
    elif spec is None or spec == "serial":
        executor = SerialExecutor(measurer)
    elif spec == "parallel":
        executor = ParallelExecutor(measurer, jobs=jobs)
    else:
        raise ValueError(
            f"unknown executor spec {spec!r}; expected one of "
            f"{EXECUTOR_KINDS}, an executor, or a factory"
        )
    if cache is not None and not isinstance(executor, CachingExecutor):
        executor = CachingExecutor(executor, cache=cache)
    if faults is not None and not isinstance(
        executor, FaultInjectingExecutor
    ):
        executor = FaultInjectingExecutor(
            executor, faults, retry=retry if retry is not None else RetryPolicy()
        )
    return executor
