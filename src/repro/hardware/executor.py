"""Measurement execution: pluggable backends behind one batch contract.

The tuning loop proposes batches of configurations; *how* a batch gets
deployed is this module's concern.  :class:`MeasureExecutor` is the
interface (AutoTVM's ``measure_batch`` contract), with three
implementations:

* :class:`SerialExecutor` — deploys the batch in order in-process
  (the historical behaviour, and the default).
* :class:`ParallelExecutor` — fans the batch out over a process pool.
  The analytical cost model is pure CPU work, so chunks parallelize
  cleanly; because measurement noise is a pure function of the
  measurement ordinal (see :class:`repro.hardware.measure.Measurer`),
  a parallel run reproduces the serial measurement stream bit for bit.
* :class:`CachingExecutor` — a decorator that memoizes
  ``(task fingerprint, config index) -> MeasureResult`` in memory and
  optionally on disk, so repeated trials/arms never re-simulate a
  configuration they have already deployed.

Executors are cheap to construct around an existing
:class:`~repro.hardware.measure.Measurer`; tuners accept an executor
*spec* (a name, an instance, or a ``measurer -> executor`` factory) via
their ``executor=`` argument — see :func:`build_executor`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.hardware.measure import Measurer, MeasureResult
from repro.utils.log import get_logger

logger = get_logger("hardware.executor")

#: what tuners accept as their ``executor=`` argument
ExecutorSpec = Union[
    None, str, "MeasureExecutor", Callable[[Measurer], "MeasureExecutor"]
]


class MeasureExecutor:
    """Interface between a search policy and the measurement hardware.

    Implementations own ordinal assignment: the ``k``-th configuration
    ever submitted through an executor is measured at ordinal ``k``,
    whatever backend performs the work.  That single rule is what makes
    every backend produce identical results for identical submission
    sequences.
    """

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy a batch of configurations, preserving order."""
        raise NotImplementedError

    @property
    def measurer(self) -> Measurer:
        """The underlying measurer (noise seed, task, repeat count)."""
        raise NotImplementedError

    @property
    def num_measurements(self) -> int:
        """Configurations deployed through this executor so far."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "MeasureExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(MeasureExecutor):
    """Deploys each batch in order, in-process — the default backend."""

    def __init__(self, measurer: Measurer):
        self._measurer = measurer

    @property
    def measurer(self) -> Measurer:
        return self._measurer

    @property
    def num_measurements(self) -> int:
        return self._measurer.num_measurements

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy the batch sequentially via the wrapped measurer."""
        return self._measurer.measure_batch(config_indices)


# ----------------------------------------------------------------------
# parallel execution

_WORKER_MEASURER: Optional[Measurer] = None


def _init_worker(measurer_blob: bytes) -> None:
    """Process-pool initializer: unpickle the measurer once per worker."""
    global _WORKER_MEASURER
    _WORKER_MEASURER = pickle.loads(measurer_blob)


def _measure_chunk(
    payload: Tuple[int, Tuple[int, ...]],
) -> List[MeasureResult]:
    """Measure one chunk of a batch at its assigned ordinals."""
    start, indices = payload
    measurer = _WORKER_MEASURER
    if measurer is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker measurer not initialized")
    return [
        measurer.measure_at(start + offset, int(idx))
        for offset, idx in enumerate(indices)
    ]


class ParallelExecutor(MeasureExecutor):
    """Fans each batch out over a process pool of ``jobs`` workers.

    Ordinals are assigned in batch order *before* dispatch and results
    are reassembled in submission order, so the output is byte-identical
    to :class:`SerialExecutor` regardless of worker scheduling.  Small
    batches (fewer than ``min_parallel`` configs) are measured inline to
    avoid paying IPC overhead for no win.
    """

    def __init__(
        self,
        measurer: Measurer,
        jobs: Optional[int] = None,
        chunk_size: int = 16,
        min_parallel: int = 8,
    ):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._measurer = measurer
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self._count = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def measurer(self) -> Measurer:
        return self._measurer

    @property
    def num_measurements(self) -> int:
        return self._count

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(pickle.dumps(self._measurer),),
            )
        return self._pool

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Deploy the batch across workers (results in submission order)."""
        indices = [int(i) for i in config_indices]
        start = self._count
        self._count += len(indices)
        # keep the wrapped measurer's public counter in step, so code
        # inspecting tuner.measurer.num_measurements sees the truth
        self._measurer.num_measurements = self._count
        if not indices:
            return []
        if self.jobs == 1 or len(indices) < self.min_parallel:
            return [
                self._measurer.measure_at(start + off, idx)
                for off, idx in enumerate(indices)
            ]
        chunks = [
            (start + off, tuple(indices[off: off + self.chunk_size]))
            for off in range(0, len(indices), self.chunk_size)
        ]
        pool = self._ensure_pool()
        results: List[MeasureResult] = []
        for chunk_results in pool.map(_measure_chunk, chunks):
            results.extend(chunk_results)
        return results

    def close(self) -> None:
        """Shut the worker pool down (a later batch restarts it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


# ----------------------------------------------------------------------
# caching

CacheKey = Tuple[str, int]


class MeasureCache:
    """Shared ``(task fingerprint, config index) -> MeasureResult`` store.

    One cache may back many executors across tasks, trials and arms —
    the fingerprint keeps environments apart while letting identical
    configurations share one simulation.  ``path`` enables a disk
    round-trip: existing entries load eagerly, :meth:`save` writes the
    store back atomically.
    """

    def __init__(self, path: Optional[str] = None):
        self._data: Dict[CacheKey, MeasureResult] = {}
        self.path = path
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._data

    def get(self, key: CacheKey) -> Optional[MeasureResult]:
        """Return the cached result for ``key`` (None on a miss)."""
        return self._data.get(key)

    def put(self, key: CacheKey, result: MeasureResult) -> None:
        """Store one measurement under ``key``."""
        self._data[key] = result

    def load(self, path: str) -> int:
        """Merge entries from ``path`` into the store; returns count read."""
        with open(path, "rb") as handle:
            entries: Dict[CacheKey, MeasureResult] = pickle.load(handle)
        self._data.update(entries)
        logger.info("measure cache: loaded %d entries from %s", len(entries), path)
        return len(entries)

    def save(self, path: Optional[str] = None) -> str:
        """Write the store to disk atomically (temp file + rename)."""
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("no path given and cache has no default path")
        directory = os.path.dirname(os.path.abspath(target))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".cache.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(self._data, handle)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target


class CachingExecutor(MeasureExecutor):
    """Decorator executor that memoizes measurements through a cache.

    Hits return the stored :class:`MeasureResult` unchanged (same noise
    draw as the first deployment); only misses reach the wrapped
    executor, in their original relative order.  :attr:`hits` and
    :attr:`misses` expose effectiveness.
    """

    def __init__(
        self,
        inner: MeasureExecutor,
        cache: Optional[MeasureCache] = None,
        path: Optional[str] = None,
    ):
        self.inner = inner
        self.cache = cache if cache is not None else MeasureCache(path=path)
        self._fingerprint = inner.measurer.task.fingerprint
        self.hits = 0
        self.misses = 0

    @property
    def measurer(self) -> Measurer:
        return self.inner.measurer

    @property
    def num_measurements(self) -> int:
        return self.inner.num_measurements

    def measure_batch(
        self, config_indices: Sequence[int]
    ) -> List[MeasureResult]:
        """Serve hits from the cache; deploy only the misses."""
        indices = [int(i) for i in config_indices]
        out: List[Optional[MeasureResult]] = [None] * len(indices)
        miss_positions: List[int] = []
        for pos, idx in enumerate(indices):
            cached = self.cache.get((self._fingerprint, idx))
            if cached is not None:
                out[pos] = cached
                self.hits += 1
            else:
                miss_positions.append(pos)
        if miss_positions:
            self.misses += len(miss_positions)
            fresh = self.inner.measure_batch(
                [indices[pos] for pos in miss_positions]
            )
            for pos, result in zip(miss_positions, fresh):
                self.cache.put((self._fingerprint, indices[pos]), result)
                out[pos] = result
        return [r for r in out if r is not None]

    def close(self) -> None:
        """Persist the cache (when it has a path) and close the inner."""
        if self.cache.path is not None:
            self.cache.save()
        self.inner.close()


# ----------------------------------------------------------------------
# spec resolution

EXECUTOR_KINDS = ("serial", "parallel")


def build_executor(
    measurer: Measurer,
    spec: ExecutorSpec = None,
    jobs: Optional[int] = None,
    cache: Optional[MeasureCache] = None,
) -> MeasureExecutor:
    """Resolve an executor spec against a measurer.

    ``spec`` may be ``None``/``"serial"``, ``"parallel"``, an existing
    :class:`MeasureExecutor` (returned as-is), or a factory callable
    ``measurer -> MeasureExecutor``.  ``cache`` wraps the result in a
    :class:`CachingExecutor`.
    """
    if isinstance(spec, MeasureExecutor):
        executor = spec
    elif callable(spec):
        executor = spec(measurer)
    elif spec is None or spec == "serial":
        executor = SerialExecutor(measurer)
    elif spec == "parallel":
        executor = ParallelExecutor(measurer, jobs=jobs)
    else:
        raise ValueError(
            f"unknown executor spec {spec!r}; expected one of "
            f"{EXECUTOR_KINDS}, an executor, or a factory"
        )
    if cache is not None and not isinstance(executor, CachingExecutor):
        executor = CachingExecutor(executor, cache=cache)
    return executor
