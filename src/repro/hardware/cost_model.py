"""Analytical GPU kernel cost model.

Maps (workload, schedule configuration) to predicted kernel throughput
using the mechanics that govern real CUDA performance:

* resource validation and occupancy (via :mod:`repro.hardware.resources`),
* a roofline of compute time vs. global-memory time, where the tiling
  knobs set the data-reuse factors (bigger output tiles reuse weights
  and input patches more, but launch fewer / heavier blocks),
* second-order effects: warp-granularity slack, latency hiding as a
  function of occupancy and per-thread ILP, register spilling, memory
  coalescing of the innermost axis, unrolling gains, and tail waves.

The model is deterministic and noise-free; measurement noise and the
task-specific rugged terrain are layered on top by
:mod:`repro.hardware.measure`.  Absolute numbers are *plausible* rather
than silicon-accurate — the reproduction targets relative behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.hardware.device import GTX_1080_TI, GpuDevice
from repro.hardware.resources import BlockRequirements, compute_occupancy
from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
    Workload,
)
from repro.utils.mathx import ceil_div


@dataclass(frozen=True)
class KernelProfile:
    """Full diagnostic output of the cost model for one configuration."""

    gflops: float
    time_s: float
    compute_time_s: float
    mem_time_s: float
    threads_per_block: int
    num_blocks: int
    registers_per_thread: int
    shared_mem_bytes: int
    blocks_per_sm: int
    warp_occupancy: float
    occupancy_limiter: str
    sm_utilization: float
    coalescing: float
    efficiency: float
    #: relative (multiplicative) std-dev of repeated on-chip timings
    noise_sigma_rel: float

    @property
    def is_memory_bound(self) -> bool:
        return self.mem_time_s > self.compute_time_s


def _product(values: Sequence[int]) -> int:
    out = 1
    for v in values:
        out *= int(v)
    return out


def _get_split(values: Mapping[str, object], name: str) -> Tuple[int, ...]:
    try:
        split = values[name]
    except KeyError as exc:
        raise KeyError(f"configuration is missing split knob {name!r}") from exc
    return tuple(int(v) for v in split)  # type: ignore[arg-type]


class AnalyticalGpuModel:
    """Deterministic analytical performance model for a CUDA-like GPU."""

    #: achievable fraction of peak FLOPs for a perfectly tuned kernel
    BASE_COMPUTE_EFFICIENCY = 0.86

    def __init__(self, device: GpuDevice = GTX_1080_TI):
        self.device = device

    # ------------------------------------------------------------------
    # public API

    def profile(
        self,
        workload: Workload,
        values: Mapping[str, object],
        template: str = "direct",
    ) -> KernelProfile:
        """Profile one configuration.

        ``template`` must match the template whose space produced
        ``values`` ('direct' or 'winograd').  Raises
        :class:`~repro.hardware.resources.ResourceError` when the
        configuration cannot launch (too many threads, shared-memory or
        register-file overflow) — the simulated equivalent of a CUDA
        launch failure that AutoTVM logs as an errored measurement.
        """
        if template == "winograd":
            if not isinstance(workload, Conv2DWorkload):
                raise TypeError("winograd template applies to conv2d only")
            return self._profile_conv2d_winograd(workload, values)
        if template != "direct":
            raise ValueError(f"unknown template {template!r}")
        if isinstance(workload, Conv2DWorkload):
            return self._profile_conv2d(workload, values)
        if isinstance(workload, DepthwiseConv2DWorkload):
            return self._profile_depthwise(workload, values)
        if isinstance(workload, DenseWorkload):
            return self._profile_dense(workload, values)
        raise TypeError(f"no cost model for workload {workload!r}")

    # ------------------------------------------------------------------
    # shared machinery

    def _unroll_params(
        self, values: Mapping[str, object], inner_steps: int
    ) -> Tuple[float, int]:
        """Return (unroll gain, extra registers) for the pragma knobs."""
        max_step = int(values.get("auto_unroll_max_step", 0))  # type: ignore[arg-type]
        explicit = int(values.get("unroll_explicit", 0))  # type: ignore[arg-type]
        if max_step <= 0:
            return 1.0, 0
        covered = min(inner_steps, max_step)
        gain = 1.0 + 0.10 * (covered / (covered + 24.0))
        if explicit:
            gain *= 1.03
        extra_regs = int(2 + 3 * math.log2(1 + covered))
        return gain, extra_regs

    def _latency_hiding(self, warp_occupancy: float, ilp: float) -> float:
        """Fraction of issue slots kept busy by warps + instruction ILP."""
        capacity = warp_occupancy * (1.0 + 0.18 * min(ilp, 16.0))
        return 1.0 - math.exp(-2.6 * capacity)

    def _warp_efficiency(self, threads: int) -> float:
        """Slack from a block size that is not a multiple of the warp."""
        warp = self.device.warp_size
        return threads / (ceil_div(threads, warp) * warp)

    def _finish(
        self,
        workload: Workload,
        *,
        threads: int,
        num_blocks: int,
        regs: int,
        smem: int,
        traffic_bytes: float,
        coalescing: float,
        ilp: float,
        unroll_gain: float,
        exec_flops: Optional[float] = None,
    ) -> KernelProfile:
        """Common occupancy/roofline tail shared by all kernels.

        ``exec_flops`` overrides the operation count actually executed
        (Winograd executes fewer multiplies than the nominal workload);
        the reported GFLOPS stays normalized to the *nominal* workload
        FLOPs, as AutoTVM reports it — so an efficient Winograd kernel
        can legitimately exceed the direct-convolution rate.
        """
        device = self.device
        spill_penalty = 1.0
        if regs > device.max_registers_per_thread:
            # local-memory spilling: legal but slow
            overflow = regs - device.max_registers_per_thread
            spill_penalty = 1.0 / (1.0 + 0.02 * overflow)
            regs = device.max_registers_per_thread

        req = BlockRequirements(
            threads=threads, shared_mem_bytes=smem, registers_per_thread=regs
        )
        from repro.hardware.resources import validate_block

        validate_block(device, req)
        occ = compute_occupancy(device, req)

        waves = ceil_div(num_blocks, occ.blocks_per_sm * device.num_sms)
        sm_util = num_blocks / float(
            waves * occ.blocks_per_sm * device.num_sms
        )
        # very small grids cannot even cover the SMs once
        grid_coverage = min(1.0, num_blocks / float(device.num_sms))

        warp_eff = self._warp_efficiency(threads)
        hiding = self._latency_hiding(occ.warp_occupancy, ilp)
        efficiency = (
            self.BASE_COMPUTE_EFFICIENCY
            * warp_eff
            * hiding
            * spill_penalty
            * unroll_gain
            * sm_util
            * grid_coverage
        )
        efficiency = max(efficiency, 1e-4)

        flops_executed = exec_flops if exec_flops is not None else workload.flops
        compute_time = flops_executed / (device.peak_flops * efficiency)
        mem_time = traffic_bytes / (device.mem_bandwidth * coalescing)
        # imperfect overlap between the two pipelines
        time = (
            max(compute_time, mem_time)
            + 0.12 * min(compute_time, mem_time)
            + device.launch_overhead_s
        )
        gflops = workload.flops / time / 1e9

        mem_bound_ratio = mem_time / (compute_time + mem_time)
        noise_sigma = (
            0.006
            + 0.055 * (1.0 - occ.warp_occupancy) ** 2
            + 0.030 * (1.0 - sm_util)
            + 0.018 * mem_bound_ratio
            + 0.020 * (1.0 - warp_eff)
        )

        return KernelProfile(
            gflops=gflops,
            time_s=time,
            compute_time_s=compute_time,
            mem_time_s=mem_time,
            threads_per_block=threads,
            num_blocks=num_blocks,
            registers_per_thread=regs,
            shared_mem_bytes=smem,
            blocks_per_sm=occ.blocks_per_sm,
            warp_occupancy=occ.warp_occupancy,
            occupancy_limiter=occ.limiter,
            sm_utilization=sm_util,
            coalescing=coalescing,
            efficiency=efficiency,
            noise_sigma_rel=noise_sigma,
        )

    # ------------------------------------------------------------------
    # conv2d

    def _profile_conv2d(
        self, wl: Conv2DWorkload, values: Mapping[str, object]
    ) -> KernelProfile:
        bf, vf, tf, fi = _get_split(values, "tile_f")
        by, vy, ty, yi = _get_split(values, "tile_y")
        bx, vx, tx, xi = _get_split(values, "tile_x")
        rco, rci = _get_split(values, "tile_rc")
        ryo, ryi = _get_split(values, "tile_ry")
        rxo, rxi = _get_split(values, "tile_rx")

        threads = tf * ty * tx
        num_blocks = bf * by * bx * wl.batch

        f_tile = vf * tf * fi
        y_tile = vy * ty * yi
        x_tile = vx * tx * xi
        outputs_per_thread = vf * fi * vy * yi * vx * xi

        # shared-memory staging: one rc-chunk of the input patch + the
        # weight slice for this block's channels
        patch_h = (y_tile - 1) * wl.stride_h + wl.kernel_h
        patch_w = (x_tile - 1) * wl.stride_w + wl.kernel_w
        smem_input = rci * patch_h * patch_w * 4
        smem_weight = f_tile * rci * ryi * rxi * 4
        smem = smem_input + smem_weight

        inner_steps = rci * ryi * rxi
        unroll_gain, unroll_regs = self._unroll_params(values, inner_steps)
        regs = 22 + outputs_per_thread + max(fi, xi) + unroll_regs

        # global traffic with inter-block redundancy: every channel-block
        # re-reads the same input patch; every spatial block re-reads the
        # same weights.  The L2 absorbs part of the redundancy.
        channels = wl.in_channels // wl.groups
        patch_bytes = channels * patch_h * patch_w * 4.0
        input_first = wl.batch * wl.in_channels * wl.height * wl.width * 4.0
        # every block stages its own input patch: spatial blocks cover the
        # image, channel blocks (bf) re-read the same patches
        input_total = num_blocks * patch_bytes
        weight_bytes = wl.weight_count * 4.0
        weight_total = weight_bytes * (by * bx * wl.batch)
        redundant = max(input_total - input_first, 0.0) + max(
            weight_total - weight_bytes, 0.0
        )
        traffic = (
            input_first
            + weight_bytes
            + self.device.cache_factor * redundant
            + wl.output_bytes
        )

        # coalescing: adjacent tx threads read adjacent x only when the
        # per-thread inner x extent is 1
        stride_x = xi * vx
        coalescing = 1.0 / (1.0 + 0.38 * math.log2(stride_x))
        ilp = float(outputs_per_thread)

        return self._finish(
            wl,
            threads=threads,
            num_blocks=num_blocks,
            regs=regs,
            smem=smem,
            traffic_bytes=traffic,
            coalescing=coalescing,
            ilp=ilp,
            unroll_gain=unroll_gain,
        )

    # ------------------------------------------------------------------
    # conv2d, Winograd F(2x2, 3x3) template

    def _profile_conv2d_winograd(
        self, wl: Conv2DWorkload, values: Mapping[str, object]
    ) -> KernelProfile:
        from repro.utils.mathx import ceil_div

        alpha2 = 16  # (m + r - 1)^2 with m = 2, r = 3
        p_tiles = (
            wl.batch
            * ceil_div(wl.out_height, 2)
            * ceil_div(wl.out_width, 2)
        )

        bk, vk, tk, ki = _get_split(values, "tile_k")
        bp, vp, tp, pi = _get_split(values, "tile_p")
        rco, rci = _get_split(values, "tile_rc")

        threads = tk * tp
        # one grid dimension batches the alpha^2 independent GEMMs
        num_blocks = bk * bp * alpha2

        k_tile = vk * tk * ki
        p_tile = vp * tp * pi
        outputs_per_thread = vk * ki * vp * pi

        smem = (k_tile + p_tile) * rci * 4

        unroll_gain, unroll_regs = self._unroll_params(values, rci)
        regs = 20 + outputs_per_thread + unroll_regs

        # executed operations: batched GEMMs + input/output transforms
        # (weights are pre-transformed offline)
        gemm_flops = 2.0 * alpha2 * wl.out_channels * wl.in_channels * p_tiles
        transform_flops = p_tiles * (
            64.0 * wl.in_channels + 48.0 * wl.out_channels
        )
        exec_flops = gemm_flops + transform_flops

        # traffic: the transformed activations V (alpha^2 * C * P) are
        # materialized then re-read by every k-block; the transformed
        # weights U (alpha^2 * K * C) are re-read by every p-block
        v_bytes = alpha2 * wl.in_channels * p_tiles * 4.0
        u_bytes = alpha2 * wl.out_channels * wl.in_channels * 4.0
        m_bytes = alpha2 * wl.out_channels * p_tiles * 4.0
        input_bytes = wl.batch * wl.in_channels * wl.height * wl.width * 4.0
        first_pass = input_bytes + v_bytes * 2 + u_bytes + m_bytes * 2
        redundant = v_bytes * max(bk - 1, 0) + u_bytes * max(bp - 1, 0)
        traffic = (
            first_pass
            + self.device.cache_factor * redundant
            + wl.output_bytes
        )

        stride_p = pi * vp
        coalescing = 1.0 / (1.0 + 0.38 * math.log2(stride_p))
        ilp = float(outputs_per_thread)

        return self._finish(
            wl,
            threads=threads,
            num_blocks=num_blocks,
            regs=regs,
            smem=smem,
            traffic_bytes=traffic,
            coalescing=coalescing,
            ilp=ilp,
            unroll_gain=unroll_gain,
            exec_flops=exec_flops,
        )

    # ------------------------------------------------------------------
    # depthwise conv2d

    def _profile_depthwise(
        self, wl: DepthwiseConv2DWorkload, values: Mapping[str, object]
    ) -> KernelProfile:
        bf, vf, tf, fi = _get_split(values, "tile_f")
        by, vy, ty, yi = _get_split(values, "tile_y")
        bx, vx, tx, xi = _get_split(values, "tile_x")

        threads = tf * ty * tx
        num_blocks = bf * by * bx * wl.batch

        f_tile = vf * tf * fi
        y_tile = vy * ty * yi
        x_tile = vx * tx * xi
        outputs_per_thread = vf * fi * vy * yi * vx * xi

        patch_h = (y_tile - 1) * wl.stride_h + wl.kernel_h
        patch_w = (x_tile - 1) * wl.stride_w + wl.kernel_w
        smem_input = f_tile * patch_h * patch_w * 4
        smem_weight = f_tile * wl.kernel_h * wl.kernel_w * 4
        smem = smem_input + smem_weight

        inner_steps = wl.kernel_h * wl.kernel_w
        unroll_gain, unroll_regs = self._unroll_params(values, inner_steps)
        regs = 18 + outputs_per_thread + unroll_regs

        # channels are partitioned across blocks, so input redundancy
        # comes only from spatial halos; weights are re-read per spatial
        # block but are tiny
        halo = (patch_h * patch_w) / float(max(y_tile * x_tile, 1))
        input_bytes = wl.batch * wl.channels * wl.height * wl.width * 4.0
        input_total = input_bytes * halo
        weight_bytes = wl.weight_count * 4.0
        weight_total = weight_bytes * (by * bx * wl.batch)
        redundant = max(input_total - input_bytes, 0.0) + max(
            weight_total - weight_bytes, 0.0
        )
        traffic = (
            input_bytes
            + weight_bytes
            + self.device.cache_factor * redundant
            + wl.output_bytes
        )

        stride_x = xi * vx
        coalescing = 1.0 / (1.0 + 0.38 * math.log2(stride_x))
        ilp = float(outputs_per_thread)

        return self._finish(
            wl,
            threads=threads,
            num_blocks=num_blocks,
            regs=regs,
            smem=smem,
            traffic_bytes=traffic,
            coalescing=coalescing,
            ilp=ilp,
            unroll_gain=unroll_gain,
        )

    # ------------------------------------------------------------------
    # dense

    def _profile_dense(
        self, wl: DenseWorkload, values: Mapping[str, object]
    ) -> KernelProfile:
        bx, vx, tx, xi = _get_split(values, "tile_x")
        ko, ki = _get_split(values, "tile_k")

        threads = tx
        num_blocks = bx * wl.batch

        outputs_per_thread = vx * xi
        smem_input = ki * 4
        smem_weight = vx * tx * xi * ki * 4
        smem = smem_input + smem_weight

        unroll_gain, unroll_regs = self._unroll_params(values, ki)
        regs = 16 + outputs_per_thread + unroll_regs

        # each weight is read exactly once (no reuse in GEMV); the input
        # vector is re-read by every block
        weight_bytes = wl.weight_count * 4.0
        input_bytes = wl.batch * wl.in_features * 4.0
        redundant = input_bytes * max(bx - 1, 0)
        traffic = (
            weight_bytes
            + input_bytes
            + self.device.cache_factor * redundant
            + wl.output_bytes
        )

        coalescing = 1.0 / (1.0 + 0.38 * math.log2(xi * vx))
        ilp = float(outputs_per_thread)

        return self._finish(
            wl,
            threads=threads,
            num_blocks=num_blocks,
            regs=regs,
            smem=smem,
            traffic_bytes=traffic,
            coalescing=coalescing,
            ilp=ilp,
            unroll_gain=unroll_gain,
        )
