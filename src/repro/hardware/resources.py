"""Per-SM resource accounting and occupancy.

Given one block's resource demands (threads, shared memory, registers),
compute how many blocks fit on an SM and the resulting warp occupancy —
the standard CUDA occupancy calculation that dominates how schedule
choices translate into throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import GpuDevice
from repro.utils.mathx import ceil_div


class ResourceError(ValueError):
    """A block demands more of a resource than the device can provide.

    This models the CUDA launch failures ("invalid configuration",
    shared-memory overflow) that AutoTVM records as errored
    measurements.
    """


@dataclass(frozen=True)
class BlockRequirements:
    """Resource demand of one thread block."""

    threads: int
    shared_mem_bytes: int
    registers_per_thread: int

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError("block must have at least one thread")
        if self.shared_mem_bytes < 0 or self.registers_per_thread < 0:
            raise ValueError("resource demands must be non-negative")


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel."""

    blocks_per_sm: int
    active_warps: int
    #: fraction of the SM's maximum resident warps that are active
    warp_occupancy: float
    #: which resource bound blocks_per_sm ("threads"/"blocks"/"smem"/"regs")
    limiter: str


def validate_block(device: GpuDevice, req: BlockRequirements) -> None:
    """Raise :class:`ResourceError` if the block cannot launch at all."""
    if req.threads > device.max_threads_per_block:
        raise ResourceError(
            f"{req.threads} threads/block exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if req.shared_mem_bytes > device.shared_mem_per_block:
        raise ResourceError(
            f"{req.shared_mem_bytes} B shared memory exceeds per-block "
            f"limit {device.shared_mem_per_block} B"
        )
    if req.registers_per_thread > device.max_registers_per_thread:
        raise ResourceError(
            f"{req.registers_per_thread} registers/thread exceeds limit "
            f"{device.max_registers_per_thread}"
        )
    if req.threads * req.registers_per_thread > device.registers_per_sm:
        raise ResourceError(
            "a single block exhausts the SM register file: "
            f"{req.threads} threads x {req.registers_per_thread} regs"
        )


def compute_occupancy(device: GpuDevice, req: BlockRequirements) -> Occupancy:
    """CUDA occupancy for a kernel whose blocks demand ``req``.

    ``validate_block`` must pass first; this function assumes a
    launchable block and only computes residency.
    """
    warps_per_block = ceil_div(req.threads, device.warp_size)

    by_threads = device.max_threads_per_sm // (
        warps_per_block * device.warp_size
    )
    by_blocks = device.max_blocks_per_sm
    if req.shared_mem_bytes > 0:
        by_smem = device.shared_mem_per_sm // req.shared_mem_bytes
    else:
        by_smem = device.max_blocks_per_sm
    regs_per_block = req.threads * max(req.registers_per_thread, 1)
    by_regs = device.registers_per_sm // regs_per_block

    limits = {
        "threads": by_threads,
        "blocks": by_blocks,
        "smem": by_smem,
        "regs": by_regs,
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = max(limits[limiter], 0)
    if blocks_per_sm == 0:
        raise ResourceError(
            f"block cannot be resident on an SM (limited by {limiter})"
        )
    active_warps = blocks_per_sm * warps_per_block
    active_warps = min(active_warps, device.max_warps_per_sm)
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        active_warps=active_warps,
        warp_occupancy=active_warps / device.max_warps_per_sm,
        limiter=limiter,
    )
