"""Command-line interface.

Exposes the main workflows without writing Python::

    python -m repro models                         # list the zoo
    python -m repro tasks --model mobilenet-v1     # list tuning tasks
    python -m repro tune --model squeezenet-v1.1 --arm bted+bao \
        --budget 256 --records out.jsonl           # tune + deploy
    python -m repro experiment fig4 --scale 0.1    # regenerate a figure
    python -m repro fleet --model squeezenet-v1.1 \
        --devices gtx1080ti,gtx1080ti,titanv       # multi-device tuning
    python -m repro tune --model squeezenet-v1.1 \
        --tlog-dir tlog --warm-start               # cross-run transfer
    python -m repro compile --model squeezenet-v1.1 \
        --tlog-dir tlog                            # deploy from the log
    python -m repro serve --data-dir service-data  # tuning-as-a-service
    python -m repro submit --url http://127.0.0.1:8100 \
        --model alexnet --arm bted --wait          # submit a job
    python -m repro jobs --url http://127.0.0.1:8100  # job browser
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import INCREMENTAL_REFIT_ARMS, TUNER_REGISTRY
from repro.experiments.settings import ExperimentSettings
from repro.hardware.executor import EXECUTOR_KINDS, MeasureCache
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.nn.zoo import MODEL_BUILDERS, PAPER_MODELS, build_model
from repro.pipeline.compiler import DeploymentCompiler
from repro.pipeline.records import RecordStore
from repro.pipeline.tasks import extract_tasks
from repro.space.templates import build_space
from repro.utils.log import enable_console_logging


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.nn.zoo import EXTENSION_MODELS

    print(f"{'model':<18} {'nodes':>6} {'GFLOPs':>8} {'Mparams':>8} {'tasks':>6}")
    for name in PAPER_MODELS + EXTENSION_MODELS:
        graph = build_model(name)
        tasks = extract_tasks(graph)
        tag = "" if name in PAPER_MODELS else "  (extension)"
        print(
            f"{name:<18} {len(graph):>6} "
            f"{graph.total_flops() / 1e9:>8.3f} "
            f"{graph.total_params() / 1e6:>8.3f} {len(tasks):>6}{tag}"
        )
    return 0


def _cmd_tasks(args: argparse.Namespace) -> int:
    graph = build_model(args.model)
    tasks = extract_tasks(graph)
    print(f"{len(tasks)} tuning tasks in {args.model}:")
    for task in tasks:
        size = len(build_space(task.workload))
        print(
            f"  T{task.task_id + 1:<3d} {task.workload.kind:<18s} "
            f"x{task.occurrences}  |space|={size:,}  {task.workload}"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    enable_console_logging()
    graph = build_model(args.model)
    compiler = DeploymentCompiler(
        graph, env_seed=args.env_seed, include_winograd=args.winograd
    )
    store = RecordStore() if args.records else None

    def progress(spec, result):
        print(
            f"T{spec.task_id + 1:<3d} {spec.workload.kind:<12s} "
            f"{spec.template:<9s} best {result.best_gflops:9.1f} GFLOPS "
            f"in {result.num_measurements} measurements"
        )

    cache = (
        MeasureCache(path=args.measure_cache)
        if args.measure_cache
        else None
    )
    faults = None
    if args.fault_rate > 0:
        faults = FaultModel(rate=args.fault_rate, seed=args.fault_seed)
    retry = (
        RetryPolicy(max_retries=args.max_retries)
        if args.max_retries is not None
        else None
    )
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    tuner_kwargs = _refit_kwargs(args)
    if tuner_kwargs is None:
        return 2
    observation = None
    if args.metrics_out or args.trace_out or args.summary:
        from repro.obs import RunObservation

        observation = RunObservation(
            enable_metrics=bool(args.metrics_out),
            enable_trace=bool(args.trace_out),
        )
    compiled = compiler.tune(
        args.arm,
        n_trial=args.budget,
        early_stopping=args.early_stop,
        trial_seed=args.seed,
        tuner_kwargs=tuner_kwargs,
        record_store=store,
        progress=progress,
        executor=args.executor,
        jobs=args.jobs,
        measure_cache=cache,
        faults=faults,
        retry=retry,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        observation=observation,
        tlog=args.tlog_dir,
        warm_start=args.warm_start,
        warm_k=args.warm_k,
        warm_device=args.warm_device,
        pipeline=args.pipeline,
    )
    if cache is not None:
        cache.save()
        print(f"  cache    : {len(cache)} entries -> {args.measure_cache}")
    if observation is not None:
        if args.metrics_out:
            observation.write_metrics(args.metrics_out)
            print(f"  metrics  : {args.metrics_out}")
        if args.trace_out:
            observation.write_trace_jsonl(args.trace_out)
            print(f"  trace    : {args.trace_out}")
        if args.summary:
            observation.write_summary(args.summary)
            print(f"  summary  : {args.summary}")
    sample = compiled.measure_latency(num_runs=args.runs, seed=args.seed)
    print()
    print(f"{args.model} via {args.arm}:")
    print(f"  latency  : {sample.mean_ms:.4f} ms (mean of {args.runs} runs)")
    print(f"  variance : {sample.variance:.6f}")
    if args.tlog_dir:
        counts = compiled.tlog_counts()
        print(
            f"  tlog     : {counts['hit']} hits / {counts['warm']} warm / "
            f"{counts['cold']} cold -> {args.tlog_dir}"
        )
    if store is not None:
        store.save(args.records)
        print(f"  records  : {len(store)} -> {args.records}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    enable_console_logging()
    graph = build_model(args.model)
    compiler = DeploymentCompiler(graph, env_seed=args.env_seed)
    compiled = compiler.compile_from_tlog(args.tlog_dir)
    counts = compiled.tlog_counts()
    sample = compiled.measure_latency(num_runs=args.runs, seed=args.seed)
    print(f"{args.model} from tuning log {args.tlog_dir}:")
    print(
        f"  tasks    : {counts['hit']} from log, "
        f"{counts['cold']} default schedule"
    )
    print(f"  latency  : {sample.mean_ms:.4f} ms (mean of {args.runs} runs)")
    print(f"  variance : {sample.variance:.6f}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    enable_console_logging()
    from repro.fleet import (
        FleetError,
        parse_fleet,
        write_device_summaries,
        write_fleet_report,
    )

    fleet = parse_fleet(args.devices)
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    tuner_kwargs = _refit_kwargs(args)
    if tuner_kwargs is None:
        return 2
    graph = build_model(args.model)
    compiler = DeploymentCompiler(graph, env_seed=args.env_seed)
    store = RecordStore() if args.records else None
    faults = None
    if args.fault_rate > 0:
        faults = FaultModel(rate=args.fault_rate, seed=args.fault_seed)
    retry = (
        RetryPolicy(max_retries=args.max_retries)
        if args.max_retries is not None
        else None
    )
    observation = None
    if args.summary_dir:
        from repro.obs import RunObservation

        observation = RunObservation(
            enable_metrics=False, enable_trace=False
        )

    print(f"{args.model} via {args.arm} on a fleet of {len(fleet)}:")
    for line in fleet.describe():
        print(f"  {line}")
    try:
        compiled = compiler.tune(
            args.arm,
            n_trial=args.budget,
            early_stopping=args.early_stop,
            trial_seed=args.seed,
            tuner_kwargs=tuner_kwargs,
            record_store=store,
            faults=faults,
            retry=retry,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            observation=observation,
            fleet=fleet,
            fleet_jobs=args.jobs,
            tlog=args.tlog_dir,
            warm_start=args.warm_start,
            warm_k=args.warm_k,
            warm_device=args.warm_device,
            pipeline=args.pipeline,
        )
    except FleetError as exc:
        print(f"fleet aborted: {exc}", file=sys.stderr)
        if args.checkpoint_dir:
            print(
                "rerun with --resume and the same --devices / "
                "--checkpoint-dir to finish the survivors",
                file=sys.stderr,
            )
        return 1

    result = compiled.fleet
    print()
    print(f"{'device':<12} {'homed':>6} {'executed':>9} "
          f"{'stolen in/out':>14} {'measurements':>13}")
    for report in result.reports:
        print(
            f"{report.index:02d} {report.name:<12.12s} "
            f"{len(report.homed):>3d} {len(report.executed):>9d} "
            f"{report.stolen_in:>6d}/{report.stolen_out:<4d} "
            f"{report.measurements:>13d}"
        )
    if result.steals:
        print(f"  steals   : {len(result.steals)}")
    if args.report:
        measurements = {
            key: res.num_measurements
            for key, res in result.results.items()
        }
        write_fleet_report(args.report, result, measurements)
        print(f"  report   : {args.report}")
    if observation is not None and args.summary_dir:
        summaries = {}
        for key in observation.keys():
            summary = observation.observer(key).summary()
            summary.task = summary.task or key
            summaries[key] = summary
        write_device_summaries(args.summary_dir, result, summaries)
        print(f"  summaries: {args.summary_dir}/summary.json")
    sample = compiled.measure_latency(num_runs=args.runs, seed=args.seed)
    print(f"  latency  : {sample.mean_ms:.4f} ms (mean of {args.runs} runs)")
    print(f"  variance : {sample.variance:.6f}")
    if args.tlog_dir:
        counts = compiled.tlog_counts()
        print(
            f"  tlog     : {counts['hit']} hits / {counts['warm']} warm / "
            f"{counts['cold']} cold -> {args.tlog_dir}"
        )
    if store is not None:
        store.save(args.records)
        print(f"  records  : {len(store)} -> {args.records}")
    return 0


def _parse_arms(spec: Optional[str]) -> Optional[tuple]:
    """Validate a comma-separated ``--arms`` list against the registry."""
    if not spec:
        return None
    arms = tuple(a.strip() for a in spec.split(",") if a.strip())
    unknown = [a for a in arms if a.lower() not in TUNER_REGISTRY]
    if unknown:
        raise SystemExit(
            f"unknown arm(s) {unknown}; available: {sorted(TUNER_REGISTRY)}"
        )
    return arms


def _cmd_experiment(args: argparse.Namespace) -> int:
    enable_console_logging()
    settings = ExperimentSettings().scaled(args.scale)
    arms = _parse_arms(args.arms)
    arms_kwargs = {} if arms is None else {"arms": arms}
    if args.which == "fig4":
        from repro.experiments.fig4 import run_fig4

        result = run_fig4(
            settings=settings,
            num_measurements=max(128, int(1024 * args.scale)),
            num_trials=settings.num_trials,
            jobs=args.jobs,
            measure_cache=args.measure_cache,
            checkpoint_dir=args.checkpoint_dir,
            summary_dir=args.summary,
            fleet=args.fleet,
            **arms_kwargs,
        )
        print(result.report())
    elif args.which == "fig5":
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(
            settings=settings,
            max_tasks=args.max_tasks,
            jobs=args.jobs,
            measure_cache=args.measure_cache,
            checkpoint_dir=args.checkpoint_dir,
            summary_dir=args.summary,
            fleet=args.fleet,
            **arms_kwargs,
        )
        print(result.report())
    elif args.which == "adaptive":
        from repro.experiments.adaptive import run_adaptive_study

        if arms is not None and len(arms) != 2:
            raise SystemExit(
                "experiment adaptive takes --arms baseline,adaptive"
            )
        baseline, adaptive = arms if arms is not None else ("bted", "bted+as")
        result = run_adaptive_study(
            model_name=args.model,
            baseline_arm=baseline,
            adaptive_arm=adaptive,
            settings=settings,
            num_trials=settings.num_trials,
            jobs=args.jobs,
            measure_cache=args.measure_cache,
            checkpoint_dir=args.checkpoint_dir,
            summary_dir=args.summary,
            fleet=args.fleet,
        )
        print(result.report())
    elif args.which == "warmcold":
        from repro.experiments.transfer import run_warm_cold

        result = run_warm_cold(
            model_name=args.model,
            tuner_name=args.arm,
            n_trial=max(64, settings.n_trial),
            env_seed=settings.env_seed,
            max_tasks=args.max_tasks,
            tlog_dir=args.tlog_dir,
            warm_k=args.warm_k,
        )
        print(result.report())
    elif args.which == "crossdevice":
        import json as _json

        from repro.experiments.crossdevice import run_cross_device

        result = run_cross_device(
            model_name=args.model,
            tuner_name=args.arm,
            n_trial=max(64, settings.n_trial),
            env_seed=settings.env_seed,
            devices=[
                d.strip() for d in args.devices.split(",") if d.strip()
            ],
            max_tasks=args.max_tasks,
            tlog_dir=args.tlog_dir,
            warm_k=args.warm_k,
        )
        print(result.report())
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                _json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"crossdevice digest written to {args.json_out}")
    else:
        from repro.experiments.table1 import run_table1

        result = run_table1(
            settings=settings, jobs=args.jobs, summary_dir=args.summary,
            fleet=args.fleet, **arms_kwargs,
        )
        print(result.report())
    if args.summary:
        print(f"summaries written to {args.summary}/summary.json")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    enable_console_logging()
    from repro.service import TuningService

    quotas = {}
    for item in args.quota or []:
        tenant, _, limit = item.partition("=")
        if not tenant or not limit.isdigit():
            print(
                f"--quota takes TENANT=N, got {item!r}", file=sys.stderr
            )
            return 2
        quotas[tenant] = int(limit)
    service = TuningService(
        args.data_dir,
        host=args.host,
        port=args.port,
        devices=args.devices,
        fleet_jobs=args.jobs,
        quotas=quotas or None,
        default_quota=args.default_quota,
        tlog=not args.no_tlog,
        warm_start=args.warm_start,
        pipeline=args.pipeline,
    )
    with service:
        # scripts parse this line to find an ephemeral (--port 0) port
        print(f"serving on {service.url}", flush=True)
        print(f"  data dir : {service.data_dir}", flush=True)
        print(f"  devices  : {args.devices}", flush=True)
        try:
            while True:
                import time as _time

                _time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    spec = {
        "model": args.model,
        "arm": args.arm,
        "n_trial": args.budget,
        "early_stopping": args.early_stop,
        "trial_seed": args.seed,
        "env_seed": args.env_seed,
        "tenant": args.tenant,
        "priority": args.priority,
    }
    if args.devices:
        spec["devices"] = args.devices
    if args.max_tasks is not None:
        spec["max_tasks"] = args.max_tasks
    if args.tuner_kwargs:
        spec["tuner_kwargs"] = _json.loads(args.tuner_kwargs)
    try:
        job = client.submit(**spec)
    except ServiceClientError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        print(
            _json.dumps(exc.body, indent=2, sort_keys=True),
            file=sys.stderr,
        )
        return 1
    print(f"{job['job_id']} queued (tenant={job['tenant']} "
          f"priority={job['priority']})")
    if not args.wait:
        return 0

    def on_progress(point):
        if point.get("kind") == "task_done":
            print(
                f"  task-{point['task_id']:03d} done: "
                f"{point['best_gflops']:.1f} GFLOPS in "
                f"{point['measurements']} measurements"
            )

    done = client.wait(
        job["job_id"], timeout_s=args.timeout, on_progress=on_progress
    )
    print(f"{done['job_id']} {done['state']}: "
          f"{done['tasks_done']} task(s), "
          f"best {done['best_gflops']:.1f} GFLOPS")
    if done["state"] == "failed":
        print(f"  error: {done['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        if args.job_id:
            job = client.job(args.job_id)
            print(f"{job['job_id']}: {job['state']} "
                  f"(tenant={job['tenant']} priority={job['priority']})")
            if job["error"]:
                print(f"  error: {job['error']}")
            for task in job["tasks"]:
                print(
                    f"  task-{task['task_id']:03d} via {task['tuner']:<8s}"
                    f" best {task['best_gflops']:9.1f} GFLOPS in "
                    f"{task['num_measurements']} measurements"
                )
            return 0
        rows = client.jobs(tenant=args.tenant, state=args.state)
    except ServiceClientError as exc:
        print(f"request failed: {exc}", file=sys.stderr)
        return 1
    print(f"{'job':<12} {'tenant':<10} {'prio':>4} {'state':<10} "
          f"{'tasks':>5} {'best GFLOPS':>12}")
    for row in rows:
        print(
            f"{row['job_id']:<12} {row['tenant']:<10.10s} "
            f"{row['priority']:>4d} {row['state']:<10} "
            f"{row['tasks_done']:>5d} {row['best_gflops']:>12.1f}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report, write_report

    if args.output:
        path = write_report(args.results, args.output)
        print(f"report written to {path}")
    else:
        print(build_report(args.results))
    return 0


def _add_speed_args(parser: argparse.ArgumentParser) -> None:
    """The tuning-throughput flags shared by tuning subcommands."""
    parser.add_argument("--pipeline", action="store_true",
                        help="overlap each batch's measurement with a "
                             "speculative proposal of the next batch; "
                             "records stay bit-identical to the serial "
                             "loop (see docs/PERFORMANCE.md)")
    parser.add_argument("--refit", choices=("full", "incremental"),
                        default="full",
                        help="surrogate-model refit strategy: 'full' "
                             "rebuilds from scratch each round "
                             "(historical default), 'incremental' keeps "
                             "grown trees and appends boosting rounds "
                             "(model-based arms only)")


def _refit_kwargs(args: argparse.Namespace) -> Optional[dict]:
    """Validate --refit against the arm; None means 'print usage error'."""
    if args.refit == "full":
        return {}
    if args.arm.lower() not in INCREMENTAL_REFIT_ARMS:
        print(
            f"--refit incremental is not supported by arm {args.arm!r}; "
            f"supported arms: {sorted(INCREMENTAL_REFIT_ARMS)}",
            file=sys.stderr,
        )
        return None
    return {"refit": args.refit}


def _add_tlog_args(parser: argparse.ArgumentParser) -> None:
    """The cross-run tuning-log flags shared by tuning subcommands."""
    parser.add_argument("--tlog-dir", default=None,
                        help="consult and grow a cross-run tuning-log "
                             "database in this directory: exact-signature "
                             "tasks are served with zero measurements and "
                             "finished tasks are recorded for later runs")
    parser.add_argument("--warm-start", action="store_true",
                        help="seed each task's search from the nearest "
                             "transferable tasks in --tlog-dir "
                             "(no effect without --tlog-dir)")
    parser.add_argument("--warm-k", type=int, default=16,
                        help="prior configurations injected per "
                             "warm-started task (default: 16)")
    parser.add_argument("--warm-device", default="any",
                        choices=("any", "same", "cross"),
                        help="device classes eligible as warm-start "
                             "sources: any (default), same (the task's "
                             "own class), or cross (other classes only)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Advanced active learning for DNN hardware deployment "
        "(DATE 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(
        func=_cmd_models
    )

    p_tasks = sub.add_parser("tasks", help="list a model's tuning tasks")
    p_tasks.add_argument("--model", required=True,
                         choices=sorted(MODEL_BUILDERS))
    p_tasks.set_defaults(func=_cmd_tasks)

    p_tune = sub.add_parser("tune", help="tune and deploy a zoo model")
    p_tune.add_argument("--model", required=True,
                        choices=sorted(MODEL_BUILDERS))
    p_tune.add_argument(
        "--arm", default="bted+bao", choices=sorted(TUNER_REGISTRY)
    )
    p_tune.add_argument("--budget", type=int, default=256,
                        help="measurements per task")
    p_tune.add_argument("--early-stop", type=int, default=None)
    p_tune.add_argument("--runs", type=int, default=600,
                        help="timed end-to-end runs")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--env-seed", type=int, default=2021)
    p_tune.add_argument("--records", default=None,
                        help="save tuning records to this JSON-lines file")
    p_tune.add_argument("--winograd", action="store_true",
                        help="also tune Winograd templates for eligible "
                             "convs and deploy the faster one per kernel")
    p_tune.add_argument("--executor", default="serial",
                        choices=list(EXECUTOR_KINDS),
                        help="measurement backend (results are identical)")
    p_tune.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --executor parallel "
                             "(default: all cores)")
    p_tune.add_argument("--measure-cache", default=None,
                        help="memoize measurements in this pickle file")
    p_tune.add_argument("--checkpoint-dir", default=None,
                        help="write per-task tuning checkpoints here")
    p_tune.add_argument("--resume", action="store_true",
                        help="continue an interrupted run from "
                             "--checkpoint-dir (bit-identical to an "
                             "uninterrupted run)")
    p_tune.add_argument("--fault-rate", type=float, default=0.0,
                        help="inject deterministic transient measurement "
                             "faults at this rate (0 disables)")
    p_tune.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault-injection schedule")
    p_tune.add_argument("--max-retries", type=int, default=None,
                        help="retries per faulted measurement before it is "
                             "recorded as failed (default: 3)")
    p_tune.add_argument("--metrics-out", default=None,
                        help="write a Prometheus-style metrics snapshot of "
                             "the tuning run to this file")
    p_tune.add_argument("--trace-out", default=None,
                        help="write a JSONL span trace "
                             "(tune/step/propose/measure/refit) here")
    p_tune.add_argument("--summary", default=None,
                        help="write the per-run RunSummary JSON (best curve, "
                             "time breakdown, fault counts) here")
    _add_tlog_args(p_tune)
    _add_speed_args(p_tune)
    p_tune.set_defaults(func=_cmd_tune)

    p_compile = sub.add_parser(
        "compile",
        help="deploy a model straight from a tuning-log database "
             "(no tuning, no measurements)",
    )
    p_compile.add_argument("--model", required=True,
                           choices=sorted(MODEL_BUILDERS))
    p_compile.add_argument("--tlog-dir", required=True,
                           help="tuning-log database to deploy from")
    p_compile.add_argument("--runs", type=int, default=600,
                           help="timed end-to-end runs")
    p_compile.add_argument("--seed", type=int, default=0)
    p_compile.add_argument("--env-seed", type=int, default=2021)
    p_compile.set_defaults(func=_cmd_compile)

    p_fleet = sub.add_parser(
        "fleet",
        help="tune a model on a simulated multi-device fleet "
             "(bit-identical to a serial run)",
    )
    p_fleet.add_argument("--model", required=True,
                         choices=sorted(MODEL_BUILDERS))
    p_fleet.add_argument(
        "--arm", default="bted+bao", choices=sorted(TUNER_REGISTRY)
    )
    p_fleet.add_argument("--devices", default="gtx1080ti,gtx1080ti",
                         help="comma-separated device presets, each "
                              "optionally suffixed :fault_rate "
                              "(e.g. gtx1080ti,gtx1080ti:0.1,titanv)")
    p_fleet.add_argument("--jobs", type=int, default=None,
                         help="worker threads draining the fleet "
                              "(default: one per device)")
    p_fleet.add_argument("--budget", type=int, default=256,
                         help="measurements per task")
    p_fleet.add_argument("--early-stop", type=int, default=None)
    p_fleet.add_argument("--runs", type=int, default=600,
                         help="timed end-to-end runs")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--env-seed", type=int, default=2021)
    p_fleet.add_argument("--records", default=None,
                         help="save tuning records to this JSON-lines file")
    p_fleet.add_argument("--checkpoint-dir", default=None,
                         help="write per-device task checkpoints here "
                              "(device-NN/task-MMM.ckpt)")
    p_fleet.add_argument("--resume", action="store_true",
                         help="continue an interrupted fleet run from "
                              "--checkpoint-dir with the same --devices "
                              "(bit-identical to an uninterrupted run)")
    p_fleet.add_argument("--fault-rate", type=float, default=0.0,
                         help="fleet-level deterministic fault rate; "
                              "per-device :rate suffixes override it")
    p_fleet.add_argument("--fault-seed", type=int, default=0)
    p_fleet.add_argument("--max-retries", type=int, default=None,
                         help="retries per faulted measurement")
    p_fleet.add_argument("--report", default=None,
                         help="write the fleet scheduling report "
                              "(assignments, steals, ordinal spans) to "
                              "this JSON file")
    p_fleet.add_argument("--summary-dir", default=None,
                         help="write one RunSummary file per device plus "
                              "the fleet-aggregated summary.json here")
    _add_tlog_args(p_fleet)
    _add_speed_args(p_fleet)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_exp = sub.add_parser("experiment", help="regenerate a paper result")
    p_exp.add_argument(
        "which",
        choices=[
            "fig4", "fig5", "table1", "warmcold", "adaptive", "crossdevice",
        ],
    )
    p_exp.add_argument("--scale", type=float, default=0.1,
                       help="budget scale in (0, 1]; 1.0 = paper protocol")
    p_exp.add_argument("--arms", default=None,
                       help="fig4/fig5/table1: comma-separated arm list "
                            "to compare (default: the paper arms; see "
                            "docs/ARMS.md for the full registry); "
                            "adaptive: baseline,adaptive arm pair")
    p_exp.add_argument("--max-tasks", type=int, default=None,
                       help="fig5/warmcold/crossdevice: limit the number "
                            "of tasks")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="fan experiment cells over N worker processes "
                            "(results are identical to --jobs 1)")
    p_exp.add_argument("--measure-cache", default=None,
                       help="fig4/fig5: memoize measurements in this "
                            "pickle file")
    p_exp.add_argument("--checkpoint-dir", default=None,
                       help="fig4/fig5: persist finished cells here; "
                            "rerunning skips them")
    p_exp.add_argument("--summary", default=None,
                       help="collect per-cell RunSummary files and an "
                            "aggregated summary.json in this directory")
    p_exp.add_argument("--fleet", default=None,
                       help="shard cells across a simulated device fleet "
                            "(comma-separated presets; results identical "
                            "to the serial run)")
    p_exp.add_argument("--model", default="mobilenet-v1",
                       choices=sorted(MODEL_BUILDERS),
                       help="warmcold/adaptive/crossdevice: model to study")
    p_exp.add_argument("--arm", default="bted",
                       choices=sorted(TUNER_REGISTRY),
                       help="warmcold/crossdevice: tuning arm")
    p_exp.add_argument("--tlog-dir", default=None,
                       help="warmcold/crossdevice: persist the study's "
                            "tuning log here (default: temporary)")
    p_exp.add_argument("--warm-k", type=int, default=16,
                       help="warmcold/crossdevice: prior configurations "
                            "injected per warm-started task")
    p_exp.add_argument("--devices", default="gtx1080ti,titanv,jetsontx2",
                       help="crossdevice only: comma-separated device "
                            "presets (at least two distinct classes)")
    p_exp.add_argument("--json-out", default=None,
                       help="crossdevice only: also write the study "
                            "digest to this JSON file")
    p_exp.set_defaults(func=_cmd_experiment)

    p_serve = sub.add_parser(
        "serve",
        help="run the tuning service: HTTP job API + persistent job "
             "store + fleet queue (see docs/SERVICE.md)",
    )
    p_serve.add_argument("--data-dir", required=True,
                         help="service state root: jobs.sqlite, per-job "
                              "checkpoints, and the shared tuning log")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8100,
                         help="listening port (0 binds an ephemeral "
                              "port and prints it)")
    p_serve.add_argument("--devices", default="gtx1080ti,gtx1080ti",
                         help="the service fleet (comma-separated device "
                              "presets, as in `repro fleet --devices`)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="worker threads draining the fleet "
                              "(default: one per device)")
    p_serve.add_argument("--quota", action="append", metavar="TENANT=N",
                         help="per-tenant active-job quota override "
                              "(repeatable)")
    p_serve.add_argument("--default-quota", type=int, default=8,
                         help="active-job quota for tenants without an "
                              "explicit --quota (default: 8)")
    p_serve.add_argument("--no-tlog", action="store_true",
                         help="disable the shared cross-job tuning log "
                              "(every job tunes from scratch)")
    p_serve.add_argument("--warm-start", action="store_true",
                         help="warm-start each job's tasks from the "
                              "shared tuning log")
    p_serve.add_argument("--pipeline", action="store_true",
                         help="overlap propose/measure inside each job "
                              "(records stay bit-identical)")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a tuning job to a running service"
    )
    p_submit.add_argument("--url", required=True,
                          help="service base URL (from `repro serve`)")
    p_submit.add_argument("--model", required=True,
                          choices=sorted(MODEL_BUILDERS))
    p_submit.add_argument("--arm", default="bted+bao",
                          choices=sorted(TUNER_REGISTRY))
    p_submit.add_argument("--budget", type=int, default=64,
                          help="measurements per task")
    p_submit.add_argument("--early-stop", type=int, default=None)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--env-seed", type=int, default=2021)
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher dequeues first (FIFO within a "
                               "level)")
    p_submit.add_argument("--devices", default=None,
                          help="override the service fleet for this job")
    p_submit.add_argument("--max-tasks", type=int, default=None,
                          help="limit the number of tuned tasks")
    p_submit.add_argument("--tuner-kwargs", default=None,
                          help="JSON object of extra tuner arguments")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll progress until the job finishes")
    p_submit.add_argument("--timeout", type=float, default=3600.0,
                          help="--wait timeout in seconds")
    p_submit.set_defaults(func=_cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a service's jobs, or show one job's tasks"
    )
    p_jobs.add_argument("--url", required=True,
                        help="service base URL (from `repro serve`)")
    p_jobs.add_argument("job_id", nargs="?", default=None,
                        help="show this job's per-task results")
    p_jobs.add_argument("--tenant", default=None,
                        help="filter the listing by tenant")
    p_jobs.add_argument("--state", default=None,
                        choices=("queued", "running", "done", "failed",
                                 "cancelled"),
                        help="filter the listing by state")
    p_jobs.set_defaults(func=_cmd_jobs)

    p_report = sub.add_parser(
        "report", help="aggregate benchmark artifacts into one document"
    )
    p_report.add_argument("--results", default="benchmarks/results",
                          help="benchmark results directory")
    p_report.add_argument("--output", default=None,
                          help="write markdown here instead of stdout")
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
