"""The event-stream observer: TuningEvents -> metrics + trace + summary.

:class:`TuningObserver` is an ``on_event`` sink for :meth:`Tuner.tune`.
It dispatches on ``event.kind`` strings and duck-types event
attributes, so this module imports nothing from :mod:`repro.core` and
the core never imports the observer — the event stream is the only
coupling, in one direction.

Span catalog (see ``docs/OBSERVABILITY.md``):

========  ========================================================
span      one per
========  ========================================================
tune      tuning run (root; all other spans are descendants)
step      measured batch (opens at proposal, closes at measurement)
propose   search-policy proposal (child of step)
measure   executor deployment of the batch (child of step)
refit     surrogate-model refit (child of tune; via the hook bus)
========  ========================================================

Fault retries, scope widenings, checkpoints and resumes are counters
(and summary fields), *not* spans: checkpoint cadence differs between
a resumed and an uninterrupted run by construction, and keeping those
out of the trace is what lets span skeletons stay bit-identical across
a crash/resume cycle.

The observer itself implements the callback state protocol
(``state_dict``/``load_state_dict``), so :meth:`Tuner.snapshot`
checkpoints it and :meth:`Tuner.resume` restores it — a resumed run's
summary and trace skeletons are identical to an uninterrupted run's.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import hooks
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import (
    RunSummary,
    aggregate_summaries,
    write_summary_json,
)
from repro.obs.trace import TraceRecorder

#: bucket edges for batch-size histograms (configs per batch)
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class TuningObserver:
    """Subscribe to one tuning run; produce metrics, trace and summary.

    Pass ``metrics=None`` or ``trace=None`` to disable either output;
    the deterministic :class:`RunSummary` is always maintained.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        enable_metrics: bool = True,
        enable_trace: bool = True,
    ):
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry() if enable_metrics else None
        )
        self.trace = trace if trace is not None else (
            TraceRecorder() if enable_trace else None
        )
        self._t0 = time.perf_counter()
        self._wall_offset = 0.0
        # deterministic run facts (mirrored into RunSummary)
        self._task = ""
        self._arm = ""
        self._seed: Optional[int] = None
        self._measured = 0
        self._errors = 0
        self._batches = 0
        self._refits = 0
        self._improvements = 0
        self._widenings = 0
        self._retries = 0
        self._failures = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._tlog_hits = 0
        self._warm_starts = 0
        self._warm_injected = 0
        self._exploit_steps = 0
        self._pruned_candidates = 0
        self._speculations = 0
        self._speculation_replays = 0
        self._refit_reused_trees = 0
        self._finish_phase = ""
        self._best = 0.0
        self._best_index = -1
        self._curve: List[float] = []
        self._early_stopped = False
        self._space_exhausted = False
        self._resumed = False
        # wall-clock accumulators (non-deterministic)
        self._proposal_s = 0.0
        self._measure_s = 0.0
        self._refit_s = 0.0
        self._pipeline_overlap_s = 0.0
        # span bookkeeping
        self._root_id: Optional[int] = None
        self._step_id: Optional[int] = None
        self._hooks_active = False
        if self.metrics is not None:
            self._declare_metrics(self.metrics)
        self._dispatch = {
            "batch_proposed": self._on_batch_proposed,
            "batch_measured": self._on_batch_measured,
            "incumbent_improved": self._on_incumbent_improved,
            "scope_widened": self._on_scope_widened,
            "bao_scope_widened": self._on_scope_widened,
            "early_stopped": self._on_early_stopped,
            "space_exhausted": self._on_space_exhausted,
            "measurement_retried": self._on_retried,
            "measurement_failed": self._on_failed,
            "checkpoint_saved": self._on_checkpoint_saved,
            "tuning_resumed": self._on_tuning_resumed,
            "warm_started": self._on_warm_started,
            "tlog_exact_hit": self._on_tlog_exact_hit,
            "exploit_stepped": self._on_exploit_stepped,
            "candidates_pruned": self._on_candidates_pruned,
            "finish_phase_started": self._on_finish_phase_started,
            "speculation_resolved": self._on_speculation_resolved,
        }

    @staticmethod
    def _declare_metrics(m: MetricsRegistry) -> None:
        m.counter("batches_total", "measured batches")
        m.counter("measurements_total", "configurations measured")
        m.counter("measurement_errors_total", "failed measurements")
        m.counter("improvements_total", "incumbent improvements")
        m.counter("widenings_total", "BAO scope widenings")
        m.counter("retries_total", "measurements recovered by retry")
        m.counter("failures_total", "measurements exhausting retries")
        m.counter("refits_total", "surrogate-model refits")
        m.counter("checkpoints_total", "checkpoints written")
        m.counter("resumes_total", "runs resumed from checkpoint")
        m.counter("early_stops_total", "early-stopping triggers")
        m.counter("space_exhausted_total", "search-space exhaustions")
        m.counter("cache_hits_total", "measurement cache hits")
        m.counter("cache_misses_total", "measurement cache misses")
        m.counter("tlog_exact_hits_total", "tasks served from the tuning log")
        m.counter("tlog_warm_starts_total", "tasks warm-started from the log")
        m.counter(
            "tlog_warm_configs_total", "seed configs injected by warm starts"
        )
        m.counter(
            "tlog_cross_device_sources_total",
            "warm-start source segments measured on another device class",
        )
        m.counter(
            "exploit_steps_total", "coordinate-descent axis sweeps proposed"
        )
        m.counter(
            "pruned_candidates_total",
            "proposals dropped by adaptive sampling",
        )
        m.counter(
            "finish_phases_total", "handoffs to a finishing search policy"
        )
        m.counter(
            "speculations_total", "speculative proposals resolved"
        )
        m.counter(
            "speculation_replays_total",
            "speculations discarded and replayed serially",
        )
        m.counter(
            "refit_reused_trees_total",
            "trees carried over by incremental refits",
        )
        m.gauge("best_gflops", "best throughput so far")
        m.gauge("measured", "configurations measured so far")
        m.histogram("proposal_seconds", "proposal wall time per batch")
        m.histogram("measure_seconds", "measurement wall time per batch")
        m.histogram("refit_seconds", "refit wall time")
        m.histogram(
            "batch_size", "configs per measured batch", BATCH_SIZE_BUCKETS
        )

    # ---- lifecycle (called by Tuner.tune) ----------------------------

    def on_tune_begin(self, tuner, n_trial: int = 0, resumed: bool = False):
        """Capture run identity, open the root span, register hooks."""
        self._arm = str(getattr(tuner, "name", "") or "")
        task = getattr(tuner, "task", None)
        workload = getattr(task, "workload", None)
        if workload is not None:
            self._task = str(workload)
        seed = getattr(tuner, "seed", None)
        if seed is not None:
            self._seed = int(seed)
        if self.trace is not None and self._root_id is None:
            self._root_id = self.trace.open_span(
                "tune",
                step=0,
                attrs={
                    "task": self._task,
                    "arm": self._arm,
                    "seed": self._seed,
                    "n_trial": int(n_trial),
                },
            )
        if not self._hooks_active:
            hooks.add_refit_hook(self._on_refit)
            hooks.add_measure_hook(self._on_measure)
            hooks.add_cache_hook(self._on_cache)
            hooks.add_refit_reuse_hook(self._on_refit_reuse)
            self._hooks_active = True

    def on_tune_end(self, tuner) -> None:
        """Unregister hooks and close the root span (idempotent)."""
        if self._hooks_active:
            hooks.remove_refit_hook(self._on_refit)
            hooks.remove_measure_hook(self._on_measure)
            hooks.remove_cache_hook(self._on_cache)
            hooks.remove_refit_reuse_hook(self._on_refit_reuse)
            self._hooks_active = False
        if self.trace is not None and self._root_id is not None:
            root = self.trace.spans[self._root_id]
            if root["duration_s"] is None:
                self.trace.close_span(
                    self._root_id,
                    attrs={
                        "num_measurements": self._measured,
                        "early_stopped": self._early_stopped,
                        "space_exhausted": self._space_exhausted,
                    },
                )

    def close(self) -> None:
        """Callback-protocol alias used when installed as a callback."""
        self.on_tune_end(None)

    # ---- event dispatch ----------------------------------------------

    def __call__(self, tuner, event) -> None:
        handler = self._dispatch.get(event.kind)
        if handler is not None:
            handler(event)

    def _on_batch_proposed(self, event) -> None:
        proposal_s = float(getattr(event, "proposal_s", 0.0))
        self._proposal_s += proposal_s
        n = len(getattr(event, "config_indices", ()))
        if self.metrics is not None:
            self.metrics.get("proposal_seconds").observe(proposal_s)
        if self.trace is not None:
            self._step_id = self.trace.open_span(
                "step", step=int(event.step), parent_id=self._root_id
            )
            self.trace.record(
                "propose",
                step=int(event.step),
                parent_id=self._step_id,
                duration_s=proposal_s,
                start_s=self.trace.now() - proposal_s,
                attrs={"n_configs": n},
            )

    def _on_batch_measured(self, event) -> None:
        results = getattr(event, "results", ())
        measure_s = float(getattr(event, "measure_s", 0.0))
        num_ok = sum(1 for r in results if getattr(r, "ok", False))
        batch_best = max(
            (float(r.gflops) for r in results if getattr(r, "ok", False)),
            default=0.0,
        )
        self._measure_s += measure_s
        self._measured = int(event.step)
        self._errors += len(results) - num_ok
        self._batches += 1
        self._best = max(self._best, batch_best)
        self._curve.append(round(self._best, 6))
        if self.metrics is not None:
            self.metrics.get("batches_total").inc()
            self.metrics.get("measurements_total").inc(len(results))
            self.metrics.get("measurement_errors_total").inc(
                len(results) - num_ok
            )
            self.metrics.get("measure_seconds").observe(measure_s)
            self.metrics.get("batch_size").observe(len(results))
            self.metrics.get("measured").set(self._measured)
            self.metrics.get("best_gflops").set(self._best)
        if self.trace is not None:
            parent = self._step_id
            self.trace.record(
                "measure",
                step=int(event.step),
                parent_id=parent,
                duration_s=measure_s,
                start_s=self.trace.now() - measure_s,
                attrs={"n_configs": len(results), "num_ok": num_ok},
            )
            if parent is not None:
                self.trace.close_span(
                    parent, attrs={"best_gflops": round(self._best, 6)}
                )
                self._step_id = None

    def _on_incumbent_improved(self, event) -> None:
        self._improvements += 1
        self._best_index = int(getattr(event, "config_index", -1))
        self._best = max(self._best, float(getattr(event, "gflops", 0.0)))
        if self.metrics is not None:
            self.metrics.get("improvements_total").inc()
            self.metrics.get("best_gflops").set(self._best)

    def _on_scope_widened(self, event) -> None:
        self._widenings += 1
        if self.metrics is not None:
            self.metrics.get("widenings_total").inc()

    def _on_early_stopped(self, event) -> None:
        self._early_stopped = True
        if self.metrics is not None:
            self.metrics.get("early_stops_total").inc()

    def _on_space_exhausted(self, event) -> None:
        self._space_exhausted = True
        if self.metrics is not None:
            self.metrics.get("space_exhausted_total").inc()

    def _on_retried(self, event) -> None:
        self._retries += 1
        if self.metrics is not None:
            self.metrics.get("retries_total").inc()

    def _on_failed(self, event) -> None:
        self._failures += 1
        if self.metrics is not None:
            self.metrics.get("failures_total").inc()

    def _on_checkpoint_saved(self, event) -> None:
        if self.metrics is not None:
            self.metrics.get("checkpoints_total").inc()

    def _on_tuning_resumed(self, event) -> None:
        self._resumed = True
        if self.metrics is not None:
            self.metrics.get("resumes_total").inc()

    def _on_warm_started(self, event) -> None:
        self._warm_starts += 1
        injected = int(getattr(event, "injected", 0))
        self._warm_injected += injected
        if self.metrics is not None:
            self.metrics.get("tlog_warm_starts_total").inc()
            self.metrics.get("tlog_warm_configs_total").inc(injected)
            cross = int(getattr(event, "cross_sources", 0))
            if cross:
                self.metrics.get("tlog_cross_device_sources_total").inc(cross)

    def _on_tlog_exact_hit(self, event) -> None:
        self._tlog_hits += 1
        if self.metrics is not None:
            self.metrics.get("tlog_exact_hits_total").inc()

    def _on_exploit_stepped(self, event) -> None:
        self._exploit_steps += 1
        if self.metrics is not None:
            self.metrics.get("exploit_steps_total").inc()

    def _on_candidates_pruned(self, event) -> None:
        proposed = int(getattr(event, "proposed", 0))
        kept = int(getattr(event, "kept", 0))
        self._pruned_candidates += max(0, proposed - kept)
        if self.metrics is not None:
            self.metrics.get("pruned_candidates_total").inc(
                max(0, proposed - kept)
            )

    def _on_finish_phase_started(self, event) -> None:
        self._finish_phase = str(getattr(event, "policy", "") or "")
        if self.metrics is not None:
            self.metrics.get("finish_phases_total").inc()

    def _on_speculation_resolved(self, event) -> None:
        self._speculations += 1
        adopted = bool(getattr(event, "adopted", True))
        if not adopted:
            self._speculation_replays += 1
        self._pipeline_overlap_s += float(getattr(event, "overlap_s", 0.0))
        if self.metrics is not None:
            self.metrics.get("speculations_total").inc()
            if not adopted:
                self.metrics.get("speculation_replays_total").inc()

    # ---- hook-bus callbacks ------------------------------------------

    def _on_refit(self, rows: int, duration_s: float, kind: str) -> None:
        self._refits += 1
        self._refit_s += duration_s
        if self.metrics is not None:
            self.metrics.get("refits_total").inc()
            self.metrics.get("refit_seconds").observe(duration_s)
        if self.trace is not None:
            self.trace.record(
                "refit",
                step=self._measured,
                parent_id=self._root_id,
                duration_s=duration_s,
                start_s=self.trace.now() - duration_s,
                attrs={"rows": int(rows), "kind": kind},
            )

    def _on_measure(self, backend: str, n: int, duration_s: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"executor_batches_{backend}_total",
                f"batches deployed by the {backend} executor",
            ).inc()

    def _on_cache(self, hits: int, misses: int) -> None:
        self._cache_hits += hits
        self._cache_misses += misses
        if self.metrics is not None:
            self.metrics.get("cache_hits_total").inc(hits)
            self.metrics.get("cache_misses_total").inc(misses)

    def _on_refit_reuse(self, reused_trees: int) -> None:
        self._refit_reused_trees += int(reused_trees)
        if self.metrics is not None:
            self.metrics.get("refit_reused_trees_total").inc(
                int(reused_trees)
            )

    # ---- outputs ------------------------------------------------------

    def wall_s(self) -> float:
        """Wall-clock seconds observed, carried across resumes."""
        return self._wall_offset + (time.perf_counter() - self._t0)

    def summary(self) -> RunSummary:
        """The deterministic digest of the run observed so far."""
        return RunSummary(
            task=self._task,
            arm=self._arm,
            seed=self._seed,
            num_measurements=self._measured,
            num_errors=self._errors,
            best_index=self._best_index,
            best_gflops=round(self._best, 6),
            best_curve=list(self._curve),
            batches=self._batches,
            refits=self._refits,
            improvements=self._improvements,
            widenings=self._widenings,
            retries=self._retries,
            failures=self._failures,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            exploit_steps=self._exploit_steps,
            pruned_candidates=self._pruned_candidates,
            finish_phase=self._finish_phase,
            speculations=self._speculations,
            speculation_replays=self._speculation_replays,
            refit_reused_trees=self._refit_reused_trees,
            early_stopped=self._early_stopped,
            space_exhausted=self._space_exhausted,
            resumed=self._resumed,
            proposal_s=self._proposal_s,
            measure_s=self._measure_s,
            refit_s=self._refit_s,
            pipeline_overlap_s=self._pipeline_overlap_s,
            wall_s=self.wall_s(),
        )

    # ---- checkpoint state protocol -----------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable resumable state (counts, curve, spans)."""
        return {
            "task": self._task,
            "arm": self._arm,
            "seed": self._seed,
            "measured": self._measured,
            "errors": self._errors,
            "batches": self._batches,
            "refits": self._refits,
            "improvements": self._improvements,
            "widenings": self._widenings,
            "retries": self._retries,
            "failures": self._failures,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "tlog_hits": self._tlog_hits,
            "warm_starts": self._warm_starts,
            "warm_injected": self._warm_injected,
            "exploit_steps": self._exploit_steps,
            "pruned_candidates": self._pruned_candidates,
            "speculations": self._speculations,
            "speculation_replays": self._speculation_replays,
            "refit_reused_trees": self._refit_reused_trees,
            "finish_phase": self._finish_phase,
            "best": self._best,
            "best_index": self._best_index,
            "curve": list(self._curve),
            "early_stopped": self._early_stopped,
            "space_exhausted": self._space_exhausted,
            "resumed": self._resumed,
            "proposal_s": self._proposal_s,
            "measure_s": self._measure_s,
            "refit_s": self._refit_s,
            "pipeline_overlap_s": self._pipeline_overlap_s,
            "wall_s": self.wall_s(),
            "root_id": self._root_id,
            "step_id": self._step_id,
            "metrics": (
                self.metrics.state_dict() if self.metrics is not None else None
            ),
            "trace": (
                self.trace.state_dict() if self.trace is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore from :meth:`state_dict`; clocks re-anchor to now."""
        self._task = str(state.get("task", ""))
        self._arm = str(state.get("arm", ""))
        seed = state.get("seed")
        self._seed = None if seed is None else int(seed)
        self._measured = int(state.get("measured", 0))
        self._errors = int(state.get("errors", 0))
        self._batches = int(state.get("batches", 0))
        self._refits = int(state.get("refits", 0))
        self._improvements = int(state.get("improvements", 0))
        self._widenings = int(state.get("widenings", 0))
        self._retries = int(state.get("retries", 0))
        self._failures = int(state.get("failures", 0))
        self._cache_hits = int(state.get("cache_hits", 0))
        self._cache_misses = int(state.get("cache_misses", 0))
        self._tlog_hits = int(state.get("tlog_hits", 0))
        self._warm_starts = int(state.get("warm_starts", 0))
        self._warm_injected = int(state.get("warm_injected", 0))
        self._exploit_steps = int(state.get("exploit_steps", 0))
        self._pruned_candidates = int(state.get("pruned_candidates", 0))
        self._speculations = int(state.get("speculations", 0))
        self._speculation_replays = int(
            state.get("speculation_replays", 0)
        )
        self._refit_reused_trees = int(state.get("refit_reused_trees", 0))
        self._finish_phase = str(state.get("finish_phase", ""))
        self._best = float(state.get("best", 0.0))
        self._best_index = int(state.get("best_index", -1))
        self._curve = [float(v) for v in state.get("curve", [])]
        self._early_stopped = bool(state.get("early_stopped", False))
        self._space_exhausted = bool(state.get("space_exhausted", False))
        self._resumed = bool(state.get("resumed", False))
        self._proposal_s = float(state.get("proposal_s", 0.0))
        self._measure_s = float(state.get("measure_s", 0.0))
        self._refit_s = float(state.get("refit_s", 0.0))
        self._pipeline_overlap_s = float(
            state.get("pipeline_overlap_s", 0.0)
        )
        self._wall_offset = float(state.get("wall_s", 0.0))
        self._t0 = time.perf_counter()
        root_id = state.get("root_id")
        self._root_id = None if root_id is None else int(root_id)
        step_id = state.get("step_id")
        self._step_id = None if step_id is None else int(step_id)
        if state.get("metrics") is not None:
            if self.metrics is None:
                self.metrics = MetricsRegistry()
                self._declare_metrics(self.metrics)
            self.metrics.load_state_dict(state["metrics"])
        if state.get("trace") is not None:
            if self.trace is None:
                self.trace = TraceRecorder()
            self.trace.load_state_dict(state["trace"])


class RunObservation:
    """A bundle of per-task observers for a multi-task run.

    :class:`~repro.pipeline.compiler.DeploymentCompiler` tunes one
    tuner per network task; each gets its own observer (own metric
    registry + trace) keyed by a stable task key, and this class
    merges them into run-level exporter outputs.
    """

    def __init__(self, enable_metrics: bool = True, enable_trace: bool = True):
        self.enable_metrics = enable_metrics
        self.enable_trace = enable_trace
        self._observers: Dict[str, TuningObserver] = {}

    def observer(self, key: str) -> TuningObserver:
        """Get or create the observer for one task key."""
        obs = self._observers.get(key)
        if obs is None:
            obs = self._observers[key] = TuningObserver(
                enable_metrics=self.enable_metrics,
                enable_trace=self.enable_trace,
            )
        return obs

    def load(self, key: str, state: dict) -> TuningObserver:
        """Restore a task observer from persisted JSON state."""
        obs = self.observer(key)
        obs.load_state_dict(state)
        return obs

    def keys(self) -> List[str]:
        return sorted(self._observers)

    def __len__(self) -> int:
        return len(self._observers)

    def summaries(self) -> List[RunSummary]:
        """Per-task summaries, in sorted key order."""
        return [self._observers[k].summary() for k in self.keys()]

    def merged_metrics(self) -> MetricsRegistry:
        """One registry with every task's metrics folded together."""
        merged = MetricsRegistry()
        for key in self.keys():
            obs = self._observers[key]
            if obs.metrics is not None:
                merged.merge(obs.metrics)
        return merged

    def merged_spans(self) -> List[Dict[str, Any]]:
        """All tasks' spans concatenated with globally unique ids.

        Tasks are concatenated in sorted key order with span / parent
        ids rebased, and each span gains a ``task_key`` attribute — so
        the merged trace is deterministic whenever the per-task traces
        are.
        """
        merged: List[Dict[str, Any]] = []
        offset = 0
        for key in self.keys():
            obs = self._observers[key]
            if obs.trace is None:
                continue
            for span in obs.trace.spans:
                out = dict(span, attrs=dict(span["attrs"]))
                out["span_id"] = span["span_id"] + offset
                if span["parent_id"] is not None:
                    out["parent_id"] = span["parent_id"] + offset
                out["attrs"]["task_key"] = key
                merged.append(out)
            offset += len(obs.trace.spans)
        return merged

    def write_trace_jsonl(self, path: str) -> None:
        """Export the merged trace as JSONL."""
        import json

        from repro.utils.io import atomic_write_text

        lines = [
            json.dumps(span, sort_keys=True) for span in self.merged_spans()
        ]
        atomic_write_text(path, "\n".join(lines) + "\n" if lines else "")

    def write_metrics(self, path: str) -> None:
        """Export merged metrics as a Prometheus text snapshot."""
        from repro.utils.io import atomic_write_text

        atomic_write_text(path, self.merged_metrics().render_prometheus())

    def write_summary(self, path: str) -> None:
        """Export the aggregate + per-task summaries as JSON."""
        rows = self.summaries()
        payload = aggregate_summaries(rows)
        payload["tasks"] = [s.to_dict() for s in rows]
        write_summary_json(path, payload)
