"""Per-run summaries and cross-cell aggregation.

A :class:`RunSummary` is the "one paragraph about this run" artifact:
the best-so-far curve (the paper's Fig. 4 y-axis), the compilation-time
breakdown (proposal vs. measurement vs. model refit — the split that
Chameleon-style work optimizes), and the fault/retry/widen counters
that describe how rough the hardware ride was.

Bit-identity contract: every field except those named in
:data:`DURATION_FIELDS` is a pure function of the run's seeded
decisions.  :meth:`RunSummary.deterministic_dict` drops the wall-clock
fields; a crash-and-resume run must produce the same deterministic
dict as an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.utils.io import atomic_write_text

#: RunSummary fields carrying wall-clock time — excluded from the
#: resumed-vs-uninterrupted bit-identity comparison
DURATION_FIELDS = frozenset(
    {"proposal_s", "measure_s", "refit_s", "pipeline_overlap_s", "wall_s"}
)


@dataclass
class RunSummary:
    """Deterministic digest of one tuning run (one task, one arm)."""

    task: str = ""
    arm: str = ""
    seed: Optional[int] = None
    num_measurements: int = 0
    num_errors: int = 0
    best_index: int = -1
    best_gflops: float = 0.0
    #: best-so-far GFLOPS after each batch, rounded to 6 decimals
    best_curve: List[float] = field(default_factory=list)
    batches: int = 0
    refits: int = 0
    improvements: int = 0
    widenings: int = 0
    retries: int = 0
    failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: coordinate-descent axis sweeps proposed (Droplet-style arms)
    exploit_steps: int = 0
    #: proposals dropped by the adaptive-sampling stage before measuring
    pruned_candidates: int = 0
    #: finishing policy the run handed over to ("" = single-phase run)
    finish_phase: str = ""
    #: speculative proposals resolved by the pipelined loop
    speculations: int = 0
    #: speculations discarded and replayed serially (mispredictions)
    speculation_replays: int = 0
    #: trees carried over by warm-started (incremental) refits
    refit_reused_trees: int = 0
    early_stopped: bool = False
    space_exhausted: bool = False
    resumed: bool = False
    #: --- wall-clock breakdown (non-deterministic) ---
    proposal_s: float = 0.0
    measure_s: float = 0.0
    refit_s: float = 0.0
    #: proposal seconds hidden behind concurrent measurement
    pipeline_overlap_s: float = 0.0
    wall_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSummary":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def deterministic_dict(self) -> Dict[str, Any]:
        """All fields except wall-clock durations (and resume marker).

        ``resumed`` is excluded too: it records *that* a run resumed,
        which by construction differs between the baseline and the
        resumed run being compared.  ``speculations`` and
        ``speculation_replays`` are likewise mode markers — a serial
        baseline has none by construction — while
        ``refit_reused_trees`` *is* deterministic (the same seeded
        refits reuse the same trees in either mode) and stays in.
        """
        excluded = DURATION_FIELDS | {
            "resumed", "speculations", "speculation_replays"
        }
        return {
            k: v
            for k, v in self.to_dict().items()
            if k not in excluded
        }


def aggregate_summaries(summaries: Iterable[RunSummary]) -> Dict[str, Any]:
    """Roll a set of per-run summaries up into one experiment digest."""
    rows = list(summaries)
    agg: Dict[str, Any] = {
        "runs": len(rows),
        "num_measurements": sum(s.num_measurements for s in rows),
        "num_errors": sum(s.num_errors for s in rows),
        "batches": sum(s.batches for s in rows),
        "refits": sum(s.refits for s in rows),
        "improvements": sum(s.improvements for s in rows),
        "widenings": sum(s.widenings for s in rows),
        "retries": sum(s.retries for s in rows),
        "failures": sum(s.failures for s in rows),
        "cache_hits": sum(s.cache_hits for s in rows),
        "cache_misses": sum(s.cache_misses for s in rows),
        "exploit_steps": sum(s.exploit_steps for s in rows),
        "pruned_candidates": sum(s.pruned_candidates for s in rows),
        "speculations": sum(s.speculations for s in rows),
        "speculation_replays": sum(s.speculation_replays for s in rows),
        "refit_reused_trees": sum(s.refit_reused_trees for s in rows),
        "finish_phases": sum(1 for s in rows if s.finish_phase),
        "early_stopped": sum(1 for s in rows if s.early_stopped),
        "space_exhausted": sum(1 for s in rows if s.space_exhausted),
        "resumed": sum(1 for s in rows if s.resumed),
        "proposal_s": sum(s.proposal_s for s in rows),
        "measure_s": sum(s.measure_s for s in rows),
        "refit_s": sum(s.refit_s for s in rows),
        "pipeline_overlap_s": sum(s.pipeline_overlap_s for s in rows),
        "wall_s": sum(s.wall_s for s in rows),
        "best_gflops": max((s.best_gflops for s in rows), default=0.0),
    }
    by_arm: Dict[str, Dict[str, Any]] = {}
    for s in rows:
        arm = by_arm.setdefault(
            s.arm or "?",
            {"runs": 0, "best_gflops": 0.0, "wall_s": 0.0},
        )
        arm["runs"] += 1
        arm["best_gflops"] = max(arm["best_gflops"], s.best_gflops)
        arm["wall_s"] += s.wall_s
    agg["by_arm"] = {k: by_arm[k] for k in sorted(by_arm)}
    return agg


def write_summary_json(path: str, summary: Dict[str, Any]) -> None:
    """Atomically write a summary dict as pretty, sorted JSON."""
    atomic_write_text(
        path, json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )


def _flatten_cell_payload(payload: Any) -> List[RunSummary]:
    """One cell file may hold a single run, a list, or a task-keyed dict."""
    if isinstance(payload, list):
        out: List[RunSummary] = []
        for item in payload:
            out.extend(_flatten_cell_payload(item))
        return out
    if isinstance(payload, dict):
        if "tasks" in payload and isinstance(payload["tasks"], list):
            # table1-style cell: metadata wrapper around per-task runs
            return [
                RunSummary.from_dict(t)
                for t in payload["tasks"]
                if isinstance(t, dict)
            ]
        return [RunSummary.from_dict(payload)]
    return []


def aggregate_summary_dir(summary_dir: str) -> Dict[str, Any]:
    """Fold every ``cell-*.summary.json`` in a directory into one digest.

    Returns the aggregate and also writes it to ``summary.json`` in the
    same directory.  Cells are read in sorted filename order so the
    output is stable across re-runs and resumes.
    """
    runs: List[RunSummary] = []
    cell_files = sorted(
        f
        for f in os.listdir(summary_dir)
        if f.startswith("cell-") and f.endswith(".summary.json")
    )
    for name in cell_files:
        with open(os.path.join(summary_dir, name), encoding="utf-8") as fh:
            runs.extend(_flatten_cell_payload(json.load(fh)))
    aggregate = aggregate_summaries(runs)
    aggregate["cells"] = len(cell_files)
    write_summary_json(os.path.join(summary_dir, "summary.json"), aggregate)
    return aggregate
