"""Deterministic in-process metrics: counters, gauges, histograms.

The registry is intentionally tiny and dependency-free — a service
deployment would swap in a real client, but the *shape* of what gets
recorded (names, labels-as-name-suffixes, fixed histogram bucket
edges) is the contract this module pins down.  Fixed edges matter for
reproducibility: two runs of the same seed produce the same bucket
layout, so Prometheus snapshots diff cleanly even when the observed
latencies differ.

Everything here is JSON-serializable through ``state_dict`` /
``load_state_dict`` so metric state rides inside tuning checkpoints
and cell summaries, and :meth:`MetricsRegistry.merge` folds per-cell
registries into an experiment-level one.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: default latency bucket edges, in seconds (upper bounds, +Inf implied)
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Counter:
    """Monotonically increasing count."""

    metric_type = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def state_dict(self) -> dict:
        return {"value": self.value}

    def load_state_dict(self, state: dict) -> None:
        self.value = float(state["value"])

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Last-set value (may go up or down)."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)

    def state_dict(self) -> dict:
        return {"value": self.value}

    def load_state_dict(self, state: dict) -> None:
        self.value = float(state["value"])

    def merge(self, other: "Gauge") -> None:
        # last-writer-wins has no meaning across cells; keep the max,
        # which is the useful aggregate for high-water gauges
        self.value = max(self.value, other.value)


class Histogram:
    """Cumulative histogram over fixed, immutable bucket edges.

    ``edges`` are upper bounds; an implicit +Inf bucket catches the
    rest.  ``bucket_counts[i]`` is the number of observations ``<=
    edges[i]`` exclusive of earlier buckets (i.e. plain per-bucket
    counts; the Prometheus renderer cumulates them).
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        edges: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ):
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be sorted and non-empty")
        self.name = name
        self.help = help
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.bucket_counts: List[int] = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def state_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    def load_state_dict(self, state: dict) -> None:
        edges = tuple(float(e) for e in state["edges"])
        if edges != self.edges:
            raise ValueError(
                f"histogram {self.name}: checkpointed edges {edges} do not "
                f"match declared edges {self.edges}"
            )
        self.bucket_counts = [int(c) for c in state["bucket_counts"]]
        self.sum = float(state["sum"])
        self.count = int(state["count"])

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histogram {self.name}: bucket edges differ"
            )
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.sum += other.sum
        self.count += other.count


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-keyed collection of metrics with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name, factory, metric_type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.metric_type != metric_type:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{metric.metric_type}, not {metric_type}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        edges: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, edges), "histogram"
        )
        if tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> Dict[str, float]:
        """Flat name -> value mapping (histograms expose sum + count)."""
        out: Dict[str, float] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                out[f"{metric.name}_sum"] = metric.sum
                out[f"{metric.name}_count"] = float(metric.count)
            else:
                out[metric.name] = metric.value
        return out

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every registered metric."""
        return {
            name: {
                "type": metric.metric_type,
                "help": metric.help,
                "state": metric.state_dict(),
            }
            for name, metric in sorted(self._metrics.items())
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore metrics from :meth:`state_dict` output.

        Metrics absent from the registry are created; declared metrics
        keep their instances so references held by observers stay live.
        """
        for name, entry in state.items():
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._make(name, entry)
                self._metrics[name] = metric
            elif metric.metric_type != entry["type"]:
                raise ValueError(
                    f"metric {name!r} type changed across checkpoint: "
                    f"{metric.metric_type} != {entry['type']}"
                )
            metric.load_state_dict(entry["state"])

    @staticmethod
    def _make(name: str, entry: dict) -> Metric:
        kind = entry["type"]
        if kind == "counter":
            return Counter(name, entry.get("help", ""))
        if kind == "gauge":
            return Gauge(name, entry.get("help", ""))
        if kind == "histogram":
            edges = entry["state"]["edges"]
            return Histogram(name, entry.get("help", ""), edges)
        raise ValueError(f"unknown metric type {kind!r}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters/histograms add)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                mine = self._make(
                    name,
                    {
                        "type": metric.metric_type,
                        "help": metric.help,
                        "state": metric.state_dict(),
                    },
                )
                # _make copies state for histograms via edges only; start
                # from a zeroed metric then merge for uniform semantics
                if isinstance(mine, Histogram):
                    mine.bucket_counts = [0] * len(mine.bucket_counts)
                    mine.sum = 0.0
                    mine.count = 0
                else:
                    mine.value = 0.0
                self._metrics[name] = mine
            elif mine.metric_type != metric.metric_type:
                raise ValueError(
                    f"cannot merge metric {name!r}: type mismatch"
                )
            mine.merge(metric)  # type: ignore[arg-type]

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format, deterministically ordered."""
        lines: List[str] = []
        for metric in self:
            full = prefix + metric.name
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            lines.append(f"# TYPE {full} {metric.metric_type}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for edge, count in zip(metric.edges, metric.bucket_counts):
                    cumulative += count
                    lines.append(
                        f'{full}_bucket{{le="{_fmt(edge)}"}} {cumulative}'
                    )
                cumulative += metric.bucket_counts[-1]
                lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{full}_sum {_fmt(metric.sum)}")
                lines.append(f"{full}_count {metric.count}")
            else:
                lines.append(f"{full} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render numbers without a trailing ``.0`` on integral values."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
