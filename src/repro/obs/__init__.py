"""Observability over the tuning event stream.

``repro.obs`` turns the structured :class:`TuningEvent` stream (plus a
few deep hooks in the ensemble and the executors) into three exports:

* a **Prometheus-style metrics snapshot** (:class:`MetricsRegistry`),
* a **JSONL span trace** (:class:`TraceRecorder`), and
* a deterministic per-run digest (:class:`RunSummary`) that
  :class:`~repro.experiments.engine.ExperimentEngine` aggregates
  across cells.

Import discipline: this package never imports from :mod:`repro.core`
or :mod:`repro.hardware` — the observer consumes events by their
``kind`` strings and the deep layers call the :mod:`repro.obs.hooks`
bus, so there are no cycles.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.hooks import (
    notify_cache,
    notify_measure,
    notify_refit,
    measure_hooks_active,
    refit_hooks_active,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import RunObservation, TuningObserver
from repro.obs.summary import (
    DURATION_FIELDS,
    RunSummary,
    aggregate_summaries,
    aggregate_summary_dir,
    write_summary_json,
)
from repro.obs.trace import (
    TraceRecorder,
    WALL_CLOCK_FIELDS,
    read_jsonl,
    skeletons_of,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DURATION_FIELDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunObservation",
    "RunSummary",
    "TraceRecorder",
    "TuningObserver",
    "WALL_CLOCK_FIELDS",
    "aggregate_summaries",
    "aggregate_summary_dir",
    "measure_hooks_active",
    "notify_cache",
    "notify_measure",
    "notify_refit",
    "read_jsonl",
    "refit_hooks_active",
    "skeletons_of",
    "write_summary_json",
]
