"""Thread-local observability hook bus.

Deep subsystems (the bootstrap ensemble's refit, the measurement
executors, the measurement cache) have timing and counters worth
exporting, but they sit far below the tuning loop and must not import
the observer — and the observer must not import them.  This module is
the seam: it holds lists of registered hook callables and a
``notify_*`` function per instrumentation point.  Call sites pay one
truthiness check when nothing is registered, so observability off is
effectively free on the hot paths.

:class:`~repro.obs.observer.TuningObserver` registers its hooks in
``on_tune_begin`` and removes them in ``on_tune_end``; nothing else in
the repository mutates this registry.  The registry is **thread-local**
(and therefore also process-local): a tuning run registers and fires
its hooks on the thread that drives it, so concurrent runs — parallel
experiment cells in separate processes, or fleet workers tuning
different tasks on threads of one process — each observe exactly their
own run, which is the per-run scoping the summaries want and what
keeps fleet-mode summaries bit-identical to serial ones.

This module intentionally imports nothing from :mod:`repro` so that any
layer may depend on it without cycles.
"""

from __future__ import annotations

import threading
from typing import Callable, List

#: ``(rows, duration_s, kind)`` — a surrogate-model refit completed
RefitHook = Callable[[int, float, str], None]
#: ``(backend, n_configs, duration_s)`` — an executor deployed a batch
MeasureHook = Callable[[str, int, float], None]
#: ``(hits, misses)`` — a caching executor resolved a batch
CacheHook = Callable[[int, int], None]

_LOCAL = threading.local()


def _hooks(name: str) -> List[Callable]:
    """This thread's hook list for one instrumentation point."""
    hooks = getattr(_LOCAL, name, None)
    if hooks is None:
        hooks = []
        setattr(_LOCAL, name, hooks)
    return hooks


def add_refit_hook(hook: RefitHook) -> None:
    """Subscribe to surrogate-model refit completions."""
    _hooks("refit").append(hook)


def remove_refit_hook(hook: RefitHook) -> None:
    """Unsubscribe a refit hook (no-op when absent)."""
    hooks = _hooks("refit")
    if hook in hooks:
        hooks.remove(hook)


def notify_refit(rows: int, duration_s: float, kind: str = "ensemble") -> None:
    """Report one completed refit of ``rows`` training rows."""
    for hook in tuple(_hooks("refit")):
        hook(rows, duration_s, kind)


def refit_hooks_active() -> bool:
    """True when at least one refit hook is registered on this thread.

    Lets instrumented call sites skip even the ``perf_counter`` pair
    when nobody is listening.
    """
    return bool(_hooks("refit"))


def add_measure_hook(hook: MeasureHook) -> None:
    """Subscribe to executor batch deployments."""
    _hooks("measure").append(hook)


def remove_measure_hook(hook: MeasureHook) -> None:
    """Unsubscribe a measure hook (no-op when absent)."""
    hooks = _hooks("measure")
    if hook in hooks:
        hooks.remove(hook)


def notify_measure(backend: str, n_configs: int, duration_s: float) -> None:
    """Report one deployed batch from executor ``backend``."""
    for hook in tuple(_hooks("measure")):
        hook(backend, n_configs, duration_s)


def measure_hooks_active() -> bool:
    """True when at least one measure hook is registered on this thread."""
    return bool(_hooks("measure"))


def add_cache_hook(hook: CacheHook) -> None:
    """Subscribe to measurement-cache batch resolutions."""
    _hooks("cache").append(hook)


def remove_cache_hook(hook: CacheHook) -> None:
    """Unsubscribe a cache hook (no-op when absent)."""
    hooks = _hooks("cache")
    if hook in hooks:
        hooks.remove(hook)


def notify_cache(hits: int, misses: int) -> None:
    """Report one cache-resolved batch (hit/miss split)."""
    for hook in tuple(_hooks("cache")):
        hook(hits, misses)
