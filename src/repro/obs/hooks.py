"""Thread-local observability hook bus.

Deep subsystems (the bootstrap ensemble's refit, the measurement
executors, the measurement cache) have timing and counters worth
exporting, but they sit far below the tuning loop and must not import
the observer — and the observer must not import them.  This module is
the seam: it holds lists of registered hook callables and a
``notify_*`` function per instrumentation point.  Call sites pay one
truthiness check when nothing is registered, so observability off is
effectively free on the hot paths.

:class:`~repro.obs.observer.TuningObserver` registers its hooks in
``on_tune_begin`` and removes them in ``on_tune_end``; nothing else in
the repository mutates this registry.  The registry is **thread-local**
(and therefore also process-local): a tuning run registers and fires
its hooks on the thread that drives it, so concurrent runs — parallel
experiment cells in separate processes, or fleet workers tuning
different tasks on threads of one process — each observe exactly their
own run, which is the per-run scoping the summaries want and what
keeps fleet-mode summaries bit-identical to serial ones.

This module intentionally imports nothing from :mod:`repro` so that any
layer may depend on it without cycles.
"""

from __future__ import annotations

import threading
from typing import Callable, List

#: ``(rows, duration_s, kind)`` — a surrogate-model refit completed
RefitHook = Callable[[int, float, str], None]
#: ``(backend, n_configs, duration_s)`` — an executor deployed a batch
MeasureHook = Callable[[str, int, float], None]
#: ``(hits, misses)`` — a caching executor resolved a batch
CacheHook = Callable[[int, int], None]

#: ``(reused_trees,)`` — an incremental refit reused previously-grown trees
RefitReuseHook = Callable[[int], None]

_LOCAL = threading.local()


def _hooks(name: str) -> List[Callable]:
    """This thread's hook list for one instrumentation point."""
    hooks = getattr(_LOCAL, name, None)
    if hooks is None:
        hooks = []
        setattr(_LOCAL, name, hooks)
    return hooks


def _capture_buffer():
    """This thread's active capture buffer, or ``None``."""
    return getattr(_LOCAL, "capture", None)


def capture_begin() -> list:
    """Start buffering this thread's notifications instead of delivering.

    Used by the pipelined tuner's speculation step: a speculative
    proposal runs its refits on a worker thread, and the notifications
    they would fire must be (a) recorded even though no hooks are
    registered on that thread, and (b) delivered exactly once — on the
    driving thread if the speculation is adopted, never if it is
    replayed.  Returns the buffer to pass to :func:`capture_end` /
    :func:`replay_captured`.  Nested captures are not supported.
    """
    if _capture_buffer() is not None:
        raise RuntimeError("hook capture is already active on this thread")
    buffer: list = []
    _LOCAL.capture = buffer
    return buffer


def capture_end(buffer: list) -> None:
    """Stop capturing on this thread (pairs with :func:`capture_begin`)."""
    if _capture_buffer() is not buffer:
        raise RuntimeError("mismatched hook capture_end")
    _LOCAL.capture = None


def replay_captured(buffer: list) -> None:
    """Deliver captured notifications to this thread's hooks, in order."""
    for name, args in buffer:
        for hook in tuple(_hooks(name)):
            hook(*args)


def add_refit_hook(hook: RefitHook) -> None:
    """Subscribe to surrogate-model refit completions."""
    _hooks("refit").append(hook)


def remove_refit_hook(hook: RefitHook) -> None:
    """Unsubscribe a refit hook (no-op when absent)."""
    hooks = _hooks("refit")
    if hook in hooks:
        hooks.remove(hook)


def notify_refit(rows: int, duration_s: float, kind: str = "ensemble") -> None:
    """Report one completed refit of ``rows`` training rows."""
    buffer = _capture_buffer()
    if buffer is not None:
        buffer.append(("refit", (rows, duration_s, kind)))
        return
    for hook in tuple(_hooks("refit")):
        hook(rows, duration_s, kind)


def refit_hooks_active() -> bool:
    """True when at least one refit hook is registered on this thread.

    Lets instrumented call sites skip even the ``perf_counter`` pair
    when nobody is listening.  Also true while a capture is active, so
    speculative proposals record the same notifications an observed
    serial proposal would fire.
    """
    return bool(_hooks("refit")) or _capture_buffer() is not None


def add_measure_hook(hook: MeasureHook) -> None:
    """Subscribe to executor batch deployments."""
    _hooks("measure").append(hook)


def remove_measure_hook(hook: MeasureHook) -> None:
    """Unsubscribe a measure hook (no-op when absent)."""
    hooks = _hooks("measure")
    if hook in hooks:
        hooks.remove(hook)


def notify_measure(backend: str, n_configs: int, duration_s: float) -> None:
    """Report one deployed batch from executor ``backend``."""
    buffer = _capture_buffer()
    if buffer is not None:
        buffer.append(("measure", (backend, n_configs, duration_s)))
        return
    for hook in tuple(_hooks("measure")):
        hook(backend, n_configs, duration_s)


def measure_hooks_active() -> bool:
    """True when at least one measure hook is registered on this thread."""
    return bool(_hooks("measure")) or _capture_buffer() is not None


def add_cache_hook(hook: CacheHook) -> None:
    """Subscribe to measurement-cache batch resolutions."""
    _hooks("cache").append(hook)


def remove_cache_hook(hook: CacheHook) -> None:
    """Unsubscribe a cache hook (no-op when absent)."""
    hooks = _hooks("cache")
    if hook in hooks:
        hooks.remove(hook)


def notify_cache(hits: int, misses: int) -> None:
    """Report one cache-resolved batch (hit/miss split)."""
    buffer = _capture_buffer()
    if buffer is not None:
        buffer.append(("cache", (hits, misses)))
        return
    for hook in tuple(_hooks("cache")):
        hook(hits, misses)


def add_refit_reuse_hook(hook: RefitReuseHook) -> None:
    """Subscribe to incremental-refit tree reuse reports."""
    _hooks("refit_reuse").append(hook)


def remove_refit_reuse_hook(hook: RefitReuseHook) -> None:
    """Unsubscribe a refit-reuse hook (no-op when absent)."""
    hooks = _hooks("refit_reuse")
    if hook in hooks:
        hooks.remove(hook)


def notify_refit_reuse(reused_trees: int) -> None:
    """Report trees carried over by one warm-started (incremental) refit."""
    buffer = _capture_buffer()
    if buffer is not None:
        buffer.append(("refit_reuse", (reused_trees,)))
        return
    for hook in tuple(_hooks("refit_reuse")):
        hook(reused_trees)


def refit_reuse_hooks_active() -> bool:
    """True when a refit-reuse hook is registered (or capture is on)."""
    return bool(_hooks("refit_reuse")) or _capture_buffer() is not None
