"""Span-tree trace recording for tuning runs.

A *span* is one timed region of a run — the whole ``tune`` call, one
``step`` of the loop, the ``propose``/``measure`` halves of a step, or
an ensemble ``refit``.  Spans nest via ``parent_id`` and carry a small
``attrs`` dict of deterministic facts (config counts, GFLOPS, fault
kinds).

Determinism contract: span ids are sequential integers in creation
order, and every field *except* ``start_s``/``duration_s`` is a pure
function of the tuning run's seeded decisions.  That is what makes the
golden-trace fixtures and the crash/resume bit-identity tests possible:
:meth:`TraceRecorder.span_skeletons` drops the two wall-clock fields,
and the remainder must match exactly between a resumed and an
uninterrupted run.

State rides through checkpoints via ``state_dict``/``load_state_dict``;
the elapsed-time origin is re-anchored on load so post-resume
``start_s`` values continue from the checkpointed offset instead of
resetting to zero.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.utils.io import atomic_write_text

#: span fields excluded from determinism comparisons (wall-clock)
WALL_CLOCK_FIELDS = ("start_s", "duration_s")


class TraceRecorder:
    """Append-only span store with sequential ids and JSONL export."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        self._next_id = 0
        self._t0 = time.perf_counter()

    def now(self) -> float:
        """Seconds since the recorder's (possibly resumed) origin."""
        return time.perf_counter() - self._t0

    def open_span(
        self,
        name: str,
        step: int,
        parent_id: Optional[int] = None,
        start_s: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Start a span and return its id; close with :meth:`close_span`.

        A span left unclosed (e.g. the run crashed mid-step) keeps
        ``duration_s = None``, which is itself a deterministic fact.
        """
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(
            {
                "span_id": span_id,
                "parent_id": parent_id,
                "name": name,
                "step": step,
                "start_s": self.now() if start_s is None else start_s,
                "duration_s": None,
                "attrs": dict(attrs) if attrs else {},
            }
        )
        return span_id

    def close_span(
        self,
        span_id: int,
        attrs: Optional[Dict[str, Any]] = None,
        duration_s: Optional[float] = None,
    ) -> None:
        """Finish a span, optionally attaching attrs / an explicit duration."""
        span = self._find(span_id)
        if duration_s is None:
            duration_s = self.now() - span["start_s"]
        span["duration_s"] = duration_s
        if attrs:
            span["attrs"].update(attrs)

    def record(
        self,
        name: str,
        step: int,
        parent_id: Optional[int] = None,
        duration_s: float = 0.0,
        start_s: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Open and immediately close a span (known-duration regions)."""
        span_id = self.open_span(
            name, step, parent_id=parent_id, start_s=start_s, attrs=attrs
        )
        self.close_span(span_id, duration_s=duration_s)
        return span_id

    def annotate(self, span_id: int, attrs: Dict[str, Any]) -> None:
        """Merge attrs into an existing (open or closed) span."""
        self._find(span_id)["attrs"].update(attrs)

    def _find(self, span_id: int) -> Dict[str, Any]:
        # ids are sequential creation indices, so lookup is O(1)
        if 0 <= span_id < len(self.spans):
            span = self.spans[span_id]
            if span["span_id"] == span_id:
                return span
        raise KeyError(f"unknown span id {span_id}")

    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s["name"] == name]

    def span_skeletons(self) -> List[Dict[str, Any]]:
        """Spans with wall-clock fields dropped — the deterministic part."""
        out = []
        for span in self.spans:
            skeleton = {
                k: v for k, v in span.items() if k not in WALL_CLOCK_FIELDS
            }
            # an unclosed span is structural, not a timing detail
            skeleton["closed"] = span["duration_s"] is not None
            out.append(skeleton)
        return out

    def write_jsonl(self, path: str) -> None:
        """Write one sorted-keys JSON object per span, atomically."""
        lines = [json.dumps(span, sort_keys=True) for span in self.spans]
        atomic_write_text(path, "\n".join(lines) + "\n" if lines else "")

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (spans + id counter + clock offset)."""
        return {
            "spans": [dict(s, attrs=dict(s["attrs"])) for s in self.spans],
            "next_id": self._next_id,
            "elapsed_s": self.now(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore spans and re-anchor the clock at the saved offset."""
        self.spans = [
            dict(s, attrs=dict(s.get("attrs", {}))) for s in state["spans"]
        ]
        self._next_id = int(state["next_id"])
        self._t0 = time.perf_counter() - float(state.get("elapsed_s", 0.0))


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of span dicts."""
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def skeletons_of(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Drop wall-clock fields from already-exported span dicts."""
    out = []
    for span in spans:
        skeleton = {
            k: v for k, v in span.items() if k not in WALL_CLOCK_FIELDS
        }
        skeleton["closed"] = span.get("duration_s") is not None
        out.append(skeleton)
    return out
