"""Cross-task transfer: the content-addressed tuning-log database.

Every tuning run in the model zoo repeatedly solves tasks that an
earlier run — or an earlier task of the *same* run — already solved,
exactly or nearly.  This package gives those measurements a persistent,
content-addressed home:

* :class:`TaskSignature` — the canonical identity of a tuning task:
  template name, workload shape tuple, knob-space content hash, device
  class.  Signatures are pure functions of the task definition (SHA-256
  over canonical JSON), so two processes extracting the same model on
  the same device class produce byte-identical keys.
* :class:`TuningLogDB` — append-only JSONL segments per signature plus
  a versioned index, written atomically via :mod:`repro.utils.io`.
  Supports exact-hit lookup (serve a previously tuned task without a
  single measurement) and top-k-similar queries (same template and
  feature dimension, nearest shapes) for warm starts.
* :class:`WarmStartPlan` / :func:`build_warm_start` — turn prior
  records into a tuner warm start: top-k prior configurations injected
  into the initialization set (HW-aware-init style) plus a discounted
  :class:`~repro.learning.transfer.TransferHistory` that pretrains the
  cost models.

Everything here is off by default: without an explicit ``tlog=`` /
``warm_start=`` opt-in, tuning behaves bit-identically to a build
without this package (the goldens contract, see ``docs/TRANSFER.md``).
"""

from repro.tlog.db import TLOG_VERSION, TlogRecord, TuningLogDB
from repro.tlog.signature import TaskSignature, shape_distance
from repro.tlog.warm import WarmStartPlan, build_warm_start

__all__ = [
    "TLOG_VERSION",
    "TaskSignature",
    "TlogRecord",
    "TuningLogDB",
    "WarmStartPlan",
    "build_warm_start",
    "shape_distance",
]
