"""The tuning-log database: versioned index + per-signature segments.

Layout under the database root::

    <root>/index.json          versioned index (atomic rewrite)
    <root>/segments/<key>.jsonl  append-only records of one signature

The index maps each :class:`~repro.tlog.signature.TaskSignature` key to
its signature dict, segment file, record count, best score, and the set
of run keys that already contributed (so a resumed compile never
double-appends).  Segment files are JSON lines appended in measurement
order; like :class:`~repro.pipeline.records.RecordStore`, loading drops
a torn *final* line with a warning (crash mid-append) and raises
:class:`ValueError` naming the line for anything else malformed.

The index carries a schema version; :meth:`TuningLogDB.load` rejects a
future version with a clear error instead of misreading it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.tlog.signature import TaskSignature, shape_distance
from repro.utils.io import atomic_write_text
from repro.utils.log import get_logger

logger = get_logger("tlog.db")

#: bump when the index/segment layout changes incompatibly
TLOG_VERSION = 1


class TlogVersionError(ValueError):
    """The on-disk database was written by an incompatible version."""


@dataclass(frozen=True)
class TlogRecord:
    """One logged measurement inside a segment.

    ``knob_indices`` (the mixed-radix digits of ``config_index``) are
    stored explicitly so a record can be projected into a *similar*
    task's space — per-knob digit clamping — without reconstructing the
    source space.
    """

    config_index: int
    knob_indices: Tuple[int, ...]
    gflops: float
    tuner: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and self.gflops > 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "config_index": self.config_index,
                "knobs": list(self.knob_indices),
                "gflops": self.gflops,
                "tuner": self.tuner,
                "error": self.error,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "TlogRecord":
        data = json.loads(line)  # JSONDecodeError is a ValueError
        if not isinstance(data, dict):
            raise ValueError(f"segment line is not a JSON object: {line!r}")
        try:
            return TlogRecord(
                config_index=int(data["config_index"]),
                knob_indices=tuple(int(d) for d in data["knobs"]),
                gflops=float(data["gflops"]),
                tuner=str(data.get("tuner", "")),
                error=str(data.get("error", "")),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed segment fields: {exc}") from exc


@dataclass
class _Segment:
    """Index entry for one signature's record file."""

    signature: TaskSignature
    filename: str
    count: int = 0
    best_gflops: float = 0.0
    #: run keys that already contributed (idempotent re-contribution)
    runs: Optional[set] = None

    def __post_init__(self) -> None:
        if self.runs is None:
            self.runs = set()


class TuningLogDB:
    """Content-addressed store of tuning measurements across runs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._segments: Dict[str, _Segment] = {}
        if self._index_path.exists():
            self._load_index()

    # ------------------------------------------------------------------
    # paths

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def _segment_dir(self) -> Path:
        return self.root / "segments"

    def _segment_path(self, segment: _Segment) -> Path:
        return self._segment_dir / segment.filename

    # ------------------------------------------------------------------
    # index persistence

    @classmethod
    def load(cls, root: Union[str, Path]) -> "TuningLogDB":
        """Open an existing database; :class:`TlogVersionError` if the
        on-disk index was written by an unknown schema version."""
        db = cls(root)
        if not db._index_path.exists():
            raise FileNotFoundError(
                f"no tuning-log index at {db._index_path}"
            )
        return db

    def _load_index(self) -> None:
        raw = json.loads(self._index_path.read_text(encoding="utf-8"))
        if not isinstance(raw, dict):
            raise ValueError(f"{self._index_path}: index is not an object")
        version = raw.get("version")
        if version != TLOG_VERSION:
            raise TlogVersionError(
                f"{self._index_path}: tuning-log version {version!r} is "
                f"not readable by this build (expected {TLOG_VERSION}); "
                "re-create the database or upgrade the library"
            )
        self._segments = {}
        for key, entry in raw.get("segments", {}).items():
            try:
                segment = _Segment(
                    signature=TaskSignature.from_dict(entry["signature"]),
                    filename=str(entry["file"]),
                    count=int(entry.get("count", 0)),
                    best_gflops=float(entry.get("best_gflops", 0.0)),
                    runs=set(entry.get("runs", [])),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{self._index_path}: malformed segment entry "
                    f"{key!r}: {exc}"
                ) from exc
            self._segments[key] = segment

    def flush(self) -> None:
        """Atomically rewrite the index from in-memory state."""
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "version": TLOG_VERSION,
            "segments": {
                key: {
                    "signature": seg.signature.to_dict(),
                    "file": seg.filename,
                    "count": seg.count,
                    "best_gflops": seg.best_gflops,
                    "runs": sorted(seg.runs or ()),
                }
                for key, seg in sorted(self._segments.items())
            },
        }
        atomic_write_text(
            self._index_path,
            json.dumps(document, indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------
    # writing

    def record_task(
        self,
        signature: TaskSignature,
        records: Sequence[TlogRecord],
        run_key: Optional[str] = None,
    ) -> int:
        """Append one finished task's measurements under ``signature``.

        ``run_key`` (when given) makes the contribution idempotent: a
        resumed or re-run compile that already contributed under the
        same run key is skipped, so crash/resume cycles never duplicate
        segment lines.  Returns the number of records appended.
        """
        if not records:
            return 0
        key = signature.key
        segment = self._segments.get(key)
        if segment is None:
            segment = _Segment(
                signature=signature, filename=f"{key}.jsonl"
            )
            self._segments[key] = segment
        if run_key is not None:
            if run_key in (segment.runs or ()):
                return 0
            segment.runs.add(run_key)
        self._segment_dir.mkdir(parents=True, exist_ok=True)
        with self._segment_path(segment).open(
            "a", encoding="utf-8"
        ) as fh:
            for record in records:
                fh.write(record.to_json())
                fh.write("\n")
        segment.count += len(records)
        best = max(
            (r.gflops for r in records if r.ok), default=0.0
        )
        segment.best_gflops = max(segment.best_gflops, best)
        self.flush()
        return len(records)

    # ------------------------------------------------------------------
    # reading

    def __len__(self) -> int:
        return len(self._segments)

    def signatures(self) -> List[TaskSignature]:
        """All signatures with at least one stored record."""
        return [
            seg.signature
            for _, seg in sorted(self._segments.items())
            if seg.count > 0
        ]

    def lookup_exact(
        self, signature: TaskSignature
    ) -> Optional[List[TlogRecord]]:
        """All records stored under exactly ``signature`` (or None)."""
        segment = self._segments.get(signature.key)
        if segment is None or segment.count == 0:
            return None
        records = self._read_segment(segment)
        return records or None

    def best_exact(self, signature: TaskSignature) -> Optional[TlogRecord]:
        """The best valid record under exactly ``signature``."""
        records = self.lookup_exact(signature)
        if not records:
            return None
        valid = [r for r in records if r.ok]
        if not valid:
            return None
        return max(valid, key=lambda r: r.gflops)

    def top_k_similar(
        self,
        signature: TaskSignature,
        k: int = 16,
        include_exact: bool = True,
        same_device: bool = False,
        cross_device: bool = False,
    ) -> List[Tuple[TaskSignature, List[TlogRecord]]]:
        """Segments transferable to ``signature``, nearest shapes first.

        "Similar" means same operator kind, template, and feature
        dimension (see :meth:`TaskSignature.transferable_to`); ties on
        shape distance break by key so the order is deterministic.  At
        most ``k`` segments are returned, each with its records.

        ``same_device`` keeps only segments measured on the
        signature's own device class; ``cross_device`` keeps only
        segments measured on *other* classes (the cross-device transfer
        scenario).  The two filters are mutually exclusive.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if same_device and cross_device:
            raise ValueError(
                "same_device and cross_device are mutually exclusive"
            )
        scored = []
        for key, segment in self._segments.items():
            if segment.count == 0:
                continue
            other = segment.signature
            if not other.transferable_to(signature):
                continue
            if not include_exact and key == signature.key:
                continue
            if same_device and other.device_class != signature.device_class:
                continue
            if cross_device and other.device_class == signature.device_class:
                continue
            scored.append((shape_distance(other, signature), key, segment))
        scored.sort(key=lambda item: (item[0], item[1]))
        out = []
        for _, _, segment in scored[:k]:
            records = self._read_segment(segment)
            if records:
                out.append((segment.signature, records))
        return out

    def _read_segment(self, segment: _Segment) -> List[TlogRecord]:
        path = self._segment_path(segment)
        if not path.exists():
            logger.warning("tlog segment missing: %s", path)
            return []
        with path.open("r", encoding="utf-8") as fh:
            lines = [
                (number, line.strip())
                for number, line in enumerate(fh, start=1)
            ]
        lines = [(number, line) for number, line in lines if line]
        records: List[TlogRecord] = []
        for position, (number, line) in enumerate(lines):
            is_final = position == len(lines) - 1
            try:
                records.append(TlogRecord.from_json(line))
            except json.JSONDecodeError:
                if is_final:
                    logger.warning(
                        "%s:%d: dropping torn final tlog line "
                        "(crash mid-append?)",
                        path,
                        number,
                    )
                    break
                raise ValueError(f"{path}:{number}: malformed tlog line")
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: {exc}") from exc
        return records

    def __repr__(self) -> str:
        records = sum(seg.count for seg in self._segments.values())
        return (
            f"TuningLogDB({str(self.root)!r}, "
            f"{len(self._segments)} signatures, {records} records)"
        )
