"""Turn prior tuning-log records into a tuner warm start.

Two transfer mechanisms, both drawn from the related work (PAPERS.md):

* **Configuration seeding** (HW-aware init): the top-k configurations
  of the nearest prior tasks are projected into the new task's space
  and injected at the head of the initialization batch.  Projection
  uses the stored per-knob digits — each digit is clamped to the target
  knob's candidate range and re-encoded — so a tiling that worked for a
  sibling shape lands on the nearest expressible tiling here.
* **Cost-model pretraining** (learning to optimize tensor programs):
  prior (features, normalized score) pairs populate a
  :class:`~repro.learning.transfer.TransferHistory` with a discounted
  history weight, so the GBT / bootstrap ensembles start from an
  informed prior instead of a cold fit.  Features are computed in the
  *target* space from the projected digits — an approximation that is
  exact for exact-signature hits and degrades gracefully with shape
  distance.

Everything is deterministic: given the same database state, signature,
and parameters, the plan (and therefore the whole warm-started run) is
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.learning.transfer import TransferHistory
from repro.space.space import ConfigSpace
from repro.tlog.db import TlogRecord, TuningLogDB
from repro.tlog.signature import TaskSignature


@dataclass(frozen=True)
class WarmStartPlan:
    """What a tuner needs to start warm: seed configs + model history.

    Plain picklable data, so it checkpoints with the rest of the tuner
    state and a crash/resume cycle replays the identical warm start.
    """

    #: config indices (valid in the target space), best sources first
    configs: Tuple[int, ...]
    #: discounted prior measurements for cost-model pretraining
    history: Optional[TransferHistory] = None
    #: ``"exact"`` when the top source segment is an exact hit
    source: str = "similar"
    #: how many prior task segments contributed
    num_sources: int = 0
    #: how many of those segments were measured on another device class
    cross_sources: int = 0

    @property
    def history_samples(self) -> int:
        return 0 if self.history is None else self.history.num_samples


def project_records(
    records: List[TlogRecord], space: ConfigSpace
) -> Tuple[np.ndarray, np.ndarray]:
    """Project records into ``space``: (config indices, scores).

    Each record's stored knob digits are clamped per knob to the target
    candidate range and re-encoded; records whose digit count does not
    match the target knob count are dropped (a template mismatch that
    :meth:`TaskSignature.transferable_to` should already exclude).
    """
    radix = np.asarray(space.knob_sizes, dtype=np.int64)
    digits = []
    scores = []
    for record in records:
        if not record.ok or len(record.knob_indices) != len(radix):
            continue
        digits.append(record.knob_indices)
        scores.append(record.gflops)
    if not digits:
        return np.empty(0, dtype=np.int64), np.empty(0)
    clamped = np.minimum(
        np.asarray(digits, dtype=np.int64), radix[None, :] - 1
    )
    np.maximum(clamped, 0, out=clamped)
    return space.encode_batch(clamped), np.asarray(scores)


def build_warm_start(
    db: TuningLogDB,
    signature: TaskSignature,
    space: ConfigSpace,
    k: int = 16,
    history_weight: float = 0.25,
    max_sources: int = 4,
    max_history: int = 512,
    device: str = "any",
) -> Optional[WarmStartPlan]:
    """Assemble a :class:`WarmStartPlan` for ``signature`` from ``db``.

    ``k`` bounds the seeded configs; ``max_sources`` bounds how many
    prior task segments contribute (nearest shapes first, the exact
    signature — if present — always first).  ``device`` restricts the
    eligible sources: ``"any"`` (default), ``"same"`` (only the
    signature's device class), or ``"cross"`` (only other classes — the
    cross-device transfer scenario).  Returns ``None`` when the
    database holds nothing transferable, so callers fall back to a cold
    start without special-casing.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if device not in ("any", "same", "cross"):
        raise ValueError(
            f"device must be 'any', 'same', or 'cross', got {device!r}"
        )
    segments = db.top_k_similar(
        signature, k=max_sources, include_exact=True,
        same_device=device == "same",
        cross_device=device == "cross",
    )
    if not segments:
        return None
    history = TransferHistory(
        history_weight=history_weight, max_per_task=max_history
    )
    seed_configs: List[int] = []
    seen = set()
    source = "similar"
    for order, (src_signature, records) in enumerate(segments):
        indices, scores = project_records(records, space)
        if not len(indices):
            continue
        if order == 0 and src_signature.key == signature.key:
            source = "exact"
        history.add_task(
            src_signature.key,
            space.feature_matrix(indices),
            scores,
        )
        # best projected configs of this source, deduplicated globally;
        # nearest sources fill the k slots first
        ranked = np.argsort(-scores, kind="stable")
        for i in ranked:
            if len(seed_configs) >= k:
                break
            idx = int(indices[i])
            if idx in seen:
                continue
            seen.add(idx)
            seed_configs.append(idx)
    if not seed_configs:
        return None
    cross = sum(
        1 for src_signature, _ in segments
        if src_signature.device_class != signature.device_class
    )
    return WarmStartPlan(
        configs=tuple(seed_configs[:k]),
        history=history if len(history) else None,
        source=source,
        num_sources=len(segments),
        cross_sources=cross,
    )
