"""Canonical task identity for the tuning-log database.

A :class:`TaskSignature` names a tuning task by *what it is*, not by
which Python objects happen to represent it: the operator kind and
schedule template, the workload's shape tuple, the SHA-256 content hash
of its knob space, and the normalized device class.  Two processes that
extract the same model for the same device class derive byte-identical
signatures, which is what lets a tuning log written yesterday serve an
exact cache hit today.

Similarity between signatures — used for warm starts when no exact hit
exists — means: same operator kind, same template, same knob-space
*feature dimension* (so cost-model features transfer), ranked by
:func:`shape_distance` in log2 space (a 2x-larger convolution is one
unit away in every doubled dimension, matching how split-knob features
embed factors).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hardware.device import GpuDevice, normalize_device_name
from repro.nn.workloads import Workload
from repro.space.space import ConfigSpace


def _workload_shape(workload: Workload) -> Tuple[Tuple[str, int], ...]:
    """The workload's integer fields as a canonically ordered tuple."""
    data = workload.to_dict()
    return tuple(
        (str(key), int(data[key])) for key in sorted(data) if key != "kind"
    )


@dataclass(frozen=True)
class TaskSignature:
    """Content-addressed identity of one tuning task."""

    #: operator kind (``"conv2d"``, ``"depthwise_conv2d"``, ``"dense"``)
    kind: str
    #: schedule template family (``"direct"`` or ``"winograd"``)
    template: str
    #: canonically ordered (field, value) pairs of the workload shape
    shape: Tuple[Tuple[str, int], ...]
    #: SHA-256 content hash of the knob space definitions
    space_hash: str
    #: normalized device class (e.g. ``"gtx1080ti"``)
    device_class: str
    #: knob-space feature width — the transferability gate
    feature_dim: int

    @classmethod
    def of(
        cls,
        workload: Workload,
        space: ConfigSpace,
        device: GpuDevice,
        template: str = "direct",
    ) -> "TaskSignature":
        return cls(
            kind=workload.kind,
            template=template,
            shape=_workload_shape(workload),
            space_hash=space.content_hash(),
            device_class=normalize_device_name(device.name),
            feature_dim=space.feature_dim,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "template": self.template,
            "shape": [[k, v] for k, v in self.shape],
            "space_hash": self.space_hash,
            "device_class": self.device_class,
            "feature_dim": self.feature_dim,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskSignature":
        try:
            return cls(
                kind=str(data["kind"]),
                template=str(data["template"]),
                shape=tuple(
                    (str(k), int(v)) for k, v in data["shape"]  # type: ignore[union-attr]
                ),
                space_hash=str(data["space_hash"]),
                device_class=str(data["device_class"]),
                feature_dim=int(data["feature_dim"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed task signature: {exc}") from exc

    @property
    def key(self) -> str:
        """Stable content key: readable prefix + SHA-256 digest prefix.

        Used as the segment filename stem and the index key, so it must
        stay filesystem-safe and collision-resistant.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        return f"{self.kind}-{self.template}-{self.device_class}-{digest}"

    def transferable_to(self, other: "TaskSignature") -> bool:
        """Whether records under ``self`` can warm-start ``other``."""
        return (
            self.kind == other.kind
            and self.template == other.template
            and self.feature_dim == other.feature_dim
        )


def shape_distance(a: TaskSignature, b: TaskSignature) -> float:
    """Log2-space Euclidean distance between two workload shapes.

    Signatures with different field sets (different operator kinds)
    are infinitely far apart.  A workload twice as large in one
    dimension is exactly 1.0 away.
    """
    da, db = dict(a.shape), dict(b.shape)
    if set(da) != set(db):
        return math.inf
    total = 0.0
    for key, va in da.items():
        vb = db[key]
        diff = math.log2(1.0 + abs(va)) - math.log2(1.0 + abs(vb))
        total += diff * diff
    return math.sqrt(total)
