"""Cross-module integration tests: the paper's claims at smoke scale.

These tests exercise the full stack (models -> fusion -> tasks -> spaces
-> simulated GPU -> tuners -> deployment) and assert the *directional*
results the paper reports.  Budgets are small, so thresholds are loose;
the benchmarks run the full-shape versions.
"""

import numpy as np
import pytest

from repro.core import make_tuner
from repro.experiments.settings import ExperimentSettings
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import Conv2DWorkload
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler
from repro.pipeline.tasks import extract_tasks


@pytest.fixture(scope="module")
def mobilenet_task():
    """The first MobileNet-v1 conv task — the paper's Fig. 4(a) subject."""
    spec = extract_tasks(build_model("mobilenet-v1"))[0]
    return spec.to_simulated(seed=2021)


@pytest.mark.slow
class TestSearchOrdering:
    """Model-guided search must beat random; the advanced framework must
    be competitive with the baseline (paper Sec. V-B)."""

    BUDGET = 192

    @pytest.fixture(scope="class")
    def bests(self, request):
        spec = extract_tasks(build_model("mobilenet-v1"))[0]
        task = spec.to_simulated(seed=2021)
        out = {}
        for arm in ("random", "autotvm", "bted", "bted+bao"):
            scores = []
            for trial in range(2):
                tuner = make_tuner(arm, task, seed=100 + trial)
                scores.append(
                    tuner.tune(
                        n_trial=self.BUDGET, early_stopping=None
                    ).best_gflops
                )
            out[arm] = float(np.mean(scores))
        return out

    def test_autotvm_beats_random(self, bests):
        assert bests["autotvm"] > bests["random"]

    def test_bted_bao_beats_random(self, bests):
        assert bests["bted+bao"] > bests["random"]

    def test_advanced_framework_competitive(self, bests):
        """BTED+BAO within a few percent of (and typically above) the
        AutoTVM baseline even at smoke budgets."""
        assert bests["bted+bao"] > 0.93 * bests["autotvm"]

    def test_all_find_decent_configs(self, bests, mobilenet_task):
        # every arm should land in the top decile of the random sample
        sample = [
            mobilenet_task.true_gflops(int(i))
            for i in mobilenet_task.space.sample(400, seed=0)
        ]
        q90 = np.quantile(sample, 0.9)
        for arm, best in bests.items():
            assert best > q90, arm


@pytest.mark.slow
class TestEndToEndDirection:
    """End-to-end latency: tuned deployment must clearly beat an untuned
    (record-free) deployment, and the advanced arm must not lose to
    random tuning (Table I direction, smoke scale)."""

    def test_tuning_beats_defaults(self):
        graph = build_model("squeezenet-v1.1")
        compiler = DeploymentCompiler(graph, env_seed=11)
        from repro.pipeline.records import RecordStore

        untuned = compiler.compile_from_records(RecordStore())
        tuned = compiler.tune("autotvm", n_trial=96, early_stopping=None)
        assert tuned.base_latency_ms < untuned.base_latency_ms

    def test_latency_samples_have_spread(self):
        graph = build_model("squeezenet-v1.1")
        compiler = DeploymentCompiler(graph, env_seed=11)
        compiled = compiler.tune("random", n_trial=48, early_stopping=None)
        sample = compiled.measure_latency(num_runs=200, seed=1)
        assert sample.variance > 0
        assert sample.mean_ms > 0


class TestDeterministicEnvironment:
    def test_same_env_seed_same_problem(self):
        wl = Conv2DWorkload(1, 16, 32, 28, 28, 3, 3, pad_h=1, pad_w=1)
        a = SimulatedTask(wl, seed=4)
        b = SimulatedTask(wl, seed=4)
        indices = a.space.sample(30, seed=0)
        va = [a.true_gflops(int(i)) for i in indices]
        vb = [b.true_gflops(int(i)) for i in indices]
        assert va == vb

    def test_tuner_seed_does_not_change_environment(self):
        wl = Conv2DWorkload(1, 16, 32, 28, 28, 3, 3, pad_h=1, pad_w=1)
        task = SimulatedTask(wl, seed=4)
        r1 = make_tuner("random", task, seed=1).tune(64, early_stopping=None)
        r2 = make_tuner("random", task, seed=2).tune(64, early_stopping=None)
        # different configs explored, but any shared config has the same
        # ground truth
        shared = set(r.config_index for r in r1.records) & set(
            r.config_index for r in r2.records
        )
        for idx in shared:
            assert task.true_gflops(idx) == task.true_gflops(idx)


class TestEarlyStoppingBehaviour:
    def test_early_stopping_reduces_measurements(self, mobilenet_task):
        full = make_tuner("autotvm", mobilenet_task, seed=0).tune(
            n_trial=320, early_stopping=None
        )
        stopped = make_tuner("autotvm", mobilenet_task, seed=0).tune(
            n_trial=320, early_stopping=48
        )
        assert stopped.num_measurements <= full.num_measurements
