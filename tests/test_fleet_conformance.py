"""Differential conformance: fleet runs must equal the serial baseline.

The fleet determinism contract (``docs/EXECUTION.md``): because noise
and fault schedules are pure functions of task-local measurement
ordinals, sharding a compile across N simulated devices — for any N,
worker count, and steal schedule — produces per-task tuning records
and ``RunSummary.deterministic_dict()`` payloads bit-identical to the
serial single-device run, including under injected faults.  The serial
baseline is only valid for *uniform* pools of the compiler's own
device class: each task is measured on its home device's cost model,
so a mixed pool intentionally diverges from the serial run (see
``test_fleet_heterogeneous.py`` for the per-home-device differential).
Every arm is checked; the cheap arms over the full (devices x
fault-rate) matrix, the expensive ones at one representative point
each.
"""

import json

import pytest

from repro.experiments.engine import ExperimentCell, ExperimentEngine
from repro.experiments.settings import ExperimentSettings
from repro.hardware.faults import FaultModel
from repro.hardware.measure import SimulatedTask
from repro.nn.graph import GraphBuilder
from repro.nn.workloads import DenseWorkload
from repro.obs import RunObservation
from repro.pipeline.compiler import DeploymentCompiler
from repro.pipeline.records import RecordStore

ARM_KWARGS = {
    "random": dict(batch_size=8),
    "grid": dict(batch_size=8),
    "ga": dict(population_size=8),
    "autotvm": dict(batch_size=8, init_size=8, sa_chains=8, sa_steps=10),
    "bted": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+as": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+bao": dict(init_size=6, batch_candidates=24, num_batches=2),
    "bted+bao+as": dict(
        init_size=6, batch_candidates=24, num_batches=2,
        measure_batch_size=4,
    ),
    "bted+bao+droplet": dict(
        init_size=6, batch_candidates=24, num_batches=2, finish_after=10
    ),
    "droplet": dict(batch_size=8, init_size=6),
}
N_TRIAL = 16
FAULT_SEED = 13

#: pool specs by size; uniform on purpose — a task's home device
#: supplies its cost model, so only a pool of the compiler's own class
#: can reproduce the serial baseline bit for bit
FLEETS = {
    1: "gtx1080ti",
    2: "gtx1080ti,gtx1080ti",
    4: "gtx1080ti,gtx1080ti,gtx1080ti,gtx1080ti",
}

#: cheap arms cover the full matrix; the rest run one fleet each
MATRIX_ARMS = ("random", "bted", "bted+bao", "droplet", "bted+as")
SPOT_ARMS = ("grid", "ga", "autotvm", "bted+bao+droplet", "bted+bao+as")


def _model():
    # three distinct conv tasks so 2- and 4-device shards are uneven
    b = GraphBuilder("fleet-tiny")
    b.input((1, 3, 16, 16))
    b.conv2d("c1", 8, padding=(1, 1))
    b.relu("r1")
    b.pool2d("p1")
    b.conv2d("c2", 12, padding=(1, 1))
    b.relu("r2")
    b.conv2d("c3", 16, padding=(1, 1))
    b.relu("r3")
    b.flatten("f")
    b.dense("fc", 10)
    return b.graph


def _run(arm, fault_rate, fleet=None, fleet_jobs=None, pipeline=False):
    """One compile; returns (records, per-task deterministic summaries)."""
    faults = (
        FaultModel(rate=fault_rate, seed=FAULT_SEED) if fault_rate else None
    )
    compiler = DeploymentCompiler(_model(), env_seed=123)
    store = RecordStore()
    observation = RunObservation(enable_metrics=False, enable_trace=False)
    compiler.tune(
        arm,
        n_trial=N_TRIAL,
        early_stopping=None,
        trial_seed=0,
        tuner_kwargs=ARM_KWARGS[arm],
        record_store=store,
        faults=faults,
        observation=observation,
        fleet=fleet,
        fleet_jobs=fleet_jobs,
        pipeline=pipeline,
    )
    records = [json.loads(r.to_json()) for r in store]
    summaries = {
        key: observation.observer(key).summary().deterministic_dict()
        for key in observation.keys()
    }
    return records, summaries


_BASELINES = {}


def _baseline(arm, fault_rate):
    key = (arm, fault_rate)
    if key not in _BASELINES:
        _BASELINES[key] = _run(arm, fault_rate)
    return _BASELINES[key]


@pytest.mark.slow
class TestCompilerConformance:
    @pytest.mark.parametrize("fault_rate", [0.0, 0.25])
    @pytest.mark.parametrize("devices", sorted(FLEETS))
    @pytest.mark.parametrize("arm", MATRIX_ARMS)
    def test_fleet_equals_serial(self, arm, devices, fault_rate):
        records, summaries = _run(
            arm, fault_rate, fleet=FLEETS[devices], fleet_jobs=devices
        )
        base_records, base_summaries = _baseline(arm, fault_rate)
        assert records == base_records
        assert summaries == base_summaries

    @pytest.mark.parametrize("arm", SPOT_ARMS)
    def test_remaining_arms_conform(self, arm):
        records, summaries = _run(
            arm, 0.25, fleet=FLEETS[2], fleet_jobs=2
        )
        base_records, base_summaries = _baseline(arm, 0.25)
        assert records == base_records
        assert summaries == base_summaries

    @pytest.mark.parametrize("arm", ("bted", "bted+bao"))
    def test_pipelined_fleet_equals_serial(self, arm):
        """pipeline=True composes with fleet sharding and faults.

        The speculative loop validates predicted results against the
        real (fault-retried) measurements, so even under injected
        faults the pipelined fleet must reproduce the serial baseline's
        records and deterministic summaries bit for bit.
        """
        records, summaries = _run(
            arm, 0.25, fleet=FLEETS[2], fleet_jobs=2, pipeline=True
        )
        base_records, base_summaries = _baseline(arm, 0.25)
        assert records == base_records
        assert summaries == base_summaries

    def test_per_device_fault_overrides_are_schedule_invariant(self):
        # a heterogeneous fault spec diverges from the serial baseline
        # by design, but must not depend on the worker count
        spec = "gtx1080ti,gtx1080ti:0.4,gtx1080ti:0.0"
        one = _run("random", 0.25, fleet=spec, fleet_jobs=1)
        four = _run("random", 0.25, fleet=spec, fleet_jobs=4)
        assert one == four
        # faulted measurements are retried to the same value, so the
        # divergence from the uniform baseline shows in the per-task
        # retry counters, not the record stream
        base_summaries = _baseline("random", 0.25)[1]
        assert one[1] != base_summaries
        assert (
            one[1]["task-002"]["retries"] == 0  # fault-free device
        )
        assert (
            one[1]["task-000"] == base_summaries["task-000"]
        )  # inherits the fleet default

    def test_fleet_report_is_attached(self):
        compiler = DeploymentCompiler(_model(), env_seed=123)
        compiled = compiler.tune(
            "random", n_trial=8, early_stopping=None,
            tuner_kwargs=dict(batch_size=4),
            fleet=FLEETS[2], fleet_jobs=2,
        )
        result = compiled.fleet
        assert result is not None
        assert [r.homed for r in result.reports] == [
            ["task-000", "task-002"], ["task-001"],
        ]
        assert sorted(result.results) == ["task-000", "task-001", "task-002"]
        assert all(r.measurements > 0 for r in result.reports)
        assert all(
            r.device_class == "geforcegtx1080ti" for r in result.reports
        )


def _cells():
    task = SimulatedTask(
        DenseWorkload(batch=1, in_features=64, out_features=48), seed=7
    )
    return [
        ExperimentCell(
            arm=arm, task=task, trial=trial, n_trial=12, key=(arm, trial)
        )
        for arm in ("random", "bted")
        for trial in (0, 1)
    ]


def _traces(results):
    return [
        [(r.step, r.config_index, r.gflops, r.error) for r in res.records]
        for res in results
    ]


@pytest.mark.slow
class TestEngineConformance:
    SETTINGS = ExperimentSettings(
        init_size=6, batch_size=8, batch_candidates=24, early_stopping=None
    )

    def test_run_cells_fleet_equals_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        fleet_dir = tmp_path / "fleet"
        with ExperimentEngine(
            self.SETTINGS, summary_dir=str(serial_dir)
        ) as engine:
            serial = engine.run_cells(_cells())
        with ExperimentEngine(
            self.SETTINGS,
            summary_dir=str(fleet_dir),
            fleet="gtx1080ti,titanv,titanv",
        ) as engine:
            fleet = engine.run_cells(_cells())
            assert engine.fleet_result is not None
        assert _traces(fleet) == _traces(serial)
        # per-cell summary files and the aggregate match byte-for-byte
        # modulo wall-clock fields; compare the deterministic shell
        serial_agg = json.loads((serial_dir / "summary.json").read_text())
        fleet_agg = json.loads((fleet_dir / "summary.json").read_text())
        for timing in ("proposal_s", "measure_s", "refit_s", "wall_s"):
            serial_agg.pop(timing)
            fleet_agg.pop(timing)
            serial_agg["by_arm"] = {
                k: {f: v for f, v in d.items() if f != "wall_s"}
                for k, d in serial_agg["by_arm"].items()
            }
            fleet_agg["by_arm"] = {
                k: {f: v for f, v in d.items() if f != "wall_s"}
                for k, d in fleet_agg["by_arm"].items()
            }
        assert fleet_agg == serial_agg
        # the scheduling report landed next to the summaries
        report = json.loads((fleet_dir / "fleet.json").read_text())
        assert report["tasks"] == 4
        assert len(report["devices"]) == 3

    def test_fleet_checkpoints_resume_under_device_dirs(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        with ExperimentEngine(
            self.SETTINGS, checkpoint_dir=str(ckpt), fleet="gtx1080ti,titanv"
        ) as engine:
            first = engine.run_cells(_cells())
        # per-device checkpoint subdirs, plus the scheduling report
        # (no summary_dir, so fleet.json falls back to checkpoint_dir)
        assert sorted(p.name for p in ckpt.iterdir()) == [
            "device-00", "device-01", "fleet.json",
        ]
        done = sorted(ckpt.rglob("*.done"))
        assert len(done) == 4
        # a rerun with the same fleet loads every cell from its home
        mtimes = {p: p.stat().st_mtime_ns for p in done}
        with ExperimentEngine(
            self.SETTINGS, checkpoint_dir=str(ckpt), fleet="gtx1080ti,titanv"
        ) as engine:
            second = engine.run_cells(_cells())
        assert _traces(second) == _traces(first)
        assert {p: p.stat().st_mtime_ns for p in done} == mtimes

    def test_map_fleet_preserves_order(self):
        with ExperimentEngine(
            self.SETTINGS, fleet="gtx1080ti,gtx1080ti"
        ) as engine:
            out = engine.map(lambda x: x * 3, list(range(11)))
        assert out == [i * 3 for i in range(11)]
