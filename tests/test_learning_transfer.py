"""Tests for repro.learning.transfer."""

import numpy as np
import pytest

from repro.learning.transfer import TransferHistory


def fake_task_data(n=50, d=4, seed=0, best=100.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.uniform(0, best, size=n)
    y[0] = best  # pin the max
    return X, y


class TestAddTask:
    def test_counts(self):
        history = TransferHistory()
        X, y = fake_task_data()
        history.add_task("t1", X, y)
        assert len(history) == 1
        assert history.num_samples == 50

    def test_normalization(self):
        history = TransferHistory()
        X, y = fake_task_data(best=1234.0)
        history.add_task("t1", X, y)
        _, targets, _ = history.training_data(4)
        assert targets.max() == pytest.approx(1.0)

    def test_max_per_task_keeps_best(self):
        history = TransferHistory(max_per_task=10)
        X, y = fake_task_data(n=100)
        history.add_task("t1", X, y)
        _, targets, _ = history.training_data(4)
        assert len(targets) == 10
        assert targets.min() >= np.sort(y / y.max())[-10] - 1e-12

    def test_truncation_keeps_descending_order(self):
        history = TransferHistory(max_per_task=5)
        X, y = fake_task_data(n=40, seed=4)
        history.add_task("t1", X, y)
        _, targets, _ = history.training_data(4)
        assert (np.diff(targets) <= 0).all()
        assert targets[0] == pytest.approx(1.0)

    def test_truncation_keeps_matching_features(self):
        history = TransferHistory(max_per_task=3)
        X = np.arange(20, dtype=float).reshape(20, 1) * np.ones((20, 4))
        y = np.arange(20, dtype=float) + 1.0
        history.add_task("t1", X, y)
        feats, targets, _ = history.training_data(4)
        # rows 19, 18, 17 survive, features still paired with targets
        assert list(feats[:, 0]) == [19.0, 18.0, 17.0]
        assert list(targets * 20.0) == [20.0, 19.0, 18.0]

    def test_all_zero_scores_ignored(self):
        history = TransferHistory()
        history.add_task("dead", np.ones((5, 4)), np.zeros(5))
        assert len(history) == 0

    def test_empty_ignored(self):
        history = TransferHistory()
        history.add_task("empty", np.empty((0, 4)), np.empty(0))
        assert len(history) == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TransferHistory().add_task("bad", np.ones((5, 4)), np.ones(4))


class TestTrainingData:
    def test_mixes_history_and_current(self):
        history = TransferHistory(history_weight=0.3)
        X, y = fake_task_data(seed=1)
        history.add_task("t1", X, y)
        Xc, yc = fake_task_data(n=20, seed=2)
        Xall, yall, wall = history.training_data(
            4, current_features=Xc, current_targets=yc
        )
        assert len(yall) == 70
        assert set(np.round(wall, 6)) == {0.3, 1.0}

    def test_dimension_filter(self):
        history = TransferHistory()
        history.add_task("t1", *fake_task_data(d=4))
        history.add_task("t2", *fake_task_data(d=6, seed=3))
        X, y, w = history.training_data(6)
        assert X.shape[1] == 6
        assert len(y) == 50  # only the d=6 task

    def test_empty_history(self):
        X, y, w = TransferHistory().training_data(4)
        assert X.shape == (0, 4)
        assert len(y) == 0

    def test_current_dim_mismatch(self):
        history = TransferHistory()
        with pytest.raises(ValueError):
            history.training_data(
                4,
                current_features=np.ones((3, 5)),
                current_targets=np.ones(3),
            )

    def test_history_weight_discounts_history_rows_only(self):
        history = TransferHistory(history_weight=0.25)
        history.add_task("t1", *fake_task_data(n=30, seed=1))
        history.add_task("t2", *fake_task_data(n=10, seed=2))
        Xc, yc = fake_task_data(n=5, seed=3)
        _, _, weights = history.training_data(
            4, current_features=Xc, current_targets=yc
        )
        assert (weights[:40] == 0.25).all()
        assert (weights[40:] == 1.0).all()

    def test_history_only_weights(self):
        history = TransferHistory(history_weight=0.5)
        history.add_task("t1", *fake_task_data(n=8))
        _, _, weights = history.training_data(4)
        assert (weights == 0.5).all()

    def test_bad_constructor(self):
        with pytest.raises(ValueError):
            TransferHistory(history_weight=2.0)
        with pytest.raises(ValueError):
            TransferHistory(max_per_task=0)
