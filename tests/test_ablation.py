"""Tests for repro.experiments.ablation."""

import pytest

from repro.experiments.ablation import (
    DiversityStats,
    adaptive_radius_ablation,
    bted_batch_sweep,
    gamma_sweep,
    init_diversity_comparison,
)
from repro.experiments.settings import ExperimentSettings

FAST = ExperimentSettings(
    init_size=16,
    n_trial=32,
    early_stopping=None,
    batch_candidates=64,
    num_batches=2,
    num_trials=1,
    env_seed=3,
)


class TestDiversityStats:
    def test_of_known_points(self):
        import numpy as np

        points = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
        stats = DiversityStats.of(points)
        assert stats.min_distance == pytest.approx(3.0)
        assert stats.mean_nearest_neighbor == pytest.approx((3 + 3 + 4) / 3)

    def test_needs_two_points(self):
        import numpy as np

        with pytest.raises(ValueError):
            DiversityStats.of(np.ones((1, 2)))


class TestInitDiversity:
    def test_bted_beats_random(self, small_task):
        stats = init_diversity_comparison(small_task, m=32, seed=0)
        assert stats["bted"].mean_nearest_neighbor > (
            stats["random"].mean_nearest_neighbor
        )


class TestBatchSweep:
    def test_returns_all_counts(self, small_task):
        sweep = bted_batch_sweep(
            small_task, batch_counts=(1, 4), m=16, batch_candidates=64,
            seed=0,
        )
        assert set(sweep) == {1, 4}
        for stats in sweep.values():
            assert stats.min_distance > 0


class TestGammaSweep:
    def test_smoke(self, small_task):
        result = gamma_sweep(
            small_task, FAST, gammas=(1, 2), num_trials=1
        )
        assert set(result) == {1, 2}
        assert all(v > 0 for v in result.values())


class TestRadiusAblation:
    def test_smoke(self, small_task):
        result = adaptive_radius_ablation(small_task, FAST, num_trials=1)
        assert set(result) == {"adaptive", "fixed", "compound"}
        assert all(v > 0 for v in result.values())
