"""Heterogeneous-fleet regressions: home-device identity end to end.

The fix under test: a mixed fleet used to measure every task on the
*compiler's* device and key every tuning-log record as that class, so
``--devices gtx1080ti,titanv`` silently tuned everything for the
1080 Ti.  Now the home device (``seq % len(fleet)``) supplies the cost
model and the tlog identity, and these tests pin that contract:

* each task's records are bit-identical to a serial compile targeting
  its home device, for any worker count;
* tuning-log records carry the device class they were *measured* on,
  and exact hits never cross classes;
* checkpoints resume a mixed fleet to the uninterrupted result;
* reports expose per-class scheduling (``by_class``) and per-device
  fault seeds.
"""

import pytest

from repro.fleet import Fleet, FleetDevice
from repro.fleet.reporting import fleet_report_dict
from repro.hardware.device import device_preset, normalize_device_name
from repro.nn.graph import GraphBuilder
from repro.pipeline.compiler import DeploymentCompiler
from repro.tlog import TuningLogDB

SPEC = "gtx1080ti,titanv,jetsontx2"
CLASSES = SPEC.split(",")
#: device-class labels (normalized full names — the tlog/report identity)
LABELS = [normalize_device_name(device_preset(h).name) for h in CLASSES]
ARM_KWARGS = dict(batch_size=8)
N_TRIAL = 16


def _model():
    # three distinct conv tasks: one per device class of SPEC
    b = GraphBuilder("hetero-tiny")
    b.input((1, 3, 16, 16))
    b.conv2d("c1", 8, padding=(1, 1))
    b.relu("r1")
    b.pool2d("p1")
    b.conv2d("c2", 12, padding=(1, 1))
    b.relu("r2")
    b.conv2d("c3", 16, padding=(1, 1))
    b.relu("r3")
    b.flatten("f")
    b.dense("fc", 10)
    return b.graph


def _trace(result):
    return [
        (r.step, r.config_index, r.gflops, r.error) for r in result.records
    ]


def _tune(device=None, **kwargs):
    if device is None:
        compiler = DeploymentCompiler(_model(), env_seed=123)
    else:
        compiler = DeploymentCompiler(
            _model(), device=device_preset(device), env_seed=123
        )
    compiled = compiler.tune(
        "random", n_trial=N_TRIAL, early_stopping=None, trial_seed=0,
        tuner_kwargs=ARM_KWARGS, **kwargs,
    )
    return compiler, compiled


class TestHomeDeviceMeasurement:
    @pytest.fixture(scope="class")
    def serial_by_class(self):
        return {
            handle: _tune(device=handle)[1] for handle in CLASSES
        }

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_task_records_match_home_device_serial_run(
        self, serial_by_class, jobs
    ):
        _, mixed = _tune(fleet=SPEC, fleet_jobs=jobs)
        for task_id, result in mixed.tuning_results.items():
            home = CLASSES[task_id % len(CLASSES)]
            expected = serial_by_class[home].tuning_results[task_id]
            assert _trace(result) == _trace(expected), (
                f"task {task_id} diverged from its {home} serial run "
                f"with {jobs} worker(s)"
            )

    def test_mixed_fleet_differs_from_single_device_serial(
        self, serial_by_class
    ):
        # the old (buggy) behavior: mixed fleet == compiler-device
        # serial run.  The zoo presets rank configs differently, so at
        # least one task homed off-class must now produce a different
        # record stream.
        _, mixed = _tune(fleet=SPEC, fleet_jobs=2)
        baseline = serial_by_class["gtx1080ti"]
        diverged = [
            task_id
            for task_id, result in mixed.tuning_results.items()
            if _trace(result) != _trace(baseline.tuning_results[task_id])
        ]
        assert diverged, "mixed fleet reproduced the single-device run"
        # ...and every diverging task is one homed off the compiler's
        # class; task 0 homes on gtx1080ti and must still match
        assert all(t % len(CLASSES) != 0 for t in diverged)

    def test_mixed_fleet_resumes_bit_identical(self, tmp_path):
        _, uninterrupted = _tune(fleet=SPEC, fleet_jobs=2)
        ckpt = tmp_path / "ckpt"
        _tune(fleet=SPEC, fleet_jobs=2, checkpoint_dir=str(ckpt))
        # the resumed run loads every task from its home device's
        # checkpoint subdir and reproduces the uninterrupted compile
        done = sorted(ckpt.rglob("*.done"))
        assert len(done) == 3
        mtimes = {p: p.stat().st_mtime_ns for p in done}
        _, resumed = _tune(
            fleet=SPEC, fleet_jobs=4, checkpoint_dir=str(ckpt), resume=True
        )
        for task_id, result in resumed.tuning_results.items():
            assert _trace(result) == _trace(
                uninterrupted.tuning_results[task_id]
            )
        assert {p: p.stat().st_mtime_ns for p in done} == mtimes


class TestTlogIdentity:
    def test_records_keyed_by_measuring_class(self, tmp_path):
        db = TuningLogDB(tmp_path / "tlog")
        _tune(fleet=SPEC, fleet_jobs=2, tlog=db)
        by_class = {}
        for sig in db.signatures():
            by_class.setdefault(sig.device_class, 0)
            by_class[sig.device_class] += 1
        # one conv task homed per class
        assert by_class == {label: 1 for label in LABELS}

    def test_exact_hits_never_cross_classes(self, tmp_path):
        db = TuningLogDB(tmp_path / "tlog")
        _tune(device="titanv", tlog=db)
        assert len(db) > 0
        # same class: every task is served from the log
        _, replay = _tune(device="titanv", tlog=db)
        assert set(replay.tlog_status.values()) == {"hit"}
        # different class: the same model stays cold — titanv records
        # must never serve a jetsontx2 compile
        _, cold = _tune(device="jetsontx2", tlog=db)
        assert set(cold.tlog_status.values()) == {"cold"}

    def test_fleet_signatures_match_home_classes(self, tmp_path):
        db = TuningLogDB(tmp_path / "tlog")
        compiler, compiled = _tune(fleet=SPEC, fleet_jobs=3, tlog=db)
        for spec in compiler.tasks:
            home = device_preset(CLASSES[spec.task_id % len(CLASSES)])
            sig = spec.signature(home)
            records = db.lookup_exact(sig)
            if compiled.tuning_results[spec.task_id].records:
                assert records, (
                    f"task {spec.task_id} left no records under its "
                    f"home class {sig.device_class}"
                )


class TestFleetIntrospection:
    def test_device_classes_and_uniformity(self):
        mixed = Fleet.from_spec(SPEC)
        assert mixed.device_classes == LABELS
        assert not mixed.is_uniform
        uniform = Fleet.from_spec("gtx1080ti,gtx1080ti")
        assert uniform.device_classes == ["geforcegtx1080ti"]
        assert uniform.is_uniform

    def test_describe_shows_fault_seed_override(self):
        fleet = Fleet.build([
            FleetDevice(index=0),
            FleetDevice(index=1, fault_rate=0.4, fault_seed=7),
        ])
        lines = fleet.describe()
        assert "fault_seed" not in lines[0]
        assert "fault_rate=0.4" in lines[1]
        assert "fault_seed=7" in lines[1]

    def test_report_by_class_rollup(self):
        _, mixed = _tune(fleet=SPEC, fleet_jobs=2)
        report = fleet_report_dict(mixed.fleet)
        assert sorted(report["by_class"]) == sorted(LABELS)
        total = 0.0
        for label in LABELS:
            row = report["by_class"][label]
            assert row["devices"] == 1
            assert row["homed"] == 1
            assert row["measurements"] > 0
            total += row["utilization"]
        assert total == pytest.approx(1.0, abs=1e-4)
        for entry in report["devices"]:
            assert entry["device_class"] in LABELS
