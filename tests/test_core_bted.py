"""Tests for repro.core.bted (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.bted import bted_select
from repro.utils.mathx import pairwise_sq_dists


class TestBtedSelect:
    def test_returns_m_distinct_indices(self, small_task):
        picked = bted_select(
            small_task.space, m=16, batch_candidates=100, num_batches=3,
            seed=0,
        )
        assert len(picked) == 16
        assert len(set(picked)) == 16
        assert all(0 <= i < len(small_task.space) for i in picked)

    def test_deterministic(self, small_task):
        a = bted_select(small_task.space, m=8, batch_candidates=64,
                        num_batches=2, seed=5)
        b = bted_select(small_task.space, m=8, batch_candidates=64,
                        num_batches=2, seed=5)
        assert a == b

    def test_seed_changes_selection(self, small_task):
        a = bted_select(small_task.space, m=8, batch_candidates=64,
                        num_batches=2, seed=5)
        b = bted_select(small_task.space, m=8, batch_candidates=64,
                        num_batches=2, seed=6)
        assert a != b

    def test_more_dispersed_than_random(self, small_task):
        space = small_task.space
        m = 32
        picked = bted_select(space, m=m, batch_candidates=200,
                             num_batches=4, seed=1)
        bted_spread = _mean_nn_distance(space.feature_matrix(picked))
        random_spreads = []
        for seed in range(5):
            rows = space.sample(m, seed=100 + seed)
            random_spreads.append(
                _mean_nn_distance(space.feature_matrix(rows))
            )
        assert bted_spread > np.mean(random_spreads)

    def test_small_space_returns_everything(self):
        from repro.space.knobs import OtherKnob
        from repro.space.space import ConfigSpace

        space = ConfigSpace("tiny")
        space.add_knob(OtherKnob("k", [0, 1, 2, 3]))
        picked = bted_select(space, m=4, batch_candidates=4, num_batches=2,
                             seed=0)
        assert sorted(picked) == [0, 1, 2, 3]

    def test_bad_args(self, small_task):
        with pytest.raises(ValueError):
            bted_select(small_task.space, m=0)
        with pytest.raises(ValueError):
            bted_select(small_task.space, m=64, batch_candidates=32)
        with pytest.raises(ValueError):
            bted_select(small_task.space, m=4, batch_candidates=8,
                        num_batches=0)

    def test_paper_settings_shape(self, small_task):
        """The exact Sec. V-A configuration: B=10 batches of M=500, m=64."""
        picked = bted_select(
            small_task.space,
            m=64,
            mu=0.1,
            batch_candidates=500,
            num_batches=10,
            seed=3,
        )
        assert len(picked) == 64


def _mean_nn_distance(features: np.ndarray) -> float:
    sq = pairwise_sq_dists(features, features)
    np.fill_diagonal(sq, np.inf)
    return float(np.sqrt(sq.min(axis=1)).mean())
