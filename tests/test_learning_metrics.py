"""Tests for repro.learning.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.learning.metrics import rank_accuracy, rmse, top_k_recall


class TestRmse:
    def test_zero_for_exact(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == (
            pytest.approx(np.sqrt(12.5))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            rmse(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestRankAccuracy:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_accuracy(y, y * 10) == 1.0

    def test_reversed(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_accuracy(y, -y) == 0.0

    def test_constant_prediction_is_half(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rank_accuracy(y, np.zeros(3)) == pytest.approx(0.5)

    def test_all_true_ties(self):
        assert rank_accuracy(np.ones(3), np.array([1.0, 2.0, 3.0])) == 1.0

    def test_needs_two(self):
        with pytest.raises(ValueError):
            rank_accuracy(np.array([1.0]), np.array([1.0]))

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.normal(size=10)
        y_pred = rng.normal(size=10)
        acc = rank_accuracy(y_true, y_pred)
        assert 0.0 <= acc <= 1.0

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(0)
        y_true = rng.normal(size=20)
        y_pred = rng.normal(size=20)
        a = rank_accuracy(y_true, y_pred)
        b = rank_accuracy(y_true, np.exp(y_pred))
        assert a == pytest.approx(b)


class TestTopKRecall:
    def test_perfect(self):
        y = np.arange(10.0)
        assert top_k_recall(y, y, k=3) == 1.0

    def test_disjoint(self):
        y_true = np.arange(10.0)
        assert top_k_recall(y_true, -y_true, k=3) == 0.0

    def test_partial(self):
        y_true = np.array([0.0, 1.0, 2.0, 3.0])
        y_pred = np.array([0.0, 3.0, 1.0, 2.0])
        # true top-2 {3, 2}; predicted top-2 {1, 3}: overlap 1
        assert top_k_recall(y_true, y_pred, k=2) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_recall(np.ones(3), np.ones(3), k=0)
        with pytest.raises(ValueError):
            top_k_recall(np.ones(3), np.ones(3), k=4)
