"""Crash-safe writes: torn writes must never destroy the previous file."""

import os
import pickle

import pytest

from repro.utils import io as io_mod
from repro.utils.io import (
    atomic_pickle_dump,
    atomic_write_bytes,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_new_file(self, tmp_path):
        path = tmp_path / "out.bin"
        returned = atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert returned == str(path)

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_text_and_pickle_variants(self, tmp_path):
        text_path = tmp_path / "out.txt"
        atomic_write_text(text_path, "héllo")
        assert text_path.read_text(encoding="utf-8") == "héllo"
        pkl_path = tmp_path / "out.pkl"
        atomic_pickle_dump(pkl_path, {"a": [1, 2, 3]})
        with pkl_path.open("rb") as fh:
            assert pickle.load(fh) == {"a": [1, 2, 3]}

    def test_no_temp_residue_after_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"x" * 4096)
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestTornWrite:
    def test_failed_replace_preserves_previous_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "state.bin"
        path.write_bytes(b"previous good state")

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(io_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_bytes(path, b"half-written new state")
        assert path.read_bytes() == b"previous good state"

    def test_failed_replace_leaves_no_temp_files(self, tmp_path, monkeypatch):
        path = tmp_path / "state.bin"
        path.write_bytes(b"previous")
        monkeypatch.setattr(
            io_mod.os, "replace",
            lambda s, d: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"new")
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]

    def test_failed_write_preserves_previous_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "state.bin"
        path.write_bytes(b"previous good state")
        real_fdopen = os.fdopen

        class _TornHandle:
            def __init__(self, handle):
                self._handle = handle

            def __enter__(self):
                self._handle.__enter__()
                return self

            def __exit__(self, *exc):
                return self._handle.__exit__(*exc)

            def write(self, data):
                self._handle.write(data[: len(data) // 2])
                raise OSError("disk full mid-write")

        monkeypatch.setattr(
            io_mod.os, "fdopen",
            lambda fd, mode: _TornHandle(real_fdopen(fd, mode)),
        )
        with pytest.raises(OSError, match="disk full"):
            atomic_write_bytes(path, b"new state")
        assert path.read_bytes() == b"previous good state"
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]
