"""Failure-injection tests: the loop survives hostile environments.

The tuners must stay correct when the environment is degenerate: every
measurement failing, extremely noisy measurements, or an evaluation
function that throws.
"""

import numpy as np
import pytest

from repro.core import make_tuner
from repro.core.bootstrap import BootstrapEnsemble
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.hardware.measure import (
    MeasureErrorKind,
    MeasureResult,
    Measurer,
    SimulatedTask,
)


class AllFailMeasurer(Measurer):
    """A measurer whose every deployment errors out."""

    def measure_one(self, config_index: int) -> MeasureResult:
        self.num_measurements += 1
        return MeasureResult(
            config_index=config_index,
            gflops=0.0,
            mean_time_s=float("inf"),
            error_kind=MeasureErrorKind.RESOURCE_ERROR,
            error_msg="injected failure",
        )


class TestAllMeasurementsFail:
    @pytest.mark.parametrize("arm", ["random", "autotvm", "bted+bao", "ga"])
    def test_tuner_completes_with_zero_best(self, arm, dense_task):
        tuner = make_tuner(arm, dense_task, seed=0)
        tuner.measurer = AllFailMeasurer(dense_task, seed=0)
        result = tuner.tune(n_trial=40, early_stopping=None)
        assert result.num_measurements == 40
        assert result.best_gflops == 0.0
        assert all(not r.ok for r in result.records)

    def test_early_stopping_fires_on_flat_zero(self, dense_task):
        tuner = make_tuner("random", dense_task, seed=0)
        tuner.measurer = AllFailMeasurer(dense_task, seed=0)
        result = tuner.tune(n_trial=10_000, early_stopping=25)
        assert result.num_measurements < 200


class TestExtremeNoise:
    def test_tuner_still_finds_decent_config(self, small_task):
        noisy = Measurer(small_task, seed=0, repeats=1)
        # amplify noise 10x by monkeypatching the sampler
        original = noisy._noise.sample_time_factors

        def loud(sigma, n=1, rng=None):
            return original(min(10 * sigma, 0.8), n=n, rng=rng)

        noisy._noise.sample_time_factors = loud
        tuner = make_tuner("autotvm", small_task, seed=0)
        tuner.measurer = noisy
        result = tuner.tune(n_trial=128, early_stopping=None)
        assert result.best_gflops > 0

    def test_records_stay_consistent(self, small_task):
        tuner = make_tuner("autotvm", small_task, seed=1)
        result = tuner.tune(n_trial=96, early_stopping=None)
        best = max(r.gflops for r in result.records)
        assert result.best_gflops == best


class TestBrokenEvaluationFunction:
    def test_bootstrap_propagates_model_errors(self):
        class Broken:
            def fit(self, X, y):
                raise RuntimeError("injected model failure")

            def predict(self, X):  # pragma: no cover
                return np.zeros(len(X))

        ensemble = BootstrapEnsemble(gamma=2, model_factory=Broken, seed=0)
        with pytest.raises(RuntimeError, match="injected"):
            ensemble.fit(np.ones((10, 3)), np.ones(10))

    def test_bao_tuner_surfaces_model_errors(self, dense_task):
        class BrokenAfterFirst:
            calls = 0

            def fit(self, X, y):
                type(self).calls += 1
                if type(self).calls > 2:
                    raise RuntimeError("injected late failure")
                self._mean = float(np.mean(y))
                return self

            def predict(self, X):
                return np.full(len(X), self._mean)

        tuner = BTEDBAOTuner(
            dense_task,
            seed=0,
            init_size=8,
            batch_candidates=32,
            num_batches=2,
            model_factory=BrokenAfterFirst,
        )
        with pytest.raises(RuntimeError, match="injected late"):
            tuner.tune(n_trial=24, early_stopping=None)
