"""Tests for repro.pipeline.tasks: task extraction."""

import pytest

from repro.nn.graph import GraphBuilder
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks, untuned_ops


def small_net():
    b = GraphBuilder("small")
    b.input((1, 3, 16, 16))
    b.conv2d("c1", 8, padding=(1, 1))
    b.relu("r1")
    b.conv2d("c2", 8, padding=(1, 1))  # same workload as c1? no: in_ch=8
    b.relu("r2")
    b.pool2d("p1")
    b.flatten("f")
    b.dense("fc", 10)
    return b.graph


class TestExtractTasks:
    def test_default_excludes_dense(self):
        tasks = extract_tasks(small_net())
        kinds = {t.workload.kind for t in tasks}
        assert kinds == {"conv2d"}

    def test_include_dense_explicitly(self):
        tasks = extract_tasks(small_net(), ops=("conv2d", "dense"))
        kinds = {t.workload.kind for t in tasks}
        assert kinds == {"conv2d", "dense"}

    def test_task_ids_sequential(self):
        tasks = extract_tasks(small_net())
        assert [t.task_id for t in tasks] == list(range(len(tasks)))

    def test_occurrences(self):
        b = GraphBuilder("dup")
        b.input((1, 8, 16, 16))
        b.conv2d("c1", 8, padding=(1, 1))
        b.conv2d("c2", 8, padding=(1, 1))  # identical workload
        tasks = extract_tasks(b.graph)
        assert len(tasks) == 1
        assert tasks[0].occurrences == 2
        assert tasks[0].kernel_names == ("c1", "c2")

    def test_total_flops_scales_with_occurrences(self):
        b = GraphBuilder("dup")
        b.input((1, 8, 16, 16))
        b.conv2d("c1", 8, padding=(1, 1))
        b.conv2d("c2", 8, padding=(1, 1))
        task = extract_tasks(b.graph)[0]
        assert task.total_flops == 2 * task.workload.flops

    def test_to_simulated(self):
        task = extract_tasks(small_net())[0]
        sim = task.to_simulated(seed=3)
        assert sim.workload == task.workload

    def test_repr(self):
        task = extract_tasks(small_net())[0]
        assert "T1" in repr(task)


class TestUntunedOps:
    def test_complement(self):
        graph = small_net()
        tuned_kernels = {
            name
            for t in extract_tasks(graph)
            for name in t.kernel_names
        }
        untuned = {op.name for op in untuned_ops(graph)}
        assert not (tuned_kernels & untuned)
        assert "p1" in untuned
        assert "fc" in untuned  # dense not tuned by default

    def test_zoo_untuned_contains_pooling(self):
        graph = build_model("resnet-18")
        names = {op.ops[0] for op in untuned_ops(graph)}
        assert "max_pool2d" in names or "global_avg_pool" in names
