"""Tests for the alternative evaluation functions (MLP, rank GBT).

These back the paper's Sec. IV claim that the framework is independent
of the evaluation-function form: both models satisfy the fit/predict
contract and plug into the bootstrap ensemble.
"""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEnsemble
from repro.learning.metrics import rank_accuracy, rmse
from repro.learning.mlp import MlpRegressor
from repro.learning.rank import RankGradientBoostedTrees


def smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 6))
    y = X[:, 0] * 3 + np.sin(2 * X[:, 1]) + X[:, 2] * X[:, 3]
    return X, y


class TestMlpRegressor:
    def test_fits_smooth_function(self):
        X, y = smooth_data()
        model = MlpRegressor(hidden_layers=(32, 16), epochs=80, seed=0)
        model.fit(X, y)
        assert rmse(y, model.predict(X)) < 0.4 * y.std()

    def test_generalizes(self):
        X, y = smooth_data(400, seed=1)
        Xt, yt = smooth_data(100, seed=2)
        model = MlpRegressor(hidden_layers=(32, 16), epochs=80, seed=0)
        model.fit(X, y)
        assert rmse(yt, model.predict(Xt)) < 0.6 * yt.std()

    def test_deterministic(self):
        X, y = smooth_data(100)
        a = MlpRegressor(epochs=10, seed=3).fit(X, y).predict(X)
        b = MlpRegressor(epochs=10, seed=3).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(40, 3))
        model = MlpRegressor(epochs=60, seed=0).fit(X, np.full(40, 7.0))
        assert model.predict(X) == pytest.approx(np.full(40, 7.0), abs=1.0)

    def test_constant_feature_column_is_safe(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        X[:, 1] = 5.0
        y = X[:, 0]
        model = MlpRegressor(epochs=30, seed=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_sample_weight(self):
        X = np.vstack([np.zeros((30, 2)), np.ones((30, 2))])
        y = np.concatenate([np.zeros(30), np.full(30, 10.0)])
        w = np.concatenate([np.ones(30), np.full(30, 1e-6)])
        model = MlpRegressor(epochs=60, seed=0).fit(X, y, sample_weight=w)
        assert abs(model.predict(np.zeros((1, 2)))[0]) < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MlpRegressor(hidden_layers=())
        with pytest.raises(ValueError):
            MlpRegressor(epochs=0)
        with pytest.raises(ValueError):
            MlpRegressor().fit(np.ones((5, 2)), np.ones(4))
        with pytest.raises(RuntimeError):
            MlpRegressor().predict(np.ones((2, 2)))

    def test_plugs_into_bootstrap_ensemble(self):
        X, y = smooth_data(120)
        ensemble = BootstrapEnsemble(
            gamma=2,
            model_factory=lambda: MlpRegressor(
                hidden_layers=(16,), epochs=25, seed=1
            ),
            seed=0,
        ).fit(X, y)
        scores = ensemble.predict_sum(X)
        assert np.corrcoef(scores, y)[0, 1] > 0.6


class TestRankGbt:
    def test_ranks_smooth_function(self):
        X, y = smooth_data(250, seed=4)
        model = RankGradientBoostedTrees(n_estimators=40, seed=0).fit(X, y)
        assert rank_accuracy(y, model.predict(X)) > 0.85

    def test_generalizes_ranking(self):
        X, y = smooth_data(400, seed=5)
        Xt, yt = smooth_data(120, seed=6)
        model = RankGradientBoostedTrees(n_estimators=40, seed=0).fit(X, y)
        assert rank_accuracy(yt, model.predict(Xt)) > 0.75

    def test_invariant_to_target_scale(self):
        """Rank loss only sees order: scaling y must not change scores."""
        X, y = smooth_data(150, seed=7)
        a = RankGradientBoostedTrees(n_estimators=10, seed=1).fit(X, y)
        b = RankGradientBoostedTrees(n_estimators=10, seed=1).fit(X, y * 100)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_constant_target_stops_early(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        model = RankGradientBoostedTrees(n_estimators=20, seed=0).fit(
            X, np.ones(50)
        )
        assert model.n_trees == 0
        assert np.allclose(model.predict(X), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RankGradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            RankGradientBoostedTrees(pairs_per_sample=0)
        with pytest.raises(RuntimeError):
            RankGradientBoostedTrees().predict(np.ones((2, 2)))
        with pytest.raises(ValueError):
            RankGradientBoostedTrees().fit(np.empty((0, 2)), np.empty(0))
