"""Tests for repro.space.templates: CUDA schedule-space generation."""

import pytest

from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
)
from repro.nn.zoo import build_model
from repro.pipeline.tasks import extract_tasks
from repro.space.templates import TemplateError, build_space


class TestConvTemplate:
    def test_knob_names(self, small_conv_workload):
        space = build_space(small_conv_workload)
        names = [k.name for k in space.knobs]
        assert names == [
            "tile_f",
            "tile_y",
            "tile_x",
            "tile_rc",
            "tile_ry",
            "tile_rx",
            "auto_unroll_max_step",
            "unroll_explicit",
        ]

    def test_split_extents_match_workload(self, small_conv_workload):
        space = build_space(small_conv_workload)
        assert space.knob("tile_f").extent == small_conv_workload.out_channels
        assert space.knob("tile_y").extent == small_conv_workload.out_height
        assert space.knob("tile_rc").extent == small_conv_workload.in_channels

    def test_config_values_multiply_out(self, small_conv_workload):
        space = build_space(small_conv_workload)
        entity = space.get(len(space) // 2)
        tile_f = entity["tile_f"]
        assert len(tile_f) == 4
        product = 1
        for f in tile_f:
            product *= f
        assert product == small_conv_workload.out_channels

    def test_paper_scale_space_size(self):
        """Sec. V: nodes average >50M configurations across the zoo
        (ours: ~47M mean, max ~0.7B — same order as the paper's
        '0.2 billion points' first VGG-16 node)."""
        from repro.nn.zoo import PAPER_MODELS

        sizes = []
        for name in PAPER_MODELS:
            for task in extract_tasks(build_model(name)):
                sizes.append(len(build_space(task.workload)))
        mean = sum(sizes) / len(sizes)
        assert mean > 30_000_000
        assert max(sizes) > 100_000_000


class TestDepthwiseTemplate:
    def test_no_reduction_knobs(self, depthwise_workload):
        space = build_space(depthwise_workload)
        names = {k.name for k in space.knobs}
        assert "tile_rc" not in names
        assert "tile_f" in names

    def test_channel_extent(self, depthwise_workload):
        space = build_space(depthwise_workload)
        assert space.knob("tile_f").extent == depthwise_workload.out_channels


class TestDenseTemplate:
    def test_knobs(self, dense_workload):
        space = build_space(dense_workload)
        names = [k.name for k in space.knobs]
        assert "tile_x" in names
        assert "tile_k" in names

    def test_space_is_nontrivial(self, dense_workload):
        assert len(build_space(dense_workload)) > 100


class TestDispatch:
    def test_unknown_workload(self):
        class Weird:
            pass

        with pytest.raises((TemplateError, TypeError)):
            build_space(Weird())

    @pytest.mark.parametrize(
        "workload",
        [
            Conv2DWorkload(1, 4, 4, 7, 7, 3, 3, pad_h=1, pad_w=1),
            DepthwiseConv2DWorkload(1, 4, 7, 7, 3, 3, 1, 1, 1, 1),
            DenseWorkload(1, 12, 10),
        ],
    )
    def test_all_indices_give_valid_entities(self, workload):
        space = build_space(workload)
        for idx in [0, len(space) // 3, len(space) - 1]:
            entity = space.get(idx)
            assert set(entity.values)  # non-empty mapping
