"""Checkpoint/resume: crash at any batch, resume bit-identically."""

import pickle

import pytest

from repro.core import make_tuner
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointPolicy,
    TuningCheckpoint,
)
from repro.core.events import CheckpointSaved, TuningResumed
from repro.hardware.faults import FaultModel, RetryPolicy
from repro.hardware.executor import build_executor
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload

ARM_KWARGS = {
    "random": dict(batch_size=8),
    "bted": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+as": dict(batch_size=8, init_size=6, batch_candidates=24),
    "bted+bao": dict(init_size=6, batch_candidates=24, num_batches=2),
    "bted+bao+as": dict(
        init_size=6, batch_candidates=24, num_batches=2,
        measure_batch_size=4,
    ),
    "bted+bao+droplet": dict(
        init_size=6, batch_candidates=24, num_batches=2, finish_after=10
    ),
    "droplet": dict(batch_size=8, init_size=6),
}


def _trace(result):
    return [
        (r.step, r.config_index, r.gflops, r.error) for r in result.records
    ]


def _crash_after(tuner, n_batches, path, n_trial, early_stopping=None):
    """Run ``tune`` but abort after ``n_batches`` measured batches."""

    class _Crash(Exception):
        pass

    seen = [0]

    def bomb(tuner_, event):
        if isinstance(event, CheckpointSaved) and event.step > 0:
            seen[0] += 1
            if seen[0] >= n_batches:
                raise _Crash()

    with pytest.raises(_Crash):
        tuner.tune(
            n_trial=n_trial,
            early_stopping=early_stopping,
            checkpoint=CheckpointPolicy(path=path, every=1),
            on_event=[bomb],
        )


class TestTuningCheckpointFile:
    def test_save_load_roundtrip(self, tmp_path, dense_task):
        tuner = make_tuner("random", dense_task, seed=3, batch_size=8)
        tuner.tune(n_trial=8, early_stopping=None)
        ckpt = tuner.snapshot(n_trial=16, early_stopping=None)
        path = tmp_path / "t.ckpt"
        ckpt.save(path)
        loaded = TuningCheckpoint.load(path)
        assert loaded == ckpt

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError):
            TuningCheckpoint.load(path)

    def test_load_rejects_foreign_pickles(self, tmp_path):
        path = tmp_path / "other.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(CheckpointError):
            TuningCheckpoint.load(path)

    def test_load_rejects_future_versions(self, tmp_path, dense_task):
        tuner = make_tuner("random", dense_task, seed=3)
        ckpt = tuner.snapshot()
        future = TuningCheckpoint(
            **{
                **ckpt.__dict__,
                "version": CHECKPOINT_VERSION + 1,
            }
        )
        path = tmp_path / "future.ckpt"
        future.save(path)
        with pytest.raises(CheckpointError, match="version"):
            TuningCheckpoint.load(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            TuningCheckpoint.load(tmp_path / "absent.ckpt")

    def test_policy_validates_every(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointPolicy(path=tmp_path / "x", every=0)


class TestResumeValidation:
    def test_resume_rejects_wrong_arm(self, tmp_path, dense_task):
        tuner = make_tuner("random", dense_task, seed=3, batch_size=8)
        path = tmp_path / "t.ckpt"
        tuner.tune(n_trial=8, early_stopping=None, checkpoint=path)
        other = make_tuner("grid", dense_task, seed=3)
        with pytest.raises(CheckpointError, match="tuner"):
            other.resume(path)

    def test_resume_rejects_wrong_seed(self, tmp_path, dense_task):
        tuner = make_tuner("random", dense_task, seed=3, batch_size=8)
        path = tmp_path / "t.ckpt"
        tuner.tune(n_trial=8, early_stopping=None, checkpoint=path)
        other = make_tuner("random", dense_task, seed=4, batch_size=8)
        with pytest.raises(CheckpointError, match="seed"):
            other.resume(path)

    def test_resume_rejects_wrong_task(self, tmp_path, dense_task):
        tuner = make_tuner("random", dense_task, seed=3, batch_size=8)
        path = tmp_path / "t.ckpt"
        tuner.tune(n_trial=8, early_stopping=None, checkpoint=path)
        other_task = SimulatedTask(
            DenseWorkload(batch=1, in_features=32, out_features=32), seed=9
        )
        other = make_tuner("random", other_task, seed=3, batch_size=8)
        with pytest.raises(CheckpointError, match="task"):
            other.resume(path)


class TestCrashResume:
    @pytest.mark.parametrize("arm", sorted(ARM_KWARGS))
    def test_crash_and_resume_matches_uninterrupted(
        self, tmp_path, dense_task, arm
    ):
        kwargs = ARM_KWARGS[arm]
        n_trial = 20
        baseline = make_tuner(arm, dense_task, seed=5, **kwargs).tune(
            n_trial=n_trial, early_stopping=None
        )

        path = tmp_path / f"{arm}.ckpt"
        crashed = make_tuner(arm, dense_task, seed=5, **kwargs)
        _crash_after(crashed, n_batches=1, path=path, n_trial=n_trial)

        fresh = make_tuner(arm, dense_task, seed=5, **kwargs)
        resumed = fresh.resume(path)
        assert _trace(resumed) == _trace(baseline)
        assert resumed.best_index == baseline.best_index
        assert resumed.best_gflops == baseline.best_gflops

    def test_crash_before_first_batch_is_resumable(
        self, tmp_path, dense_task
    ):
        # the step-0 snapshot alone must reproduce the entire run
        baseline = make_tuner("random", dense_task, seed=1, batch_size=8).tune(
            n_trial=16, early_stopping=None
        )
        path = tmp_path / "step0.ckpt"
        tuner = make_tuner("random", dense_task, seed=1, batch_size=8)
        ckpt = tuner.snapshot(n_trial=16, early_stopping=None,
                              initialized=False)
        ckpt.save(path)
        fresh = make_tuner("random", dense_task, seed=1, batch_size=8)
        resumed = fresh.resume(path)
        assert _trace(resumed) == _trace(baseline)

    def test_resume_continues_early_stopper_state(self, tmp_path, dense_task):
        window = 12
        baseline = make_tuner("random", dense_task, seed=5, batch_size=4).tune(
            n_trial=64, early_stopping=window
        )
        path = tmp_path / "stop.ckpt"
        crashed = make_tuner("random", dense_task, seed=5, batch_size=4)
        _crash_after(
            crashed, n_batches=2, path=path, n_trial=64,
            early_stopping=window,
        )
        fresh = make_tuner("random", dense_task, seed=5, batch_size=4)
        resumed = fresh.resume(path)
        assert _trace(resumed) == _trace(baseline)
        assert resumed.num_measurements == baseline.num_measurements

    def test_resume_emits_event_and_keeps_counters(
        self, tmp_path, dense_task
    ):
        path = tmp_path / "ev.ckpt"
        crashed = make_tuner("random", dense_task, seed=5, batch_size=8)
        _crash_after(crashed, n_batches=1, path=path, n_trial=24)
        events = []
        fresh = make_tuner("random", dense_task, seed=5, batch_size=8)
        fresh.resume(path, on_event=[lambda t, e: events.append(e)])
        resumed_events = [e for e in events if isinstance(e, TuningResumed)]
        assert len(resumed_events) == 1
        assert resumed_events[0].restored_records == 8
        # counters restored from the checkpoint keep climbing
        assert fresh.event_counts["batch_proposed"] >= 2

    def test_resume_with_faults_replays_remaining_schedule(
        self, tmp_path, dense_task
    ):
        faults = FaultModel(rate=0.3, seed=7)
        retry = RetryPolicy(max_retries=1)

        def executor_spec(measurer):
            return build_executor(
                measurer, "serial", faults=faults, retry=retry
            )

        baseline = make_tuner(
            "random", dense_task, seed=5, batch_size=8,
            executor=executor_spec,
        ).tune(n_trial=32, early_stopping=None)
        assert any(r.error for r in baseline.records), "want injected errors"

        path = tmp_path / "faults.ckpt"
        crashed = make_tuner(
            "random", dense_task, seed=5, batch_size=8,
            executor=executor_spec,
        )
        _crash_after(crashed, n_batches=2, path=path, n_trial=32)
        fresh = make_tuner(
            "random", dense_task, seed=5, batch_size=8,
            executor=executor_spec,
        )
        resumed = fresh.resume(path)
        assert _trace(resumed) == _trace(baseline)

    def test_resume_of_finished_run_measures_nothing_more(
        self, tmp_path, dense_task
    ):
        path = tmp_path / "done.ckpt"
        tuner = make_tuner("random", dense_task, seed=5, batch_size=8)
        done = tuner.tune(n_trial=16, early_stopping=None, checkpoint=path)
        # the final checkpoint precedes the last batch; resuming replays
        # only that remainder and lands on the same final state
        fresh = make_tuner("random", dense_task, seed=5, batch_size=8)
        resumed = fresh.resume(path)
        assert _trace(resumed) == _trace(done)

    def test_checkpoint_every_n_batches(self, tmp_path, dense_task):
        saves = []
        tuner = make_tuner("random", dense_task, seed=5, batch_size=4)
        tuner.tune(
            n_trial=32,
            early_stopping=None,
            checkpoint=CheckpointPolicy(path=tmp_path / "n.ckpt", every=2),
            on_event=[
                lambda t, e: saves.append(e)
                if isinstance(e, CheckpointSaved) else None
            ],
        )
        # step-0 snapshot + one every second measured batch (8 batches)
        steps = [e.step for e in saves]
        assert steps[0] == 0
        assert steps[1:] == [8, 16, 24]

    def test_retry_exhaustion_never_raises(self, dense_task):
        # graceful degradation: even rate ~0.6 with zero retries must
        # complete the loop and record failures as error records
        def executor_spec(measurer):
            return build_executor(
                measurer, "serial",
                faults=FaultModel(rate=0.6, seed=3),
                retry=RetryPolicy(max_retries=0),
            )

        tuner = make_tuner(
            "random", dense_task, seed=5, batch_size=8,
            executor=executor_spec,
        )
        result = tuner.tune(n_trial=32, early_stopping=None)
        assert result.num_measurements == 32
        failed = [r for r in result.records if r.error]
        assert failed
        assert tuner.event_counts.get("measurement_failed") == len(failed)
