"""Cross-cutting property-based tests over random workloads and spaces.

Invariants verified here hold for *every* generated input, not just the
hand-written cases in the per-module test files:

* config-space addressing is a bijection and features are consistent;
* schedule templates produce valid spaces for any workload;
* the cost model never returns non-finite or non-positive throughput
  for a launchable config, and respects resource limits;
* TED always returns distinct in-range rows;
* measurement results are internally consistent.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.ted import ted_select
from repro.hardware.measure import Measurer, SimulatedTask
from repro.hardware.resources import ResourceError
from repro.space.templates import build_space

from tests.strategies import config_spaces, workloads

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSpaceProperties:
    @given(config_spaces())
    @COMMON
    def test_encode_decode_bijection(self, space):
        size = len(space)
        probe = np.unique(
            np.linspace(0, size - 1, min(size, 200)).astype(np.int64)
        )
        digits = space.decode_batch(probe)
        assert (space.encode_batch(digits) == probe).all()

    @given(config_spaces())
    @COMMON
    def test_feature_matrix_consistent(self, space):
        probe = np.unique(
            np.linspace(0, len(space) - 1, min(len(space), 50)).astype(
                np.int64
            )
        )
        matrix = space.feature_matrix(probe)
        assert matrix.shape == (len(probe), space.feature_dim)
        assert np.isfinite(matrix).all()
        for row, idx in zip(matrix, probe):
            assert np.allclose(row, space.features_of(int(idx)))

    @given(config_spaces())
    @COMMON
    def test_sampling_in_range_and_distinct(self, space):
        n = min(len(space), 64)
        sample = space.sample(n, seed=0)
        assert len(set(sample.tolist())) == n
        assert sample.min() >= 0
        assert int(sample.max()) < len(space)

    @given(config_spaces())
    @COMMON
    def test_random_walk_stays_in_space(self, space):
        idx = len(space) // 2
        for seed in range(5):
            moved = space.random_walk(idx, seed=seed)
            assert 0 <= moved < len(space)


class TestTemplateAndCostModelProperties:
    @given(workloads())
    @COMMON
    def test_template_builds_valid_space(self, workload):
        space = build_space(workload)
        assert len(space) >= 1
        assert space.feature_dim > 0
        entity = space.get(len(space) - 1)
        assert entity.values

    @given(workloads())
    @COMMON
    def test_cost_model_outputs_are_sane(self, workload):
        task = SimulatedTask(workload, seed=1)
        device = task.device
        for idx in task.space.sample(min(len(task.space), 40), seed=0):
            try:
                profile = task.profile_of(int(idx))
            except ResourceError:
                continue
            assert np.isfinite(profile.gflops)
            assert profile.gflops > 0
            assert profile.gflops < device.peak_gflops
            assert profile.time_s > 0
            assert 0 < profile.warp_occupancy <= 1
            assert 0 < profile.sm_utilization <= 1
            assert profile.threads_per_block <= device.max_threads_per_block
            assert profile.shared_mem_bytes <= device.shared_mem_per_block
            assert 0 <= profile.noise_sigma_rel < 0.5

    @given(workloads())
    @COMMON
    def test_terrain_bounded(self, workload):
        task = SimulatedTask(workload, seed=2)
        indices = task.space.sample(min(len(task.space), 30), seed=0)
        feats = task.space.feature_matrix(indices)
        factors = task.terrain.factor_batch(feats)
        assert (factors <= 1.0 + 1e-12).all()
        assert (factors >= 1.0 - task.terrain.amplitude - 1e-12).all()

    @given(workloads())
    @COMMON
    def test_measurement_consistency(self, workload):
        task = SimulatedTask(workload, seed=3)
        measurer = Measurer(task, seed=0, repeats=2)
        for idx in task.space.sample(min(len(task.space), 10), seed=1):
            result = measurer.measure_one(int(idx))
            if result.ok:
                assert result.gflops > 0
                assert np.isfinite(result.mean_time_s)
                # gflops * time == flops
                assert result.gflops * 1e9 * result.mean_time_s == (
                    pytest.approx(task.workload.flops, rel=1e-6)
                )
            else:
                assert result.gflops == 0.0
                assert result.mean_time_s == float("inf")


class TestTedProperties:
    @given(config_spaces())
    @COMMON
    def test_ted_on_real_feature_matrices(self, space):
        n = min(len(space), 40)
        indices = space.sample(n, seed=0)
        feats = space.feature_matrix(indices)
        m = min(8, n)
        picked = ted_select(feats, m=m, mu=0.1)
        assert len(picked) == m
        assert len(set(picked)) == m
        assert all(0 <= p < n for p in picked)
