"""Tests for the extension models (beyond the paper's evaluation zoo)."""

import pytest

from repro.nn.fusion import fuse_graph
from repro.nn.zoo import EXTENSION_MODELS, PAPER_MODELS, build_model
from repro.pipeline.tasks import extract_tasks


class TestRegistry:
    def test_extension_models_disjoint_from_paper(self):
        assert not set(EXTENSION_MODELS) & set(PAPER_MODELS)

    @pytest.mark.parametrize("name", EXTENSION_MODELS)
    def test_builds(self, name):
        graph = build_model(name)
        graph.infer_shapes()
        (out,) = graph.output_nodes()
        assert out.output_shape == (1, 1000)


class TestPublishedNumbers:
    @pytest.mark.parametrize(
        "name,params_m",
        [
            ("vgg-19", 143.7),
            ("resnet-34", 21.8),
            ("mobilenet-v2", 3.5),
        ],
    )
    def test_param_counts(self, name, params_m):
        params = build_model(name).total_params() / 1e6
        assert params == pytest.approx(params_m, rel=0.03)

    def test_vgg19_flops_above_vgg16(self):
        assert (
            build_model("vgg-19").total_flops()
            > build_model("vgg-16").total_flops()
        )

    def test_mobilenet_v2_flops(self):
        # ~0.3 GMACs = ~0.6 GFLOPs at 224x224
        flops = build_model("mobilenet-v2").total_flops() / 1e9
        assert flops == pytest.approx(0.62, rel=0.1)


class TestStructure:
    def test_resnet34_has_16_blocks(self):
        graph = build_model("resnet-34")
        adds = [n for n in graph if n.op == "add"]
        assert len(adds) == 3 + 4 + 6 + 3

    def test_mobilenet_v2_residuals_only_on_matching_shapes(self):
        graph = build_model("mobilenet-v2")
        graph.infer_shapes()
        for node in graph:
            if node.op == "add":
                a, b = node.inputs
                assert graph[a].output_shape == graph[b].output_shape

    def test_mobilenet_v2_task_count(self):
        # deduplicated conv+dw tasks
        tasks = extract_tasks(build_model("mobilenet-v2"))
        assert len(tasks) == 30

    @pytest.mark.parametrize("name", EXTENSION_MODELS)
    def test_fusion_covers_graph(self, name):
        graph = build_model(name)
        groups = fuse_graph(graph)
        covered = sorted(i for g in groups for i in g.node_ids)
        assert covered == list(range(len(graph)))
