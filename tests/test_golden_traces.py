"""Golden-trace regression tests for the main tuner arms.

Each arm is run on a fixed, tiny task with a pinned seed and its full
measurement trace (config indices, rounded GFLOPS, error flags) plus
its structured event stream is compared against a committed fixture
under ``tests/golden/``.  Any change to proposal order, RNG
consumption, noise application, event emission, or record bookkeeping
shows up here as a diff — deliberate behaviour changes regenerate the
fixtures with::

    pytest tests/test_golden_traces.py --update-golden

GFLOPS are rounded to 6 decimals so the traces are robust to
floating-point reassociation across library versions while still
pinning any real numerical change.
"""

import json
from pathlib import Path

import pytest

from repro.core import INCREMENTAL_REFIT_ARMS, make_tuner
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload

GOLDEN_DIR = Path(__file__).parent / "golden"

#: fixed scenario per arm: one tiny dense task, pinned seeds, no
#: early stopping, cheap policy parameters
ARMS = {
    "autotvm": dict(
        batch_size=8, init_size=8, sa_chains=8, sa_steps=10
    ),
    "bted": dict(batch_size=8, init_size=8, batch_candidates=32),
    "bted+as": dict(
        batch_size=8, init_size=8, batch_candidates=32, adaptive_keep=0.5
    ),
    "bted+bao": dict(init_size=8, batch_candidates=32, num_batches=2),
    "bted+bao+as": dict(
        init_size=8, batch_candidates=32, num_batches=2,
        measure_batch_size=4, adaptive_keep=0.5,
    ),
    "bted+bao+droplet": dict(
        init_size=8, batch_candidates=32, num_batches=2, finish_after=12
    ),
    "droplet": dict(batch_size=8, init_size=8),
}
N_TRIAL = 24
TUNER_SEED = 11
ENV_SEED = 7

#: arms that also get a pipelined + warm-started-refit golden: the
#: speculative loop and incremental ensemble fits follow a different
#: (but equally pinned) trajectory, including the speculation schedule
PIPELINED_ARMS = sorted(set(ARMS) & INCREMENTAL_REFIT_ARMS)


def _task() -> SimulatedTask:
    return SimulatedTask(
        DenseWorkload(batch=1, in_features=64, out_features=48),
        seed=ENV_SEED,
    )


def _run_trace(arm: str, pipeline: bool = False) -> dict:
    events = []
    kwargs = dict(ARMS[arm])
    if pipeline:
        kwargs["refit"] = "incremental"
    tuner = make_tuner(arm, _task(), seed=TUNER_SEED, **kwargs)
    result = tuner.tune(
        n_trial=N_TRIAL,
        early_stopping=None,
        on_event=[lambda t, e: events.append(e)],
        pipeline=pipeline,
    )
    return {
        "arm": arm,
        "task": result.task_name,
        "tuner_seed": TUNER_SEED,
        "env_seed": ENV_SEED,
        "n_trial": N_TRIAL,
        "records": [
            {
                "step": r.step,
                "config_index": r.config_index,
                "gflops": round(r.gflops, 6),
                "error": bool(r.error),
            }
            for r in result.records
        ],
        "events": [
            {"kind": e.kind, "step": e.step} for e in events
        ],
        "best_index": result.best_index,
        "best_gflops": round(result.best_gflops, 6),
    }


def _golden_path(arm: str, pipeline: bool = False) -> Path:
    suffix = "-incremental" if pipeline else ""
    return GOLDEN_DIR / f"trace-{arm.replace('+', '_')}{suffix}.json"


def _check_golden(trace: dict, path: Path, update_golden) -> None:
    if update_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(trace, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"updated golden fixture {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        "pytest tests/test_golden_traces.py --update-golden"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert trace == golden


@pytest.mark.parametrize("arm", sorted(ARMS))
def test_golden_trace(arm, update_golden):
    _check_golden(_run_trace(arm), _golden_path(arm), update_golden)


@pytest.mark.parametrize("arm", PIPELINED_ARMS)
def test_golden_trace_pipelined_incremental(arm, update_golden):
    """The speedup mode's own goldens: pipeline=True, refit='incremental'.

    Pins the warm-started-refit trajectory *and* the speculation
    schedule (``speculation_resolved`` events appear in the stream).
    """
    trace = _run_trace(arm, pipeline=True)
    _check_golden(trace, _golden_path(arm, pipeline=True), update_golden)


def test_golden_fixtures_complete():
    """Every arm has a committed fixture (catches forgotten updates)."""
    missing = [arm for arm in ARMS if not _golden_path(arm).exists()]
    missing += [
        f"{arm}-incremental"
        for arm in PIPELINED_ARMS
        if not _golden_path(arm, pipeline=True).exists()
    ]
    assert not missing, f"missing golden fixtures for {missing}"
