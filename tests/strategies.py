"""Shared hypothesis strategies for property-based tests.

Generates random (but always *valid*) workloads, configuration spaces,
and layer graphs so invariants can be checked across the whole input
domain rather than on hand-picked cases.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.hardware.faults import FaultKind, FaultModel, RetryPolicy
from repro.nn.workloads import (
    Conv2DWorkload,
    DenseWorkload,
    DepthwiseConv2DWorkload,
)
from repro.space.knobs import BoolKnob, OtherKnob, ReorderKnob, SplitKnob
from repro.space.space import ConfigSpace

# keep extents small so spaces stay cheap to probe exhaustively
_extent = st.integers(min_value=1, max_value=36)
_channels = st.sampled_from([1, 2, 3, 4, 8, 12, 16])
_spatial = st.sampled_from([4, 6, 7, 8, 12, 14, 16])
_kernel = st.sampled_from([1, 3, 5])


@st.composite
def conv2d_workloads(draw) -> Conv2DWorkload:
    kernel = draw(_kernel)
    size = draw(_spatial)
    stride = draw(st.sampled_from([1, 2]))
    pad = draw(st.integers(0, kernel // 2 + 1))
    # guarantee a positive output size
    if size + 2 * pad < kernel:
        pad = kernel  # over-pad; always valid
    return Conv2DWorkload(
        batch=draw(st.sampled_from([1, 2])),
        in_channels=draw(_channels),
        out_channels=draw(_channels),
        height=size,
        width=size,
        kernel_h=kernel,
        kernel_w=kernel,
        stride_h=stride,
        stride_w=stride,
        pad_h=pad,
        pad_w=pad,
    )


@st.composite
def depthwise_workloads(draw) -> DepthwiseConv2DWorkload:
    kernel = draw(_kernel)
    size = draw(_spatial)
    pad = kernel // 2
    return DepthwiseConv2DWorkload(
        batch=1,
        channels=draw(_channels),
        height=size,
        width=size,
        kernel_h=kernel,
        kernel_w=kernel,
        stride_h=draw(st.sampled_from([1, 2])),
        stride_w=1,
        pad_h=pad,
        pad_w=pad,
    )


@st.composite
def dense_workloads(draw) -> DenseWorkload:
    return DenseWorkload(
        batch=draw(st.sampled_from([1, 2, 4])),
        in_features=draw(st.integers(1, 64)),
        out_features=draw(st.integers(1, 64)),
    )


def workloads():
    """Any tunable workload."""
    return st.one_of(conv2d_workloads(), depthwise_workloads(),
                     dense_workloads())


@st.composite
def knobs(draw, index: int):
    kind = draw(st.integers(0, 3))
    name = f"knob{index}"
    if kind == 0:
        return SplitKnob(name, draw(_extent), draw(st.integers(2, 3)))
    if kind == 1:
        n = draw(st.integers(1, 6))
        return OtherKnob(name, list(range(n)))
    if kind == 2:
        return BoolKnob(name)
    return ReorderKnob(name, ["a", "b", "c"], max_candidates=6)


@st.composite
def fault_models(draw, max_rate: float = 0.5) -> FaultModel:
    """A random deterministic fault schedule (rate 0 = fault-free)."""
    kinds = tuple(
        draw(
            st.lists(
                st.sampled_from(list(FaultKind)),
                min_size=1,
                max_size=len(FaultKind),
                unique=True,
            )
        )
    )
    return FaultModel(
        rate=draw(st.floats(0.0, max_rate, allow_nan=False)),
        seed=draw(st.integers(0, 2**16)),
        kinds=kinds,
    )


@st.composite
def retry_policies(draw) -> RetryPolicy:
    """A random retry policy (always with zero real sleeping)."""
    return RetryPolicy(
        max_retries=draw(st.integers(0, 5)),
        backoff_s=0.0,
        multiplier=draw(st.floats(1.0, 4.0, allow_nan=False)),
    )


@st.composite
def config_spaces(draw) -> ConfigSpace:
    """A random small config space (size kept below ~50k points)."""
    space = ConfigSpace("random")
    n_knobs = draw(st.integers(1, 4))
    for i in range(n_knobs):
        space.add_knob(draw(knobs(i)))
        if len(space) > 50_000:
            break
    return space
