"""Tests for repro.core.bootstrap (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapEnsemble, bootstrap_sample


def toy_data(n=80, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = 5.0 - (X**2).sum(axis=1) + 0.05 * rng.normal(size=n)
    return X, y


class TestBootstrapEnsemble:
    def test_fit_predict(self):
        X, y = toy_data()
        ensemble = BootstrapEnsemble(gamma=3, seed=0).fit(X, y)
        pred = ensemble.predict_sum(X)
        assert pred.shape == (80,)
        assert np.corrcoef(pred, y)[0, 1] > 0.7

    def test_sum_is_gamma_times_mean(self):
        X, y = toy_data()
        ensemble = BootstrapEnsemble(gamma=4, seed=0).fit(X, y)
        assert np.allclose(
            ensemble.predict_sum(X), 4 * ensemble.predict_mean(X)
        )

    def test_members_disagree(self):
        """Bootstrap resamples differ, so member predictions must too —
        that disagreement is the whole point of bagging (Sec. II-C)."""
        X, y = toy_data()
        ensemble = BootstrapEnsemble(gamma=2, seed=0).fit(X, y)
        std = ensemble.predict_std(X)
        assert std.max() > 0

    def test_deterministic(self):
        X, y = toy_data()
        a = BootstrapEnsemble(gamma=2, seed=7).fit(X, y).predict_sum(X)
        b = BootstrapEnsemble(gamma=2, seed=7).fit(X, y).predict_sum(X)
        assert np.allclose(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BootstrapEnsemble(gamma=2).predict_sum(np.ones((2, 3)))
        with pytest.raises(RuntimeError):
            BootstrapEnsemble(gamma=2).predict_std(np.ones((2, 3)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            BootstrapEnsemble(gamma=2).fit(np.empty((0, 3)), np.empty(0))

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            BootstrapEnsemble(gamma=0)

    def test_custom_model_factory(self):
        calls = []

        class ConstantModel:
            def fit(self, X, y):
                calls.append(len(y))
                self.value = float(np.mean(y))
                return self

            def predict(self, X):
                return np.full(len(X), self.value)

        X, y = toy_data(n=30)
        ensemble = BootstrapEnsemble(
            gamma=3, model_factory=ConstantModel, seed=0
        ).fit(X, y)
        assert len(calls) == 3
        assert calls == [30, 30, 30]  # resample cardinality == |X| (Alg. 3)
        assert ensemble.predict_sum(X).shape == (30,)


class TestBootstrapSample:
    def test_picks_argmax_region(self):
        """With a clean quadratic target the chosen candidate must be
        near the optimum."""
        X, y = toy_data(n=150, seed=1)
        candidates = np.random.default_rng(2).uniform(-1, 1, size=(100, 3))
        labels = list(range(1000, 1100))
        chosen = bootstrap_sample(
            X, y, candidates, labels, gamma=2, seed=0
        )
        row = labels.index(chosen)
        dist_to_opt = np.linalg.norm(candidates[row])
        all_dists = np.linalg.norm(candidates, axis=1)
        assert dist_to_opt <= np.quantile(all_dists, 0.25)

    def test_empty_candidates(self):
        X, y = toy_data(n=20)
        with pytest.raises(ValueError):
            bootstrap_sample(X, y, np.empty((0, 3)), [], gamma=2)

    def test_label_mismatch(self):
        X, y = toy_data(n=20)
        with pytest.raises(ValueError):
            bootstrap_sample(X, y, np.ones((3, 3)), [1, 2], gamma=2)

    def test_returns_label_not_row(self):
        X, y = toy_data(n=40)
        candidates = np.random.default_rng(0).uniform(-1, 1, size=(10, 3))
        labels = [90, 91, 92, 93, 94, 95, 96, 97, 98, 99]
        chosen = bootstrap_sample(X, y, candidates, labels, gamma=2, seed=1)
        assert chosen in labels
