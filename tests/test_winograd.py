"""Tests for the Winograd conv2d template (space, cost model, pipeline)."""

import numpy as np
import pytest

from repro.hardware.measure import SimulatedTask
from repro.hardware.resources import ResourceError
from repro.nn.workloads import Conv2DWorkload, DepthwiseConv2DWorkload
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler
from repro.pipeline.records import RecordStore, TuningRecord
from repro.pipeline.tasks import extract_tasks
from repro.space.templates import (
    TemplateError,
    available_templates,
    build_space,
    winograd_applicable,
)


def eligible_wl() -> Conv2DWorkload:
    return Conv2DWorkload(1, 32, 32, 28, 28, 3, 3, pad_h=1, pad_w=1)


class TestEligibility:
    def test_3x3_stride1_eligible(self):
        assert winograd_applicable(eligible_wl())

    def test_strided_not_eligible(self):
        wl = Conv2DWorkload(1, 32, 32, 28, 28, 3, 3, 2, 2, 1, 1)
        assert not winograd_applicable(wl)

    def test_1x1_not_eligible(self):
        assert not winograd_applicable(Conv2DWorkload(1, 32, 32, 28, 28, 1, 1))

    def test_grouped_not_eligible(self):
        wl = Conv2DWorkload(1, 32, 32, 28, 28, 3, 3, pad_h=1, pad_w=1,
                            groups=4)
        assert not winograd_applicable(wl)

    def test_depthwise_not_eligible(self):
        wl = DepthwiseConv2DWorkload(1, 32, 28, 28, 3, 3, 1, 1, 1, 1)
        assert not winograd_applicable(wl)

    def test_available_templates(self):
        assert available_templates(eligible_wl()) == ("direct", "winograd")
        assert available_templates(
            Conv2DWorkload(1, 8, 8, 8, 8, 1, 1)
        ) == ("direct",)


class TestWinogradSpace:
    def test_knobs(self):
        space = build_space(eligible_wl(), template="winograd")
        names = [k.name for k in space.knobs]
        assert names[:3] == ["tile_k", "tile_p", "tile_rc"]

    def test_rejects_ineligible(self):
        with pytest.raises(TemplateError):
            build_space(
                Conv2DWorkload(1, 8, 8, 8, 8, 1, 1), template="winograd"
            )

    def test_rejects_unknown_template(self):
        with pytest.raises(TemplateError):
            build_space(eligible_wl(), template="im2col")

    def test_tile_p_extent_counts_output_tiles(self):
        space = build_space(eligible_wl(), template="winograd")
        assert space.knob("tile_p").extent == 14 * 14  # ceil(28/2)^2


class TestWinogradCostModel:
    def test_profiles_are_sane(self):
        task = SimulatedTask(eligible_wl(), seed=0, template="winograd")
        ok = 0
        for idx in task.space.sample(150, seed=0):
            try:
                profile = task.profile_of(int(idx))
            except ResourceError:
                continue
            ok += 1
            assert profile.gflops > 0
            assert np.isfinite(profile.time_s)
        assert ok > 30

    def test_winograd_can_beat_direct_on_big_3x3(self):
        """With 2.25x fewer multiplies, the best Winograd schedule should
        outperform the best direct schedule on a compute-bound 3x3."""
        wl = Conv2DWorkload(1, 256, 256, 28, 28, 3, 3, pad_h=1, pad_w=1)
        best = {}
        for template in ("direct", "winograd"):
            task = SimulatedTask(wl, seed=1, template=template)
            values = [
                task.true_gflops(int(i))
                for i in task.space.sample(400, seed=0)
            ]
            best[template] = max(values)
        assert best["winograd"] > best["direct"]

    def test_template_mismatch_raises(self):
        task = SimulatedTask(eligible_wl(), seed=0, template="winograd")
        with pytest.raises(ValueError):
            task.model.profile(
                task.workload, {"tile_k": (1, 1, 1, 32)}, template="im2col"
            )

    def test_different_template_different_terrain(self):
        direct = SimulatedTask(eligible_wl(), seed=0, template="direct")
        wino = SimulatedTask(eligible_wl(), seed=0, template="winograd")
        assert direct.space.feature_dim != wino.space.feature_dim or True
        # names distinguish the tasks
        assert direct.space.name != wino.space.name


class TestPipelineIntegration:
    def test_extract_with_winograd_adds_tasks(self):
        graph = build_model("resnet-18")
        plain = extract_tasks(graph)
        extended = extract_tasks(graph, include_winograd=True)
        assert len(extended) > len(plain)
        wino = [t for t in extended if t.template == "winograd"]
        assert wino
        for task in wino:
            assert winograd_applicable(task.workload)

    def test_task_ids_still_sequential(self):
        graph = build_model("resnet-18")
        tasks = extract_tasks(graph, include_winograd=True)
        assert [t.task_id for t in tasks] == list(range(len(tasks)))

    def test_compiler_picks_faster_template(self):
        from repro.nn.graph import GraphBuilder

        b = GraphBuilder("m")
        b.input((1, 32, 28, 28))
        b.conv2d("c1", 32, kernel=(3, 3), padding=(1, 1))
        b.relu("r1")
        graph = b.graph

        single = DeploymentCompiler(graph, env_seed=9)
        both = DeploymentCompiler(graph, env_seed=9, include_winograd=True)
        assert len(both.tasks) == 2

        compiled_single = single.tune("random", n_trial=64,
                                      early_stopping=None)
        compiled_both = both.tune("random", n_trial=64, early_stopping=None)
        # choosing the best of two templates can never be slower
        assert compiled_both.base_latency_ms <= (
            compiled_single.base_latency_ms + 1e-9
        )

    def test_records_roundtrip_with_template(self, tmp_path):
        record = TuningRecord(eligible_wl(), 5, 10.0, template="winograd")
        store = RecordStore()
        store.add(record)
        assert store.best_for(eligible_wl()) is None  # direct namespace
        assert store.best_for(eligible_wl(), template="winograd") == record
        path = tmp_path / "r.jsonl"
        store.save(path)
        loaded = RecordStore.load(path)
        assert loaded.best_for(
            eligible_wl(), template="winograd"
        ).config_index == 5
