"""Coverage for small behaviours not exercised elsewhere."""

import numpy as np
import pytest

from repro.experiments.runner import format_table
from repro.hardware.measure import Measurer
from repro.space.knobs import OtherKnob
from repro.space.space import ConfigSpace


class TestFormatTableEdges:
    def test_single_column(self):
        text = format_table(["only"], [["a"], ["bb"]])
        assert text.splitlines()[0].strip() == "only"

    def test_no_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # header + rule

    def test_wide_cells_set_width(self):
        text = format_table(["x"], [["wide-cell-value"]])
        assert "wide-cell-value" in text


class TestConfigEntityCaching:
    def test_knob_indices_cached(self):
        space = ConfigSpace()
        space.add_knob(OtherKnob("a", [0, 1, 2]))
        entity = space.get(2)
        first = entity.knob_indices
        assert entity.knob_indices is first

    def test_values_cached(self):
        space = ConfigSpace()
        space.add_knob(OtherKnob("a", [0, 1, 2]))
        entity = space.get(1)
        assert entity.values is entity.values


class TestIterationGuard:
    def test_huge_space_refuses_iteration(self, small_task):
        if len(small_task.space) <= 10_000_000:
            pytest.skip("fixture space too small for the guard")
        with pytest.raises(RuntimeError, match="refusing"):
            iter(small_task.space)

    def test_guard_threshold_on_template_space(self):
        from repro.nn.workloads import Conv2DWorkload
        from repro.space.templates import build_space

        space = build_space(
            Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
        )
        assert len(space) > 10_000_000
        with pytest.raises(RuntimeError):
            iter(space)


class TestRepeatsReduceNoise:
    def test_more_repeats_tighter_measurements(self, small_task):
        idx = next(
            int(i)
            for i in small_task.space.sample(100, seed=0)
            if small_task.true_gflops(int(i)) > 0
        )
        truth = small_task.true_gflops(idx)

        def spread(repeats, n=30):
            measurer = Measurer(small_task, seed=1, repeats=repeats)
            samples = [measurer.measure_one(idx).gflops for _ in range(n)]
            return np.std(samples) / truth

        assert spread(10) < spread(1)


class TestTransferRetention:
    def test_keeps_the_best_samples(self):
        from repro.learning.transfer import TransferHistory

        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        y = np.linspace(1.0, 100.0, 100)
        history = TransferHistory(max_per_task=10)
        history.add_task("t", X, y)
        _, targets, _ = history.training_data(4)
        # kept samples are the 10 largest, normalized by the max
        assert np.allclose(
            np.sort(targets), np.linspace(91, 100, 10) / 100.0
        )
