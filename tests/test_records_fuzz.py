"""Fuzz/robustness tests for record-log loading.

The record file is the crash-recovery surface of a tuning run, so
loading must never silently corrupt the best-config query: a torn final
line (the crash signature) is dropped with a warning, while any other
malformed input raises a clear :class:`ValueError` naming the line.
"""

import json
import logging

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pipeline.records import (
    RECORD_VERSION,
    RecordStore,
    TuningRecord,
    workload_from_dict,
)
from repro.nn.workloads import DenseWorkload

from tests.strategies import workloads

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _record(workload=None, index=3, gflops=10.0, error=""):
    return TuningRecord(
        workload=workload
        or DenseWorkload(batch=1, in_features=8, out_features=8),
        config_index=index,
        gflops=gflops,
        tuner_name="bted",
        error=error,
    )


def _write(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestTornFinalLine:
    def test_truncated_final_line_is_dropped_with_warning(
        self, tmp_path, caplog
    ):
        path = tmp_path / "records.jsonl"
        good = [_record(index=i, gflops=float(i + 1)) for i in range(3)]
        lines = [r.to_json() for r in good]
        lines.append(lines[-1][: len(lines[-1]) // 2])  # torn mid-append
        _write(path, lines)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.records"):
            store = RecordStore.load(path)
        assert len(store) == 3
        assert any("torn" in r.message for r in caplog.records)
        best = store.best_for(good[0].workload)
        assert best is not None and best.gflops == 3.0

    def test_torn_line_in_middle_raises_with_line_number(self, tmp_path):
        path = tmp_path / "records.jsonl"
        record = _record()
        _write(path, [record.to_json(), '{"v": 1, "wor', record.to_json()])
        with pytest.raises(ValueError, match=r"records\.jsonl:2"):
            RecordStore.load(path)

    def test_empty_and_whitespace_files_load_empty(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text("", encoding="utf-8")
        assert len(RecordStore.load(path)) == 0
        path.write_text("\n\n   \n", encoding="utf-8")
        assert len(RecordStore.load(path)) == 0

    def test_single_torn_line_loads_empty(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"v": 1, "work', encoding="utf-8")
        assert len(RecordStore.load(path)) == 0


class TestMalformedRecords:
    def test_unknown_workload_kind_raises(self, tmp_path):
        data = json.loads(_record().to_json())
        data["workload"]["kind"] = "conv5d_hologram"
        path = tmp_path / "records.jsonl"
        _write(path, [json.dumps(data), _record().to_json()])
        with pytest.raises(ValueError, match="conv5d_hologram"):
            RecordStore.load(path)

    def test_missing_field_raises_value_error(self):
        data = json.loads(_record().to_json())
        del data["config_index"]
        with pytest.raises(ValueError, match="malformed record"):
            TuningRecord.from_json(json.dumps(data))

    def test_malformed_workload_fields_raise_value_error(self):
        data = json.loads(_record().to_json())
        data["workload"]["no_such_field"] = 7
        with pytest.raises(ValueError, match="workload fields"):
            TuningRecord.from_json(json.dumps(data))

    def test_non_object_line_raises_value_error(self):
        with pytest.raises(ValueError, match="not a JSON object"):
            TuningRecord.from_json("[1, 2, 3]")

    def test_future_version_raises_value_error(self, tmp_path):
        data = json.loads(_record().to_json())
        data["v"] = RECORD_VERSION + 1
        path = tmp_path / "records.jsonl"
        _write(path, [json.dumps(data), _record().to_json()])
        with pytest.raises(ValueError, match="version"):
            RecordStore.load(path)

    def test_pre_version_records_still_load(self):
        data = json.loads(_record().to_json())
        del data["v"]  # a record written before the version field
        loaded = TuningRecord.from_json(json.dumps(data))
        assert loaded == _record()

    def test_workload_from_dict_rejects_missing_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            workload_from_dict({"batch": 1})


class TestDuplicatesAndQueries:
    def test_duplicate_records_round_trip(self, tmp_path):
        record = _record(gflops=5.0)
        store = RecordStore()
        store.extend([record, record, record])
        path = tmp_path / "records.jsonl"
        store.save(path)
        loaded = RecordStore.load(path)
        assert len(loaded) == 3
        assert loaded.best_for(record.workload) == record

    def test_errors_never_shadow_best(self, tmp_path):
        workload = DenseWorkload(batch=1, in_features=8, out_features=8)
        store = RecordStore()
        store.add(_record(workload, index=1, gflops=4.0))
        store.add(_record(workload, index=2, gflops=0.0,
                          error="injected timeout"))
        path = tmp_path / "records.jsonl"
        store.save(path)
        loaded = RecordStore.load(path)
        assert loaded.best_for(workload).config_index == 1

    @given(
        workload=workloads(),
        indices=st.lists(st.integers(0, 10_000), min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
    )
    @COMMON
    def test_round_trip_property(self, tmp_path_factory, workload, indices,
                                 seed):
        store = RecordStore()
        for k, idx in enumerate(indices):
            store.add(
                _record(
                    workload,
                    index=idx,
                    gflops=float((seed + k) % 97) / 7.0,
                    error="boom" if (seed + k) % 5 == 0 else "",
                )
            )
        path = tmp_path_factory.mktemp("rt") / "records.jsonl"
        store.save(path)
        loaded = RecordStore.load(path)
        assert list(loaded) == list(store)
        assert loaded.best_for(workload) == store.best_for(workload)
