"""Tests for repro.hardware.resources: occupancy mechanics."""

import pytest

from repro.hardware.device import GTX_1080_TI
from repro.hardware.resources import (
    BlockRequirements,
    ResourceError,
    compute_occupancy,
    validate_block,
)


def req(threads=256, smem=0, regs=32) -> BlockRequirements:
    return BlockRequirements(
        threads=threads, shared_mem_bytes=smem, registers_per_thread=regs
    )


class TestValidateBlock:
    def test_ok(self):
        validate_block(GTX_1080_TI, req())

    def test_too_many_threads(self):
        with pytest.raises(ResourceError, match="threads/block"):
            validate_block(GTX_1080_TI, req(threads=2048))

    def test_smem_overflow(self):
        with pytest.raises(ResourceError, match="shared memory"):
            validate_block(GTX_1080_TI, req(smem=64 * 1024))

    def test_register_overflow(self):
        with pytest.raises(ResourceError, match="registers/thread"):
            validate_block(GTX_1080_TI, req(regs=300))

    def test_register_file_exhaustion(self):
        with pytest.raises(ResourceError, match="register file"):
            validate_block(GTX_1080_TI, req(threads=1024, regs=255))

    def test_invalid_requirements(self):
        with pytest.raises(ValueError):
            BlockRequirements(threads=0, shared_mem_bytes=0,
                              registers_per_thread=0)


class TestOccupancy:
    def test_thread_limited(self):
        occ = compute_occupancy(GTX_1080_TI, req(threads=1024, regs=16))
        assert occ.blocks_per_sm == 2  # 2048 / 1024
        assert occ.warp_occupancy == pytest.approx(1.0)

    def test_small_blocks_hit_block_limit(self):
        occ = compute_occupancy(GTX_1080_TI, req(threads=32, regs=16))
        assert occ.blocks_per_sm == 32
        assert occ.limiter == "blocks"
        assert occ.warp_occupancy == pytest.approx(0.5)

    def test_smem_limited(self):
        occ = compute_occupancy(GTX_1080_TI, req(threads=64, smem=40 * 1024,
                                                 regs=16))
        assert occ.limiter == "smem"
        assert occ.blocks_per_sm == 2  # 96KB / 40KB

    def test_register_limited(self):
        occ = compute_occupancy(GTX_1080_TI, req(threads=256, regs=128))
        # 65536 / (256*128) = 2 blocks
        assert occ.limiter == "regs"
        assert occ.blocks_per_sm == 2

    def test_more_registers_reduce_occupancy(self):
        low = compute_occupancy(GTX_1080_TI, req(threads=256, regs=32))
        high = compute_occupancy(GTX_1080_TI, req(threads=256, regs=128))
        assert high.warp_occupancy <= low.warp_occupancy

    def test_partial_warp_rounds_up(self):
        # 48 threads occupy 2 warps of residency
        occ = compute_occupancy(GTX_1080_TI, req(threads=48, regs=16))
        assert occ.active_warps % 2 == 0

    def test_active_warps_capped(self):
        occ = compute_occupancy(GTX_1080_TI, req(threads=64, regs=1))
        assert occ.active_warps <= GTX_1080_TI.max_warps_per_sm
