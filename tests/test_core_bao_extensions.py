"""Tests for the BAO extensions: batch proposals and UCB acquisition."""

import numpy as np
import pytest

from repro.core.bao import BaoOptimizer, BaoSettings
from repro.core.tuners.btedbao import BTEDBAOTuner


def measured_state(task, n=48, seed=0):
    indices = task.space.sample(n, seed=seed)
    feats = task.space.feature_matrix(indices)
    scores = np.array([task.true_gflops(int(i)) for i in indices])
    best = int(indices[int(np.argmax(scores))])
    return feats, scores, best


class TestProposeBatch:
    def test_returns_k_distinct(self, small_task):
        feats, scores, best = measured_state(small_task)
        bao = BaoOptimizer(small_task.space, seed=0)
        batch = bao.propose_batch(feats, scores, best_index=best, k=8)
        assert len(batch) == 8
        assert len(set(batch)) == 8

    def test_k1_matches_propose(self, small_task):
        feats, scores, best = measured_state(small_task)
        single = BaoOptimizer(small_task.space, seed=3).propose(
            feats, scores, best_index=best
        )
        batch = BaoOptimizer(small_task.space, seed=3).propose_batch(
            feats, scores, best_index=best, k=1
        )
        assert batch == [single]

    def test_batch_is_score_ordered_head(self, small_task):
        feats, scores, best = measured_state(small_task)
        a = BaoOptimizer(small_task.space, seed=5)
        top3 = a.propose_batch(feats, scores, best_index=best, k=3)
        b = BaoOptimizer(small_task.space, seed=5)
        top8 = b.propose_batch(feats, scores, best_index=best, k=8)
        assert top8[:3] == top3

    def test_invalid_k(self, small_task):
        feats, scores, best = measured_state(small_task)
        bao = BaoOptimizer(small_task.space, seed=0)
        with pytest.raises(ValueError):
            bao.propose_batch(feats, scores, best_index=best, k=0)


class TestUcbAcquisition:
    def test_settings_validation(self):
        with pytest.raises(ValueError):
            BaoSettings(acquisition="ei")
        with pytest.raises(ValueError):
            BaoSettings(acquisition="ucb", gamma=1)
        with pytest.raises(ValueError):
            BaoSettings(kappa=-1.0)

    def test_ucb_proposes_valid_config(self, small_task):
        feats, scores, best = measured_state(small_task)
        bao = BaoOptimizer(
            small_task.space,
            settings=BaoSettings(acquisition="ucb", kappa=2.0),
            seed=0,
        )
        chosen = bao.propose(feats, scores, best_index=best)
        assert 0 <= chosen < len(small_task.space)

    def test_ucb_can_differ_from_sum(self, small_task):
        feats, scores, best = measured_state(small_task, n=64, seed=2)
        sum_choice = BaoOptimizer(
            small_task.space, settings=BaoSettings(acquisition="sum"), seed=9
        ).propose(feats, scores, best_index=best)
        ucb_choice = BaoOptimizer(
            small_task.space,
            settings=BaoSettings(acquisition="ucb", kappa=50.0),
            seed=9,
        ).propose(feats, scores, best_index=best)
        # with a huge kappa the uncertainty term should change the pick
        # (identical picks are possible but exceedingly unlikely here)
        assert sum_choice != ucb_choice


class TestBatchTuner:
    def test_batched_tuning_runs(self, small_task):
        tuner = BTEDBAOTuner(
            small_task,
            seed=0,
            init_size=16,
            batch_candidates=64,
            num_batches=2,
            measure_batch_size=4,
            bao_settings=BaoSettings(neighborhood_size=64),
        )
        result = tuner.tune(n_trial=32, early_stopping=None)
        assert result.num_measurements == 32
        indices = [r.config_index for r in result.records]
        assert len(set(indices)) == len(indices)

    def test_invalid_batch_size(self, small_task):
        with pytest.raises(ValueError):
            BTEDBAOTuner(small_task, measure_batch_size=0)
