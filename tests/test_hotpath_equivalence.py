"""Equivalence pins for the vectorized hot paths.

Every optimization in the hot-path PR must be either bit-identical to
the reference implementation it replaced (vectorized tree predict,
boolean-mask kernel bandwidth, ``np.isin`` visited filtering,
``FeatureCache``) or an explicitly opt-in fast path whose divergence is
bounded by floating-point near-ties (incremental TED).  These tests
check those contracts over random inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bao import BaoOptimizer
from repro.core.bootstrap import BootstrapEnsemble
from repro.core.events import BatchMeasured, BatchProposed, EventLog
from repro.core.ted import rbf_kernel, ted_select
from repro.core.tuners.btedbao import BTEDBAOTuner
from repro.hardware.measure import SimulatedTask
from repro.learning.tree import RegressionTree
from repro.nn.workloads import DenseWorkload
from repro.space.space import FeatureCache
from repro.utils.mathx import pairwise_sq_dists

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TASK = SimulatedTask(
    DenseWorkload(batch=1, in_features=64, out_features=48), seed=3
)


class TestTreePredictEquivalence:
    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(2, 120),
        d=st.integers(1, 8),
        max_depth=st.integers(1, 9),
        n_test=st.integers(1, 200),
    )
    @PROPERTY
    def test_vectorized_predict_matches_reference(
        self, seed, n, d, max_depth, n_test
    ):
        rng = np.random.default_rng(seed)
        X = rng.random((n, d))
        y = rng.random(n)
        # duplicate feature values exercise ties at split thresholds
        if n > 4:
            X[: n // 2] = np.round(X[: n // 2], 1)
        tree = RegressionTree(max_depth=max_depth, seed=0).fit(X, y)
        X_test = rng.random((n_test, d))
        fast = tree.predict(X_test)
        ref = tree.predict_reference(X_test)
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)

    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(2, 150),
        max_depth=st.integers(1, 10),
    )
    @PROPERTY
    def test_iterative_depth_matches_recursive_reference(
        self, seed, n, max_depth
    ):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 5))
        y = rng.random(n)
        tree = RegressionTree(max_depth=max_depth, seed=1).fit(X, y)

        def recursive_depth(node_id):
            node = tree._nodes[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(
                recursive_depth(node.left), recursive_depth(node.right)
            )

        assert tree.depth == recursive_depth(0)
        assert tree.depth <= max_depth


def _exact_scores(K, picks, mu):
    """Reference TED scores after deflating ``K`` by ``picks`` in order."""
    K = K.copy()
    for x in picks:
        kx = K[:, x]
        K = K - np.outer(kx, kx) / (kx[x] + mu)
    col_norms = np.einsum("ij,ij->j", K, K)
    return col_norms / (np.diag(K) + mu)


class TestTedFastEquivalence:
    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(8, 120),
        d=st.integers(1, 6),
        m=st.integers(1, 16),
        mu=st.floats(1e-3, 10.0),
    )
    @PROPERTY
    def test_fast_matches_exact_or_diverges_on_near_tie(
        self, seed, n, d, m, mu
    ):
        rng = np.random.default_rng(seed)
        features = rng.random((n, d))
        m = min(m, n)
        exact = ted_select(features, m=m, mu=mu, method="exact")
        fast = ted_select(features, m=m, mu=mu, method="fast")
        assert len(fast) == len(exact) == m
        assert len(set(fast)) == m
        if fast == exact:
            return
        # the first divergence must be a floating-point near-tie: the
        # exact-path scores of the two picks agree to ~1e-9 relative
        step = next(i for i, (a, b) in enumerate(zip(exact, fast)) if a != b)
        K = rbf_kernel(features)
        scores = _exact_scores(K, exact[:step], mu)
        gap = abs(scores[exact[step]] - scores[fast[step]])
        tol = 1e-9 * max(1.0, abs(scores[exact[step]]))
        assert gap <= tol, f"fast TED diverged on a non-tie (gap={gap})"

    def test_fast_falls_back_to_exact_for_nonpositive_mu(self):
        rng = np.random.default_rng(0)
        features = rng.random((40, 4))
        assert ted_select(features, m=8, mu=0.0, method="fast") == ted_select(
            features, m=8, mu=0.0, method="exact"
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            ted_select(np.ones((4, 2)), m=2, method="bogus")


class TestKernelBandwidthEquivalence:
    @given(seed=st.integers(0, 10**6), n=st.integers(2, 60))
    @PROPERTY
    def test_median_bandwidth_matches_triu_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 3))
        # reference: the pre-PR triu_indices median heuristic
        sq = pairwise_sq_dists(X, X)
        iu = np.triu_indices(n, k=1)
        positive = sq[iu][sq[iu] > 0]
        if positive.size == 0:
            return
        bandwidth = float(np.sqrt(np.median(positive)))
        assert np.array_equal(
            rbf_kernel(X), rbf_kernel(X, bandwidth=bandwidth)
        )


class TestFeatureCache:
    @given(
        seed=st.integers(0, 10**6),
        n_batches=st.integers(1, 6),
        capacity=st.integers(1, 16),
    )
    @PROPERTY
    def test_matches_stacked_features_of(self, seed, n_batches, capacity):
        rng = np.random.default_rng(seed)
        cache = FeatureCache(TASK.space, capacity=capacity)
        all_indices = []
        for _ in range(n_batches):
            batch = rng.integers(0, len(TASK.space), size=rng.integers(1, 9))
            cache.extend([int(i) for i in batch])
            all_indices.extend(int(i) for i in batch)
        expected = np.stack([TASK.space.features_of(i) for i in all_indices])
        assert np.array_equal(cache.matrix, expected)
        assert cache.indices == all_indices

    def test_view_is_read_only_and_stable_across_growth(self):
        cache = FeatureCache(TASK.space, capacity=2)
        cache.extend([0, 1])
        view = cache.matrix
        with pytest.raises(ValueError):
            view[0, 0] = 99.0
        frozen = view.copy()
        cache.extend(list(range(2, 40)))  # forces buffer reallocation
        assert np.array_equal(cache.matrix[:2], frozen)
        assert len(cache.matrix) == 40

    def test_append_single(self):
        cache = FeatureCache(TASK.space, capacity=1)
        cache.append(5)
        cache.append(9)
        assert cache.indices == [5, 9]
        assert np.array_equal(cache.matrix[1], TASK.space.features_of(9))


class TestVisitedFiltering:
    @given(
        seed=st.integers(0, 10**6),
        n_candidates=st.integers(1, 60),
        n_visited=st.integers(0, 60),
    )
    @PROPERTY
    def test_ndarray_filter_matches_set_filter(
        self, seed, n_candidates, n_visited
    ):
        rng = np.random.default_rng(seed)
        candidates = rng.integers(0, 100, size=n_candidates)
        visited = sorted(set(rng.integers(0, 100, size=n_visited).tolist()))
        via_array = BaoOptimizer._filter_visited(
            candidates, np.asarray(visited, dtype=np.int64)
        )
        via_set = BaoOptimizer._filter_visited(candidates, set(visited))
        assert np.array_equal(via_array, via_set)

    def test_propose_accepts_sorted_array_visited(self):
        rng = np.random.default_rng(4)
        bao = BaoOptimizer(TASK.space, seed=8)
        measured = list(range(12))
        X = np.stack([TASK.space.features_of(i) for i in measured])
        y = rng.random(len(measured))
        visited_arr = np.asarray(measured, dtype=np.int64)
        pick_arr = bao.propose(X, y, best_index=3, visited=visited_arr)
        bao_set = BaoOptimizer(TASK.space, seed=8)
        pick_set = bao_set.propose(X, y, best_index=3, visited=set(measured))
        assert pick_arr == pick_set


class TestPhaseTimingEvents:
    def test_tuner_stamps_proposal_and_measure_walltime(self):
        log = EventLog()
        tuner = BTEDBAOTuner(
            TASK, seed=2, init_size=4, batch_candidates=16, num_batches=2
        )
        tuner.tune(n_trial=6, early_stopping=None, on_event=[log])
        proposed = log.of_type(BatchProposed)
        measured = log.of_type(BatchMeasured)
        assert proposed and measured
        assert all(e.proposal_s > 0.0 for e in proposed)
        assert all(e.measure_s > 0.0 for e in measured)


class TestEnsembleAccelerationFlags:
    def _data(self, n=40, d=6, seed=0):
        rng = np.random.default_rng(seed)
        return rng.random((n, d)), rng.random(n)

    def test_share_bin_edges_smoke(self):
        X, y = self._data()
        ensemble = BootstrapEnsemble(gamma=2, seed=1, share_bin_edges=True)
        ensemble.fit(X, y)
        scores = ensemble.predict_sum(X)
        assert scores.shape == (len(y),)
        assert np.all(np.isfinite(scores))
        # every member binned against the same shared edges
        edges = [m._edges for m in ensemble._models]
        assert all(e is edges[0] for e in edges)

    def test_parallel_fit_smoke(self):
        X, y = self._data(n=30)
        ensemble = BootstrapEnsemble(gamma=2, seed=1, fit_jobs=2)
        ensemble.fit(X, y)
        scores = ensemble.predict_sum(X)
        assert scores.shape == (len(y),)
        assert np.all(np.isfinite(scores))

    def test_invalid_fit_jobs_rejected(self):
        with pytest.raises(ValueError, match="fit_jobs"):
            BootstrapEnsemble(gamma=2, fit_jobs=0)
