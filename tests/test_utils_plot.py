"""Tests for repro.utils.plot."""

import numpy as np
import pytest

from repro.utils.plot import curve_plot, hbar_chart, sparkline


class TestSparkline:
    def test_length_capped(self):
        line = sparkline(np.arange(1000), width=40)
        assert len(line) == 40

    def test_short_input_kept(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_input_monotone_blocks(self):
        line = sparkline(np.linspace(0, 1, 20))
        assert line[0] == " "
        assert line[-1] == "█"

    def test_constant_input(self):
        line = sparkline(np.ones(10))
        assert len(set(line)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestHbarChart:
    def test_rows_and_values(self):
        chart = hbar_chart({"a": 10.0, "bb": 20.0})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert "10.0" in lines[0]
        assert "20.0" in lines[1]

    def test_baseline_percentages(self):
        chart = hbar_chart({"base": 10.0, "x": 15.0}, baseline="base")
        assert "(150.0%)" in chart

    def test_longest_bar_is_max(self):
        chart = hbar_chart({"small": 1.0, "big": 100.0}, width=20)
        small_line, big_line = chart.splitlines()
        assert big_line.count("█") > small_line.count("█")

    def test_validation(self):
        with pytest.raises(ValueError):
            hbar_chart({})
        with pytest.raises(ValueError):
            hbar_chart({"a": 0.0})


class TestCurvePlot:
    def test_canvas_dimensions(self):
        plot = curve_plot(
            {"a": np.linspace(0, 1, 50)}, height=8, width=30
        )
        lines = plot.splitlines()
        # 8 canvas rows + axis + legend
        assert len(lines) == 10

    def test_legend_names_all_series(self):
        plot = curve_plot(
            {"alpha": [1, 2], "beta": [2, 1]}, height=4, width=10
        )
        assert "alpha" in plot
        assert "beta" in plot

    def test_markers_present(self):
        plot = curve_plot({"a": [0.0, 1.0, 0.5]}, height=5, width=12)
        assert "*" in plot

    def test_ylabel(self):
        plot = curve_plot({"a": [1, 2]}, ylabel="GFLOPS")
        assert plot.splitlines()[0] == "GFLOPS"

    def test_validation(self):
        with pytest.raises(ValueError):
            curve_plot({})
        with pytest.raises(ValueError):
            curve_plot({"a": []})
