"""Tests for experiment result containers' derived quantities."""

import numpy as np
import pytest

from repro.experiments.fig4 import Fig4Result
from repro.experiments.fig5 import Fig5Result
from repro.experiments.table1 import ModelArmStats, Table1Result


class TestFig4Result:
    def make(self):
        return Fig4Result(
            model_name="m",
            num_measurements=4,
            curves={
                (0, "autotvm"): np.array([1.0, 2.0, 2.0, 3.0]),
                (0, "bted"): np.array([1.5, 2.5, 3.0, 3.5]),
            },
        )

    def test_arms_and_layers(self):
        result = self.make()
        assert result.arms() == ["autotvm", "bted"]
        assert result.layers() == [0]

    def test_final_gflops(self):
        assert self.make().final_gflops(0, "bted") == 3.5

    def test_report_filters_checkpoints(self):
        report = self.make().report(checkpoints=(2, 4, 999))
        assert "@2" in report
        assert "@999" not in report


class TestFig5Result:
    def make(self):
        return Fig5Result(
            model_name="m",
            task_ids=[0, 1],
            num_configs={
                (0, "autotvm"): 100.0,
                (1, "autotvm"): 200.0,
                (0, "bted"): 150.0,
                (1, "bted"): 250.0,
            },
            gflops={
                (0, "autotvm"): 10.0,
                (1, "autotvm"): 20.0,
                (0, "bted"): 12.0,
                (1, "bted"): 30.0,
            },
        )

    def test_ratios(self):
        result = self.make()
        assert result.gflops_ratio(0, "bted") == pytest.approx(120.0)
        assert result.gflops_ratio(1, "bted") == pytest.approx(150.0)
        assert result.average_ratio("bted") == pytest.approx(135.0)

    def test_average_configs(self):
        assert self.make().average_configs("bted") == pytest.approx(200.0)

    def test_zero_baseline_is_nan(self):
        result = self.make()
        result.gflops[(0, "autotvm")] = 0.0
        assert np.isnan(result.gflops_ratio(0, "bted"))

    def test_report_has_avg_row(self):
        assert "AVG" in self.make().report()


class TestTable1Result:
    def make(self):
        def stats(lat, var):
            return ModelArmStats(lat, var, [lat], [var])

        return Table1Result(
            cells={
                ("m1", "autotvm"): stats(2.0, 1.0),
                ("m1", "bted+bao"): stats(1.5, 0.25),
                ("m2", "autotvm"): stats(4.0, 2.0),
                ("m2", "bted+bao"): stats(4.0, 1.0),
            },
            models=["m1", "m2"],
            arms=["autotvm", "bted+bao"],
        )

    def test_deltas(self):
        result = self.make()
        assert result.latency_delta_pct("m1", "bted+bao") == pytest.approx(
            -25.0
        )
        assert result.variance_delta_pct("m1", "bted+bao") == pytest.approx(
            -75.0
        )
        assert result.latency_delta_pct("m2", "bted+bao") == 0.0

    def test_average_row(self):
        lat, var = self.make().average_row("bted+bao")
        assert lat == pytest.approx(2.75)
        assert var == pytest.approx(0.625)

    def test_report_contains_models_and_average(self):
        report = self.make().report()
        assert "m1" in report
        assert "Average" in report
        assert "-25.00" in report
