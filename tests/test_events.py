"""Structured tuning events emitted by the tuning loop.

Each decision point of :meth:`Tuner.tune` must surface as a typed
event: proposals, measured batches, incumbent improvements, BAO scope
widening, early stopping, and space exhaustion.  The paper's Fig. 4/5
analyses all read off this stream, so its ordering and payloads are
contractual.
"""

import pytest

from repro.core import make_tuner
from repro.core.bao import BaoSettings
from repro.core.events import (
    BatchMeasured,
    BatchProposed,
    EarlyStopped,
    EventLog,
    IncumbentImproved,
    ScopeWidened,
    SpaceExhausted,
)
from repro.hardware.measure import SimulatedTask
from repro.nn.workloads import DenseWorkload


@pytest.fixture
def tiny_task() -> SimulatedTask:
    """A task whose whole space (180 configs) can be measured in-test."""
    return SimulatedTask(
        DenseWorkload(batch=1, in_features=4, out_features=4), seed=7
    )


def _tune_with_log(arm, task, *, seed=11, n_trial=24, early_stopping=None,
                   **kwargs):
    log = EventLog()
    tuner = make_tuner(arm, task, seed=seed, **kwargs)
    result = tuner.tune(
        n_trial=n_trial, early_stopping=early_stopping, on_event=[log]
    )
    return result, log


class TestEventStream:
    def test_proposal_and_measurement_pair_up(self, dense_task):
        result, log = _tune_with_log("random", dense_task, n_trial=24)
        proposed = log.of_type(BatchProposed)
        measured = log.of_type(BatchMeasured)
        assert len(proposed) == len(measured) >= 1
        for p, m in zip(proposed, measured):
            # step counts measurements completed at emission time
            assert m.step == p.step + len(p.config_indices)
            assert [r.config_index for r in m.results] == list(
                p.config_indices
            )
        # every measured config shows up in a record, in stream order
        streamed = [
            r.config_index for m in measured for r in m.results
        ]
        assert streamed == [r.config_index for r in result.records]

    def test_steps_track_measurement_count(self, dense_task):
        _, log = _tune_with_log("random", dense_task, n_trial=24)
        proposed = log.of_type(BatchProposed)
        count = 0
        for event in proposed:
            assert event.step == count
            count += len(event.config_indices)

    def test_incumbent_improvements_are_increasing(self, dense_task):
        result, log = _tune_with_log("random", dense_task, n_trial=32)
        improvements = log.of_type(IncumbentImproved)
        assert improvements, "a fresh tuner must improve at least once"
        values = [e.gflops for e in improvements]
        assert values == sorted(values)
        for event in improvements:
            assert event.gflops > event.previous_gflops
        assert values[-1] == pytest.approx(result.best_gflops)
        steps = [e.step for e in improvements]
        assert steps == sorted(steps) and steps[0] >= 1

    def test_event_kind_names(self):
        assert BatchProposed(step=0, config_indices=()).kind == (
            "batch_proposed"
        )
        assert SpaceExhausted(step=3).kind == "space_exhausted"
        assert (
            IncumbentImproved(
                step=1, config_index=0, gflops=1.0, previous_gflops=0.0
            ).kind
            == "incumbent_improved"
        )

    def test_kind_keeps_acronym_runs_as_one_word(self):
        from dataclasses import dataclass

        from repro.core.events import TuningEvent, _snake_case

        @dataclass(frozen=True)
        class BAOScopeWidened(TuningEvent):
            pass

        @dataclass(frozen=True)
        class HTTPServerStarted(TuningEvent):
            pass

        assert BAOScopeWidened(step=0).kind == "bao_scope_widened"
        assert HTTPServerStarted(step=0).kind == "http_server_started"
        assert _snake_case("TED") == "ted"
        assert _snake_case("BatchTEDSelect") == "batch_ted_select"

    def test_kind_is_cached_per_class(self):
        from repro.core.events import _KIND_CACHE

        event = SpaceExhausted(step=0)
        first = event.kind
        assert _KIND_CACHE[SpaceExhausted] == "space_exhausted"
        # repeated access returns the cached string, not a new one
        assert SpaceExhausted(step=9).kind is first

    def test_no_events_escape_outside_tune(self, dense_task):
        log = EventLog()
        tuner = make_tuner("random", dense_task, seed=11)
        tuner.tune(n_trial=8, on_event=[log])
        before = len(log)
        tuner.executor.measure_batch([0])
        assert len(log) == before


class TestEarlyStoppedEvent:
    def test_emitted_when_window_expires(self, dense_task):
        result, log = _tune_with_log(
            "random", dense_task, n_trial=200, early_stopping=10
        )
        stops = log.of_type(EarlyStopped)
        assert result.num_measurements < 200, "budget should not be the limit"
        assert len(stops) == 1
        event = stops[0]
        assert event.patience == 10
        assert event.best_gflops == pytest.approx(result.best_gflops)
        # the window can expire mid-batch; the rest of the batch is
        # still absorbed into the records (batch-granular stopping)
        assert 1 <= event.step <= result.records[-1].step

    def test_not_emitted_without_stopping(self, dense_task):
        _, log = _tune_with_log(
            "random", dense_task, n_trial=16, early_stopping=None
        )
        assert log.of_type(EarlyStopped) == []


class TestScopeWidenedEvent:
    def test_forced_widening_emits_events(self, dense_task):
        # an unreachable improvement threshold makes every adaptive step
        # stagnate, so the radius widens deterministically
        settings = BaoSettings(eta=1e9, tau=2.0, radius=2.0)
        result, log = _tune_with_log(
            "bted+bao",
            dense_task,
            n_trial=16,
            init_size=8,
            batch_candidates=32,
            num_batches=2,
            bao_settings=settings,
        )
        widened = log.of_type(ScopeWidened)
        assert widened, "eta=1e9 must trigger widening"
        for event in widened:
            assert event.radius == pytest.approx(4.0)
            assert event.base_radius == pytest.approx(2.0)
            assert event.stagnation >= 1
            assert event.step >= 8

    def test_no_widening_when_every_step_improves(self, dense_task):
        settings = BaoSettings(eta=0.0, tau=2.0, radius=2.0)
        _, log = _tune_with_log(
            "bted+bao",
            dense_task,
            n_trial=12,
            init_size=8,
            batch_candidates=32,
            num_batches=2,
            bao_settings=settings,
        )
        assert log.of_type(ScopeWidened) == []


class TestSpaceExhaustedEvent:
    def test_emitted_when_space_runs_dry(self, tiny_task):
        result, log = _tune_with_log(
            "random", tiny_task, n_trial=1000, early_stopping=None
        )
        assert result.num_measurements == len(tiny_task.space)
        exhausted = log.of_type(SpaceExhausted)
        assert len(exhausted) == 1
        assert exhausted[0].step == len(tiny_task.space)


class TestEventLog:
    def test_of_type_preserves_order_and_len(self, dense_task):
        _, log = _tune_with_log("random", dense_task, n_trial=16)
        assert len(log) == len(log.events)
        proposed = log.of_type(BatchProposed)
        assert proposed == [
            e for e in log.events if isinstance(e, BatchProposed)
        ]
