"""Tests for repro.utils.rng: determinism and stream independence."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngPool, as_generator, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_multi_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_label_concatenation_is_not_ambiguous(self):
        # ("ab",) and ("a", "b") must differ (separator byte in the hash)
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_range(self):
        seed = derive_seed(123456789, "x")
        assert 0 <= seed < 2**63

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_always_valid_and_stable(self, root, label):
        a = derive_seed(root, label)
        b = derive_seed(root, label)
        assert a == b
        assert 0 <= a < 2**63


class TestAsGenerator:
    def test_from_int(self):
        g1 = as_generator(5)
        g2 = as_generator(5)
        assert g1.integers(0, 1000) == g2.integers(0, 1000)

    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngPool:
    def test_same_name_same_stream(self):
        pool = RngPool(1)
        g1 = pool.get("x")
        g2 = pool.get("x")
        assert g1 is g2

    def test_reproducible_across_pools(self):
        a = RngPool(9).get("sa").integers(0, 10**6, 5)
        b = RngPool(9).get("sa").integers(0, 10**6, 5)
        assert (a == b).all()

    def test_streams_are_independent(self):
        pool = RngPool(9)
        a = pool.get("one").integers(0, 10**6, 20)
        b = pool.get("two").integers(0, 10**6, 20)
        assert not (a == b).all()

    def test_child_pools_differ(self):
        pool = RngPool(3)
        c1 = pool.child("alpha")
        c2 = pool.child("beta")
        assert c1.root_seed != c2.root_seed
        assert c1.root_seed == RngPool(3).child("alpha").root_seed

    def test_seed_for_matches_get(self):
        pool = RngPool(8)
        expected = np.random.default_rng(pool.seed_for("m")).integers(0, 100)
        assert pool.get("m").integers(0, 100) == expected

    def test_default_root_is_random(self):
        assert isinstance(RngPool().root_seed, int)

    def test_repr(self):
        assert "RngPool" in repr(RngPool(4))
