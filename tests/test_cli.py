"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune", "--model", "alexnet"])
        args.func  # bound
        assert args.arm == "bted+bao"
        assert args.budget == 256

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--model", "lenet"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig9"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet-v1" in out
        assert "vgg-16" in out

    def test_tasks(self, capsys):
        assert main(["tasks", "--model", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "5 tuning tasks" in out
        assert "T1" in out

    def test_tune_small(self, capsys, tmp_path):
        records = tmp_path / "records.jsonl"
        code = main([
            "tune",
            "--model", "squeezenet-v1.1",
            "--arm", "random",
            "--budget", "8",
            "--runs", "50",
            "--records", str(records),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert records.exists()

    def test_tune_resume_requires_checkpoint_dir(self, capsys):
        code = main([
            "tune",
            "--model", "squeezenet-v1.1",
            "--arm", "random",
            "--budget", "8",
            "--resume",
        ])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_tune_checkpoint_resume_and_faults(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        argv = [
            "tune",
            "--model", "squeezenet-v1.1",
            "--arm", "random",
            "--budget", "8",
            "--runs", "50",
            "--fault-rate", "0.3",
            "--max-retries", "1",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(ckpt.glob("task-*.done")), "per-task results persisted"
        # the resumed run loads every completed task and reports the
        # same deployment latency
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_tune_observability_outputs(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        summary = tmp_path / "summary.json"
        code = main([
            "tune",
            "--model", "squeezenet-v1.1",
            "--arm", "random",
            "--budget", "8",
            "--runs", "50",
            "--metrics-out", str(metrics),
            "--trace-out", str(trace),
            "--summary", str(summary),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics" in out and "trace" in out and "summary" in out
        assert "repro_measurements_total" in metrics.read_text()
        spans = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert {s["name"] for s in spans} >= {"tune", "step", "measure"}
        payload = json.loads(summary.read_text())
        assert payload["runs"] == len(payload["tasks"]) >= 1
        assert payload["num_measurements"] > 0

    def test_tune_resumed_observability_matches(self, capsys, tmp_path):
        import json

        from repro.obs.summary import DURATION_FIELDS
        from repro.obs.trace import read_jsonl, skeletons_of

        ckpt = tmp_path / "ckpt"

        def run(tag, extra=()):
            trace = tmp_path / f"{tag}.jsonl"
            summary = tmp_path / f"{tag}.json"
            assert main([
                "tune",
                "--model", "squeezenet-v1.1",
                "--arm", "random",
                "--budget", "8",
                "--runs", "50",
                "--checkpoint-dir", str(ckpt),
                "--trace-out", str(trace),
                "--summary", str(summary),
                *extra,
            ]) == 0
            capsys.readouterr()
            skels = skeletons_of(read_jsonl(str(trace)))
            tasks = [
                {
                    k: v
                    for k, v in t.items()
                    if k not in DURATION_FIELDS and k != "resumed"
                }
                for t in json.loads(summary.read_text())["tasks"]
            ]
            return skels, tasks

        first = run("fresh")
        # every task is checkpointed .done; --resume reloads results
        # AND per-task observer state, so the observability outputs of
        # the resumed run match the original run exactly
        resumed = run("resumed", extra=["--resume"])
        assert resumed == first

    def test_tune_droplet_arm(self, capsys):
        code = main([
            "tune",
            "--model", "squeezenet-v1.1",
            "--arm", "droplet",
            "--budget", "24",
            "--runs", "50",
        ])
        assert code == 0
        assert "via droplet" in capsys.readouterr().out

    def test_compile_round_trips_a_tuned_tlog(self, capsys, tmp_path):
        tlog = tmp_path / "tlog"
        assert main([
            "tune",
            "--model", "squeezenet-v1.1",
            "--arm", "random",
            "--budget", "8",
            "--runs", "50",
            "--seed", "0",
            "--tlog-dir", str(tlog),
        ]) == 0
        tuned = capsys.readouterr().out
        assert main([
            "compile",
            "--model", "squeezenet-v1.1",
            "--tlog-dir", str(tlog),
            "--runs", "50",
            "--seed", "0",
        ]) == 0
        compiled = capsys.readouterr().out
        # every task replays from the log with its tuned schedule, so
        # the deployed latency matches the tuning run exactly
        assert "0 default schedule" in compiled

        def latency(out):
            return next(
                line for line in out.splitlines() if "latency" in line
            )

        assert latency(compiled) == latency(tuned)

    def test_experiment_arms_flag_rejects_unknown(self):
        with pytest.raises(SystemExit, match="unknown arm"):
            main(["experiment", "fig4", "--arms", "bted,warp-drive"])

    def test_experiment_adaptive_needs_arm_pair(self):
        with pytest.raises(SystemExit, match="baseline,adaptive"):
            main([
                "experiment", "adaptive", "--arms", "bted",
                "--scale", "0.05",
            ])

    def test_experiment_fig4_arms_passthrough(self, capsys, monkeypatch):
        import repro.experiments.fig4 as fig4

        captured = {}

        def fake_run_fig4(**kwargs):
            captured.update(kwargs)

            class Fake:
                def report(self, checkpoints=None):
                    return "Fig. 4 — fake"

            return Fake()

        monkeypatch.setattr(fig4, "run_fig4", fake_run_fig4)
        assert main([
            "experiment", "fig4", "--scale", "0.05",
            "--arms", "bted,droplet,bted+as",
        ]) == 0
        assert captured["arms"] == ("bted", "droplet", "bted+as")

    def test_experiment_fig4_smoke(self, capsys, monkeypatch):
        import repro.cli as cli

        def fake_run_fig4(**kwargs):
            class Fake:
                def report(self, checkpoints=None):
                    return "Fig. 4 — fake"

            return Fake()

        import repro.experiments.fig4 as fig4

        monkeypatch.setattr(fig4, "run_fig4", fake_run_fig4)
        assert main(["experiment", "fig4", "--scale", "0.05"]) == 0
        assert "Fig. 4" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "--model", "squeezenet-v1.1"]
        )
        assert args.devices == "gtx1080ti,gtx1080ti"
        assert args.jobs is None

    def test_fleet_resume_requires_checkpoint_dir(self, capsys):
        code = main([
            "fleet", "--model", "squeezenet-v1.1", "--resume",
        ])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_fleet_bad_device_spec(self, capsys):
        with pytest.raises(ValueError):
            main([
                "fleet", "--model", "squeezenet-v1.1",
                "--devices", "gtx9999",
            ])

    def test_fleet_small_run_matches_serial_tune(self, capsys, tmp_path):
        # a uniform pool of the compiler's own device class reproduces
        # the serial record stream bit for bit (a mixed pool would not:
        # each task is measured on its home device)
        fleet_records = tmp_path / "fleet.jsonl"
        serial_records = tmp_path / "serial.jsonl"
        argv = [
            "--model", "squeezenet-v1.1", "--arm", "random",
            "--budget", "8", "--runs", "50", "--seed", "3",
        ]
        code = main([
            "fleet", *argv,
            "--devices", "gtx1080ti,gtx1080ti,gtx1080ti",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--report", str(tmp_path / "fleet.json"),
            "--summary-dir", str(tmp_path / "summaries"),
            "--records", str(fleet_records),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet of 3" in out
        assert "device" in out
        assert main(["tune", *argv, "--records", str(serial_records)]) == 0
        # the tuning record stream is bit-identical to the serial run
        assert fleet_records.read_text() == serial_records.read_text()
        assert (tmp_path / "fleet.json").exists()
        assert (tmp_path / "summaries" / "summary.json").exists()
        assert sorted(
            p.name for p in (tmp_path / "ckpt").iterdir()
        ) == ["device-00", "device-01", "device-02"]

    def test_fleet_mixed_devices_smoke(self, capsys, tmp_path):
        # heterogeneous pool: runs end to end, and the scheduling
        # report carries the per-class rollup
        code = main([
            "fleet", "--model", "squeezenet-v1.1", "--arm", "random",
            "--budget", "8", "--runs", "50", "--seed", "3",
            "--devices", "gtx1080ti,titanv,jetsontx2",
            "--report", str(tmp_path / "fleet.json"),
        ])
        assert code == 0
        assert "fleet of 3" in capsys.readouterr().out
        report = json.loads((tmp_path / "fleet.json").read_text())
        assert sorted(report["by_class"]) == [
            "geforcegtx1080ti", "jetsontx2", "titanv",
        ]
        for entry in report["by_class"].values():
            assert entry["measurements"] > 0
        assert sum(
            entry["utilization"] for entry in report["by_class"].values()
        ) == pytest.approx(1.0, abs=1e-4)
