"""Tests for repro.utils.log."""

import logging

from repro.utils.log import enable_console_logging, get_logger


class TestGetLogger:
    def test_namespace(self):
        assert get_logger("core.bao").name == "repro.core.bao"

    def test_already_qualified(self):
        assert get_logger("repro.space").name == "repro.space"

    def test_root(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"

    def test_null_handler_installed(self):
        root = get_logger()
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )


class TestEnableConsoleLogging:
    def test_idempotent(self):
        enable_console_logging()
        root = get_logger()
        stream_handlers = [
            h
            for h in root.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ]
        count_before = len(stream_handlers)
        enable_console_logging()
        stream_handlers = [
            h
            for h in root.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ]
        assert len(stream_handlers) == count_before

    def test_sets_level(self):
        enable_console_logging(logging.WARNING)
        # level change only happens on first attach; verify the logger
        # has *a* concrete level configured
        assert get_logger().level != logging.NOTSET
