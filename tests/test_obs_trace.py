"""Tests for repro.obs.trace: span recording, skeletons, JSONL export."""

import pytest

from repro.obs.trace import (
    TraceRecorder,
    read_jsonl,
    skeletons_of,
)


class TestTraceRecorder:
    def test_sequential_ids_and_nesting(self):
        tr = TraceRecorder()
        root = tr.open_span("tune", step=0)
        child = tr.open_span("step", step=0, parent_id=root)
        assert (root, child) == (0, 1)
        assert tr.spans[child]["parent_id"] == root
        assert len(tr) == 2

    def test_close_computes_duration_and_merges_attrs(self):
        tr = TraceRecorder()
        sid = tr.open_span("step", step=0, attrs={"a": 1})
        tr.close_span(sid, attrs={"b": 2})
        span = tr.spans[sid]
        assert span["duration_s"] is not None and span["duration_s"] >= 0
        assert span["attrs"] == {"a": 1, "b": 2}

    def test_record_is_open_plus_close(self):
        tr = TraceRecorder()
        sid = tr.record("propose", step=4, duration_s=0.25, attrs={"n": 8})
        span = tr.spans[sid]
        assert span["duration_s"] == 0.25
        assert span["step"] == 4

    def test_annotate_and_by_name(self):
        tr = TraceRecorder()
        a = tr.record("refit", step=0)
        tr.record("measure", step=0)
        tr.annotate(a, {"rows": 12})
        assert tr.spans[a]["attrs"]["rows"] == 12
        assert [s["span_id"] for s in tr.by_name("refit")] == [a]

    def test_unknown_span_id_raises(self):
        tr = TraceRecorder()
        with pytest.raises(KeyError):
            tr.close_span(3)

    def test_skeletons_drop_wall_clock_and_flag_unclosed(self):
        tr = TraceRecorder()
        closed = tr.record("measure", step=1, duration_s=0.5)
        opened = tr.open_span("step", step=1)
        skels = tr.span_skeletons()
        for skel in skels:
            assert "start_s" not in skel and "duration_s" not in skel
        assert skels[closed]["closed"] is True
        assert skels[opened]["closed"] is False

    def test_jsonl_roundtrip(self, tmp_path):
        tr = TraceRecorder()
        root = tr.open_span("tune", step=0, attrs={"arm": "bted"})
        tr.record("step", step=0, parent_id=root, duration_s=0.1)
        tr.close_span(root)
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        spans = read_jsonl(str(path))
        assert spans == tr.spans
        assert skeletons_of(spans) == tr.span_skeletons()

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        TraceRecorder().write_jsonl(str(path))
        assert path.read_text() == ""
        assert read_jsonl(str(path)) == []

    def test_state_roundtrip_reanchors_clock(self):
        tr = TraceRecorder()
        tr.record("step", step=0, duration_s=0.1)
        state = tr.state_dict()
        state["elapsed_s"] = 100.0
        fresh = TraceRecorder()
        fresh.load_state_dict(state)
        assert fresh.spans == tr.spans
        assert fresh._next_id == tr._next_id
        # post-resume timestamps continue from the checkpointed offset
        assert fresh.now() >= 100.0
        nxt = fresh.open_span("step", step=1)
        assert nxt == tr._next_id

    def test_loaded_spans_are_copies(self):
        tr = TraceRecorder()
        sid = tr.record("step", step=0, attrs={"x": 1})
        fresh = TraceRecorder()
        fresh.load_state_dict(tr.state_dict())
        fresh.annotate(sid, {"x": 2})
        assert tr.spans[sid]["attrs"]["x"] == 1
