"""Warm-start determinism across arms, resume, and compiler passes."""

import pytest

from repro.core import TUNER_REGISTRY, make_tuner
from repro.core.checkpoint import CheckpointPolicy
from repro.core.events import CheckpointSaved, WarmStarted
from repro.nn.zoo import build_model
from repro.pipeline.compiler import DeploymentCompiler
from repro.tlog import TlogRecord, TuningLogDB, build_warm_start
from repro.tlog.signature import TaskSignature
from repro.tlog.warm import WarmStartPlan

ARM_KWARGS = {
    "random": dict(batch_size=8),
    "grid": dict(batch_size=8),
    "ga": dict(population_size=8),
    "autotvm": dict(batch_size=8, init_size=8, sa_chains=8, sa_steps=10),
    "bted": dict(batch_size=8, init_size=8, batch_candidates=24),
    "bted+as": dict(batch_size=8, init_size=8, batch_candidates=24),
    "bted+bao": dict(init_size=8, batch_candidates=24, num_batches=2),
    "bted+bao+as": dict(
        init_size=8, batch_candidates=24, num_batches=2,
        measure_batch_size=4,
    ),
    "bted+bao+droplet": dict(
        init_size=8, batch_candidates=24, num_batches=2,
        finish_after=12,
    ),
    "droplet": dict(batch_size=8, init_size=8),
}


def _trace(result):
    return [
        (r.step, r.config_index, r.gflops, r.error) for r in result.records
    ]


def _seed_db(task, tmp_path, n=24):
    """A database holding one tuned segment for ``task``'s signature."""
    db = TuningLogDB(tmp_path / "db")
    sig = TaskSignature.of(task.workload, task.space, task.device)
    digits = task.space.decode_batch(range(n))
    db.record_task(
        sig,
        [
            TlogRecord(
                config_index=i,
                knob_indices=tuple(int(d) for d in digits[i]),
                gflops=float(task.true_gflops(i)),
                tuner="seed",
            )
            for i in range(n)
        ],
    )
    return db, sig


@pytest.mark.parametrize("arm", sorted(TUNER_REGISTRY))
class TestAllArms:
    def test_warm_runs_bit_identical(self, arm, tmp_path, dense_task):
        db, sig = _seed_db(dense_task, tmp_path)
        plan = build_warm_start(db, sig, dense_task.space, k=6)
        results = []
        for _ in range(2):
            tuner = make_tuner(
                arm, dense_task, seed=5, warm_start=plan,
                **ARM_KWARGS[arm],
            )
            results.append(tuner.tune(n_trial=24, early_stopping=None))
        assert _trace(results[0]) == _trace(results[1])

    def test_warm_seeds_lead_the_run(self, arm, tmp_path, dense_task):
        db, sig = _seed_db(dense_task, tmp_path)
        plan = build_warm_start(db, sig, dense_task.space, k=6)
        events = []
        tuner = make_tuner(
            arm, dense_task, seed=5, warm_start=plan, **ARM_KWARGS[arm],
        )
        result = tuner.tune(
            n_trial=24, early_stopping=None,
            on_event=[lambda t, e: events.append(e)],
        )
        warm = [e for e in events if isinstance(e, WarmStarted)]
        assert len(warm) == 1 and warm[0].injected == len(plan.configs)
        head = [r.config_index for r in result.records[: len(plan.configs)]]
        assert head == list(plan.configs)

    def test_cold_unchanged_by_warm_support(self, arm, dense_task):
        """warm_start=None runs are byte-identical to pre-tlog behavior
        (the golden-trace suite pins the absolute streams; here we pin
        None == omitted)."""
        a = make_tuner(arm, dense_task, seed=5, **ARM_KWARGS[arm]).tune(
            n_trial=24, early_stopping=None
        )
        b = make_tuner(
            arm, dense_task, seed=5, warm_start=None, **ARM_KWARGS[arm]
        ).tune(n_trial=24, early_stopping=None)
        assert _trace(a) == _trace(b)

    def test_crash_resume_matches_uninterrupted(
        self, arm, tmp_path, dense_task
    ):
        db, sig = _seed_db(dense_task, tmp_path)
        plan = build_warm_start(db, sig, dense_task.space, k=6)

        straight = make_tuner(
            arm, dense_task, seed=5, warm_start=plan, **ARM_KWARGS[arm]
        ).tune(n_trial=24, early_stopping=None)

        class _Crash(Exception):
            pass

        def bomb(tuner_, event):
            if isinstance(event, CheckpointSaved) and event.step >= 16:
                raise _Crash()

        path = tmp_path / "t.ckpt"
        crashed = make_tuner(
            arm, dense_task, seed=5, warm_start=plan, **ARM_KWARGS[arm]
        )
        with pytest.raises(_Crash):
            crashed.tune(
                n_trial=24, early_stopping=None,
                checkpoint=CheckpointPolicy(path=path, every=1),
                on_event=[bomb],
            )
        resumed = make_tuner(
            arm, dense_task, seed=5, warm_start=plan, **ARM_KWARGS[arm]
        ).resume(path)
        assert _trace(resumed) == _trace(straight)


class TestWarmStartValidation:
    def test_rejects_out_of_range_configs(self, dense_task):
        plan = WarmStartPlan(configs=(len(dense_task.space) + 7,))
        tuner = make_tuner("random", dense_task, seed=0, warm_start=plan)
        with pytest.raises(ValueError, match="out of range"):
            tuner.tune(n_trial=8, early_stopping=None)


@pytest.mark.slow
class TestCompilerPasses:
    @pytest.fixture(scope="class")
    def compiler(self):
        compiler = DeploymentCompiler(build_model("alexnet"))
        compiler.tasks = compiler.tasks[:3]
        return compiler

    def test_second_pass_serves_exact_hits(self, compiler, tmp_path):
        first = compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db"
        )
        assert first.tlog_counts() == {"hit": 0, "warm": 0, "cold": 3}
        second = compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db"
        )
        assert second.tlog_counts() == {"hit": 3, "warm": 0, "cold": 0}
        assert all(
            r.num_measurements == 0
            for r in second.tuning_results.values()
        )
        assert all(
            second.tuning_results[t].best_gflops
            == first.tuning_results[t].best_gflops
            for t in second.tuning_results
        )

    def test_warm_pass_uses_fewer_measurements_to_95(
        self, compiler, tmp_path
    ):
        from repro.experiments.transfer import measurements_to_target

        cold = compiler.tune(
            "bted", n_trial=64, early_stopping=None, tlog=tmp_path / "db"
        )
        warm = compiler.tune(
            "bted", n_trial=64, early_stopping=None, tlog=tmp_path / "db",
            warm_start=True, serve_hits=False, trial_seed=1,
        )
        assert warm.tlog_counts() == {"hit": 0, "warm": 3, "cold": 0}
        for task_id, cold_result in cold.tuning_results.items():
            target = 0.95 * cold_result.best_gflops
            c95 = measurements_to_target(cold_result.best_curve(), target)
            w95 = measurements_to_target(
                warm.tuning_results[task_id].best_curve(), target
            )
            assert w95 is not None and w95 <= c95

    def test_tlog_off_is_bit_identical(self, compiler, tmp_path):
        with_log = compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db"
        )
        without = compiler.tune("bted", n_trial=32, early_stopping=None)
        assert without.tlog_status == {}
        for task_id, result in without.tuning_results.items():
            assert _trace(result) == _trace(with_log.tuning_results[task_id])

    def test_observer_counts_hits_and_warm_starts(self, compiler, tmp_path):
        from repro.obs import RunObservation

        compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db"
        )
        obs = RunObservation(enable_trace=False)
        compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db",
            observation=obs,
        )
        metrics = obs.merged_metrics()
        assert metrics.get("tlog_exact_hits_total").value == 3
        assert metrics.get("tlog_warm_starts_total").value == 0
        obs2 = RunObservation(enable_trace=False)
        compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db",
            warm_start=True, serve_hits=False, observation=obs2,
        )
        merged = obs2.merged_metrics()
        assert merged.get("tlog_warm_starts_total").value == 3
        assert merged.get("tlog_warm_configs_total").value > 0

    def test_compile_from_tlog_matches_tuned_deploy(
        self, compiler, tmp_path
    ):
        tuned = compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "db"
        )
        replayed = compiler.compile_from_tlog(tmp_path / "db")
        assert replayed.tlog_counts()["hit"] == 3
        a = tuned.measure_latency(num_runs=16, seed=3)
        b = replayed.measure_latency(num_runs=16, seed=3)
        assert a.mean_ms == b.mean_ms

    def test_fleet_two_pass_hits(self, compiler, tmp_path):
        first = compiler.tune(
            "bted", n_trial=32, early_stopping=None,
            fleet="gtx1080ti,gtx1080ti", tlog=tmp_path / "db",
        )
        assert first.tlog_counts() == {"hit": 0, "warm": 0, "cold": 3}
        second = compiler.tune(
            "bted", n_trial=32, early_stopping=None,
            fleet="gtx1080ti,gtx1080ti", tlog=tmp_path / "db",
        )
        assert second.tlog_counts() == {"hit": 3, "warm": 0, "cold": 0}
        assert all(
            r.num_measurements == 0
            for r in second.tuning_results.values()
        )

    def test_fleet_cold_matches_serial_cold(self, compiler, tmp_path):
        serial = compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=tmp_path / "s"
        )
        fleet = compiler.tune(
            "bted", n_trial=32, early_stopping=None,
            fleet="gtx1080ti,gtx1080ti", tlog=tmp_path / "f",
        )
        for task_id, result in serial.tuning_results.items():
            assert _trace(result) == _trace(fleet.tuning_results[task_id])

    def test_resume_does_not_double_contribute(self, compiler, tmp_path):
        db_dir = tmp_path / "db"
        compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=db_dir,
            checkpoint_dir=tmp_path / "ckpt",
        )
        counts = {
            s.key: len(TuningLogDB.load(db_dir).lookup_exact(s) or [])
            for s in TuningLogDB.load(db_dir).signatures()
        }
        # rerun with resume + serving disabled: tasks reload from .done
        # files and re-offer the same contribution under the same run key
        compiler.tune(
            "bted", n_trial=32, early_stopping=None, tlog=db_dir,
            checkpoint_dir=tmp_path / "ckpt", resume=True,
            serve_hits=False,
        )
        after = TuningLogDB.load(db_dir)
        for sig in after.signatures():
            assert len(after.lookup_exact(sig)) == counts[sig.key]
