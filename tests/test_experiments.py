"""Tests for the experiment harness (scaled-down smoke-level runs)."""

import numpy as np
import pytest

from repro.experiments.adaptive import run_adaptive_study
from repro.experiments.crossdevice import run_cross_device
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import average_curves, format_table, run_arm_on_task
from repro.experiments.settings import ARMS, ExperimentSettings, PAPER_SETTINGS
from repro.experiments.table1 import run_table1


TINY = ExperimentSettings(
    init_size=16,
    n_trial=48,
    early_stopping=None,
    batch_size=16,
    batch_candidates=64,
    num_batches=2,
    num_runs=100,
    num_trials=1,
    env_seed=7,
)


class TestSettings:
    def test_paper_defaults(self):
        assert PAPER_SETTINGS.init_size == 64
        assert PAPER_SETTINGS.early_stopping == 400
        assert PAPER_SETTINGS.mu == 0.1
        assert PAPER_SETTINGS.batch_candidates == 500
        assert PAPER_SETTINGS.num_batches == 10
        assert PAPER_SETTINGS.num_runs == 600
        assert PAPER_SETTINGS.num_trials == 10
        assert PAPER_SETTINGS.bao.eta == 0.05
        assert PAPER_SETTINGS.bao.gamma == 2
        assert PAPER_SETTINGS.bao.tau == 1.5
        assert PAPER_SETTINGS.bao.radius == 3.0

    def test_scaled_shrinks_budgets(self):
        scaled = PAPER_SETTINGS.scaled(0.25)
        assert scaled.n_trial < PAPER_SETTINGS.n_trial
        assert scaled.num_trials < PAPER_SETTINGS.num_trials
        # algorithmic settings untouched
        assert scaled.mu == PAPER_SETTINGS.mu
        assert scaled.bao == PAPER_SETTINGS.bao

    def test_scaled_floors(self):
        scaled = PAPER_SETTINGS.scaled(0.01)
        assert scaled.num_trials >= 2
        assert scaled.num_runs >= 100

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PAPER_SETTINGS.scaled(0.0)
        with pytest.raises(ValueError):
            PAPER_SETTINGS.scaled(2.0)

    def test_tuner_kwargs_cover_all_arms(self):
        for arm in ARMS + ("random", "grid"):
            assert isinstance(PAPER_SETTINGS.tuner_kwargs(arm), dict)
        with pytest.raises(KeyError):
            PAPER_SETTINGS.tuner_kwargs("cmaes")


class TestRunnerHelpers:
    def test_average_curves_padding(self):
        avg = average_curves([np.array([1.0, 2.0]), np.array([3.0])])
        assert avg.tolist() == [2.0, 2.5]

    def test_average_curves_truncation(self):
        avg = average_curves([np.array([1.0, 2.0, 3.0])], length=2)
        assert avg.tolist() == [1.0, 2.0]

    def test_average_curves_validation(self):
        with pytest.raises(ValueError):
            average_curves([])
        with pytest.raises(ValueError):
            average_curves([np.array([])])

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_run_arm_deterministic(self, small_task):
        a = run_arm_on_task("random", small_task, TINY, trial=0)
        b = run_arm_on_task("random", small_task, TINY, trial=0)
        assert a.best_gflops == b.best_gflops

    def test_trials_differ(self, small_task):
        a = run_arm_on_task("random", small_task, TINY, trial=0)
        b = run_arm_on_task("random", small_task, TINY, trial=1)
        assert [r.config_index for r in a.records] != [
            r.config_index for r in b.records
        ]


@pytest.mark.slow
class TestFig4:
    def test_smoke(self):
        result = run_fig4(
            num_layers=1,
            arms=("random", "autotvm"),
            settings=TINY,
            num_measurements=48,
            num_trials=1,
        )
        assert set(result.curves) == {(0, "random"), (0, "autotvm")}
        for curve in result.curves.values():
            assert len(curve) == 48
            assert (np.diff(curve) >= 0).all()
        report = result.report(checkpoints=[16, 48])
        assert "Fig. 4" in report

    def test_too_many_layers(self):
        with pytest.raises(ValueError):
            run_fig4(model_name="alexnet", num_layers=99, settings=TINY,
                     num_trials=1, num_measurements=8)


@pytest.mark.slow
class TestFig5:
    def test_smoke(self):
        result = run_fig5(
            arms=("random", "autotvm"),
            settings=TINY,
            num_trials=1,
            max_tasks=2,
        )
        assert len(result.task_ids) == 2
        assert result.gflops_ratio(0, "random") == pytest.approx(
            100.0 * result.gflops[(0, "random")]
            / result.gflops[(0, "random")]
        )
        assert "AVG" in result.report()

    def test_baseline_ratio_is_100(self):
        result = run_fig5(
            arms=("random",), settings=TINY, num_trials=1, max_tasks=1
        )
        assert result.gflops_ratio(0, "random") == pytest.approx(100.0)


@pytest.mark.slow
class TestAdaptiveStudy:
    def test_fewer_measurements_without_losing_gflops(self):
        result = run_adaptive_study(
            model_name="mobilenet-v1",
            num_layers=2,
            settings=TINY,
            n_trial=96,
            early_stopping=32,
            num_trials=3,
        )
        # the acceptance bar for the bted+as arm: pruned batches fill
        # the early stopper's window with fewer measurements while the
        # best-found configuration stays within noise of the baseline
        assert result.measurement_reduction_pct() > 0.0
        assert result.gflops_ratio() >= 0.95
        report = result.report()
        assert "fewer measurements" in report
        assert "T1" in report and "T2" in report

    def test_new_arms_compare_on_the_fig4_grid(self):
        result = run_fig4(
            num_layers=1,
            arms=("bted", "droplet", "bted+bao+droplet"),
            settings=TINY,
            num_measurements=48,
            num_trials=1,
        )
        assert set(result.curves) == {
            (0, "bted"), (0, "droplet"), (0, "bted+bao+droplet")
        }
        for curve in result.curves.values():
            assert len(curve) == 48
            assert (np.diff(curve) >= 0).all()

    def test_too_few_tasks_rejected(self):
        with pytest.raises(ValueError):
            run_adaptive_study(
                model_name="squeezenet-v1.1", num_layers=99, settings=TINY,
                n_trial=8, num_trials=1,
            )


@pytest.mark.slow
class TestCrossDevice:
    def test_smoke(self):
        result = run_cross_device(
            model_name="mobilenet-v1",
            tuner_name="random",
            n_trial=48,
            devices=("gtx1080ti", "jetsontx2"),
            max_tasks=2,
        )
        assert result.devices == ["geforcegtx1080ti", "jetsontx2"]
        assert len(result.task_ids) == 2
        for device in result.devices:
            # pass 1 seeded the shared log, so every pass-2 task found
            # foreign sources to warm-start from
            assert result.warm_tasks(device) == 2
            for task_id in result.task_ids:
                assert result.retune_best[device][task_id] > 0
                assert result.transfer_best[device][task_id] > 0
        report = result.report()
        assert "Cross-device transfer" in report
        assert "jetsontx2" in report
        digest = result.to_dict()
        assert digest["devices"] == result.devices
        assert len(digest["tasks"]) == 2
        assert set(digest["summary"]) == set(result.devices)

    def test_needs_two_distinct_classes(self):
        with pytest.raises(ValueError, match="two distinct device"):
            run_cross_device(devices=("gtx1080ti", "gtx1080ti"))


@pytest.mark.slow
class TestTable1:
    def test_smoke(self):
        result = run_table1(
            models=("squeezenet-v1.1",),
            arms=("random",),
            settings=TINY,
            num_trials=1,
        )
        stats = result.cells[("squeezenet-v1.1", "random")]
        assert stats.latency_ms > 0
        assert stats.variance > 0
        assert "Table I" in result.report()

    def test_deltas_vs_baseline(self):
        result = run_table1(
            models=("squeezenet-v1.1",),
            arms=("random", "grid"),
            settings=TINY,
            num_trials=1,
        )
        assert result.latency_delta_pct("squeezenet-v1.1", "random") == 0.0
        delta = result.latency_delta_pct("squeezenet-v1.1", "grid")
        assert np.isfinite(delta)
