"""Settings-to-tuner integration: every arm constructs from settings."""

import pytest

from repro.core import TUNER_REGISTRY, make_tuner
from repro.experiments.settings import ARMS, BENCH_SETTINGS, PAPER_SETTINGS


class TestTunerConstruction:
    @pytest.mark.parametrize("arm", ARMS + ("random", "grid"))
    def test_paper_settings_construct(self, arm, small_task):
        tuner = make_tuner(
            arm, small_task, seed=0, **PAPER_SETTINGS.tuner_kwargs(arm)
        )
        assert tuner.task is small_task

    @pytest.mark.parametrize("arm", ARMS)
    def test_bench_settings_construct_and_run(self, arm, dense_task):
        tuner = make_tuner(
            arm, dense_task, seed=0, **BENCH_SETTINGS.tuner_kwargs(arm)
        )
        result = tuner.tune(n_trial=12, early_stopping=None)
        assert result.num_measurements == 12

    def test_bao_settings_threaded_through(self, small_task):
        from dataclasses import replace

        settings = replace(
            PAPER_SETTINGS, bao=replace(PAPER_SETTINGS.bao, gamma=4)
        )
        tuner = make_tuner(
            "bted+bao", small_task, seed=0,
            **settings.tuner_kwargs("bted+bao"),
        )
        assert tuner.bao.settings.gamma == 4

    def test_registry_and_arms_consistent(self):
        for arm in ARMS:
            assert arm in TUNER_REGISTRY
