"""Behaviour-pinning tests for the analytical cost model.

These pin the model's outputs for a handful of reference configurations
so unintended drift in the simulator (which would silently change every
experiment) is caught in review.  Values were recorded from the
released model; update them deliberately when the model is revised,
alongside EXPERIMENTS.md.
"""

import pytest

from repro.hardware.cost_model import AnalyticalGpuModel
from repro.hardware.device import GTX_1080_TI
from repro.nn.workloads import Conv2DWorkload, DenseWorkload


@pytest.fixture(scope="module")
def model():
    return AnalyticalGpuModel(GTX_1080_TI)


REFERENCE_CONV = Conv2DWorkload(1, 64, 64, 56, 56, 3, 3, pad_h=1, pad_w=1)
REFERENCE_VALUES = {
    "tile_f": (2, 2, 16, 1),
    "tile_y": (4, 1, 7, 2),
    "tile_x": (7, 1, 8, 1),
    "tile_rc": (8, 8),
    "tile_ry": (1, 3),
    "tile_rx": (1, 3),
    "auto_unroll_max_step": 512,
    "unroll_explicit": 1,
}


class TestPinnedProfiles:
    def test_reference_conv_structure(self, model):
        profile = model.profile(REFERENCE_CONV, REFERENCE_VALUES)
        assert profile.threads_per_block == 16 * 7 * 8
        assert profile.num_blocks == 2 * 4 * 7
        assert profile.blocks_per_sm >= 1
        assert profile.occupancy_limiter in (
            "threads", "blocks", "smem", "regs"
        )

    def test_reference_conv_rate_band(self, model):
        """The reference schedule must stay a *good* one: within the top
        throughput band for this workload (pinned loosely so only real
        model changes trip it)."""
        profile = model.profile(REFERENCE_CONV, REFERENCE_VALUES)
        assert 1000.0 < profile.gflops < 11000.0

    def test_monotone_under_device_scaling(self):
        """Doubling peak+bandwidth must speed up any feasible config."""
        import dataclasses

        fast_device = dataclasses.replace(
            GTX_1080_TI,
            peak_gflops=2 * GTX_1080_TI.peak_gflops,
            mem_bandwidth_gbs=2 * GTX_1080_TI.mem_bandwidth_gbs,
        )
        slow = AnalyticalGpuModel(GTX_1080_TI).profile(
            REFERENCE_CONV, REFERENCE_VALUES
        )
        fast = AnalyticalGpuModel(fast_device).profile(
            REFERENCE_CONV, REFERENCE_VALUES
        )
        assert fast.gflops > slow.gflops

    def test_dense_reference(self, model):
        wl = DenseWorkload(1, 4096, 4096)
        values = {
            "tile_x": (16, 1, 256, 1),
            "tile_k": (256, 16),
            "auto_unroll_max_step": 512,
            "unroll_explicit": 0,
        }
        profile = model.profile(wl, values)
        # a GEMV is bandwidth-bound: the achievable rate is capped by
        # weight traffic at ~bandwidth/4 MACs
        assert profile.is_memory_bound
        bandwidth_bound = 2 * GTX_1080_TI.mem_bandwidth / 4.0 / 1e9
        assert profile.gflops <= bandwidth_bound * 1.05

    def test_unroll_gain_vs_register_pressure(self, model):
        """Unrolling must help when registers are plentiful (small
        blocks) — and the register cost must be modeled at all (the
        extra registers show up in the profile)."""
        small_block = dict(
            REFERENCE_VALUES,
            tile_f=(8, 1, 8, 1),
            tile_y=(8, 1, 7, 1),
            tile_x=(28, 1, 2, 1),
        )  # 112 threads/block: occupancy is block-limited, not reg-limited
        base = dict(small_block, auto_unroll_max_step=0, unroll_explicit=0)
        unrolled = dict(small_block, auto_unroll_max_step=512,
                        unroll_explicit=1)
        p_base = model.profile(REFERENCE_CONV, base)
        p_unrolled = model.profile(REFERENCE_CONV, unrolled)
        assert p_unrolled.registers_per_thread > p_base.registers_per_thread
        assert p_unrolled.gflops > p_base.gflops

    def test_noise_sigma_ordering(self, model):
        """A warp-starved config must time less repeatably than a
        well-shaped one."""
        good = model.profile(REFERENCE_CONV, REFERENCE_VALUES)
        lazy = model.profile(
            REFERENCE_CONV,
            dict(
                REFERENCE_VALUES,
                tile_f=(64, 1, 1, 1),
                tile_y=(28, 1, 2, 1),
                tile_x=(56, 1, 1, 1),
            ),
        )  # 2 threads per block: 30/32 of every warp idles
        assert lazy.threads_per_block < GTX_1080_TI.warp_size
        assert lazy.noise_sigma_rel > good.noise_sigma_rel
